//! MSO-FO: monadic second-order logic over runs with FOL(R) queries as atoms (Section 4 and
//! Appendix B of the paper).

use rdms_db::{eval as query_eval, Instance, Query, Substitution, Var};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A first-order **position** variable (`x, y, …` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PosVar(pub u32);

/// A second-order **set-of-positions** variable (`X, Y, …`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SetVar(pub u32);

impl fmt::Debug for PosVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for SetVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// An MSO-FO formula.
///
/// ```text
/// φ ::= Q@x | x < y | x ∈ X | ¬φ | φ ∧ φ | ∃x.φ | ∃X.φ | ∃g u.φ
/// ```
///
/// As for the other logics in this workspace, `∨`, `∀` and `∀g` are kept as first-class
/// constructors.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MsoFo {
    /// The constant true.
    True,
    /// `Q@x`: the FOL(R) query `Q` holds in the database instance at position `x`. Free data
    /// variables of `Q` refer to enclosing `∃g`/`∀g` binders (or to the ambient data
    /// assignment).
    QueryAt(Query, PosVar),
    /// `x < y`.
    Less(PosVar, PosVar),
    /// `x = y`.
    PosEq(PosVar, PosVar),
    /// `x ∈ X`.
    In(PosVar, SetVar),
    /// Negation.
    Not(Box<MsoFo>),
    /// Conjunction.
    And(Box<MsoFo>, Box<MsoFo>),
    /// Disjunction.
    Or(Box<MsoFo>, Box<MsoFo>),
    /// `∃x.φ`.
    ExistsPos(PosVar, Box<MsoFo>),
    /// `∀x.φ`.
    ForallPos(PosVar, Box<MsoFo>),
    /// `∃X.φ`.
    ExistsSet(SetVar, Box<MsoFo>),
    /// `∀X.φ`.
    ForallSet(SetVar, Box<MsoFo>),
    /// `∃g u.φ`: there is a data value in the *global* active domain of the run.
    ExistsData(Var, Box<MsoFo>),
    /// `∀g u.φ`.
    ForallData(Var, Box<MsoFo>),
}

impl MsoFo {
    /// The constant false.
    pub fn false_() -> MsoFo {
        MsoFo::True.not()
    }

    /// `Q@x`.
    pub fn query_at(query: Query, x: PosVar) -> MsoFo {
        MsoFo::QueryAt(query, x)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> MsoFo {
        MsoFo::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: MsoFo) -> MsoFo {
        MsoFo::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: MsoFo) -> MsoFo {
        MsoFo::Or(Box::new(self), Box::new(other))
    }

    /// Implication.
    pub fn implies(self, other: MsoFo) -> MsoFo {
        self.not().or(other)
    }

    /// `∃x.φ`.
    pub fn exists_pos(x: PosVar, body: MsoFo) -> MsoFo {
        MsoFo::ExistsPos(x, Box::new(body))
    }

    /// `∀x.φ`.
    pub fn forall_pos(x: PosVar, body: MsoFo) -> MsoFo {
        MsoFo::ForallPos(x, Box::new(body))
    }

    /// `∃X.φ`.
    pub fn exists_set(x: SetVar, body: MsoFo) -> MsoFo {
        MsoFo::ExistsSet(x, Box::new(body))
    }

    /// `∀X.φ`.
    pub fn forall_set(x: SetVar, body: MsoFo) -> MsoFo {
        MsoFo::ForallSet(x, Box::new(body))
    }

    /// `∃g u.φ`.
    pub fn exists_data(u: Var, body: MsoFo) -> MsoFo {
        MsoFo::ExistsData(u, Box::new(body))
    }

    /// `∀g u.φ`.
    pub fn forall_data(u: Var, body: MsoFo) -> MsoFo {
        MsoFo::ForallData(u, Box::new(body))
    }

    /// Conjunction of many formulae.
    pub fn conj<I: IntoIterator<Item = MsoFo>>(items: I) -> MsoFo {
        let mut iter = items.into_iter();
        match iter.next() {
            None => MsoFo::True,
            Some(first) => iter.fold(first, MsoFo::and),
        }
    }

    /// Disjunction of many formulae.
    pub fn disj<I: IntoIterator<Item = MsoFo>>(items: I) -> MsoFo {
        let mut iter = items.into_iter();
        match iter.next() {
            None => MsoFo::false_(),
            Some(first) => iter.fold(first, MsoFo::or),
        }
    }

    /// The free position variables.
    pub fn free_pos_vars(&self) -> BTreeSet<PosVar> {
        let mut free = BTreeSet::new();
        self.walk_free(
            &mut BTreeSet::new(),
            &mut BTreeSet::new(),
            &mut BTreeSet::new(),
            &mut |v, bound| {
                if let FreeOccurrence::Pos(x) = v {
                    if !bound {
                        free.insert(x);
                    }
                }
            },
        );
        free
    }

    /// The free set variables.
    pub fn free_set_vars(&self) -> BTreeSet<SetVar> {
        let mut free = BTreeSet::new();
        self.walk_free(
            &mut BTreeSet::new(),
            &mut BTreeSet::new(),
            &mut BTreeSet::new(),
            &mut |v, bound| {
                if let FreeOccurrence::Set(x) = v {
                    if !bound {
                        free.insert(x);
                    }
                }
            },
        );
        free
    }

    /// The free data variables (data variables of embedded queries not bound by `∃g`/`∀g`).
    pub fn free_data_vars(&self) -> BTreeSet<Var> {
        let mut free = BTreeSet::new();
        self.walk_free(
            &mut BTreeSet::new(),
            &mut BTreeSet::new(),
            &mut BTreeSet::new(),
            &mut |v, bound| {
                if let FreeOccurrence::Data(x) = v {
                    if !bound {
                        free.insert(x);
                    }
                }
            },
        );
        free
    }

    /// Whether the formula is a sentence.
    pub fn is_sentence(&self) -> bool {
        self.free_pos_vars().is_empty()
            && self.free_set_vars().is_empty()
            && self.free_data_vars().is_empty()
    }

    /// Whether the formula is first-order (contains no set quantifier and no set atom) —
    /// the FO-LTL-expressible fragment handled natively by the explorer engine.
    pub fn is_first_order(&self) -> bool {
        match self {
            MsoFo::In(..) | MsoFo::ExistsSet(..) | MsoFo::ForallSet(..) => false,
            MsoFo::True | MsoFo::QueryAt(..) | MsoFo::Less(..) | MsoFo::PosEq(..) => true,
            MsoFo::Not(p)
            | MsoFo::ExistsPos(_, p)
            | MsoFo::ForallPos(_, p)
            | MsoFo::ExistsData(_, p)
            | MsoFo::ForallData(_, p) => p.is_first_order(),
            MsoFo::And(a, b) | MsoFo::Or(a, b) => a.is_first_order() && b.is_first_order(),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            MsoFo::True | MsoFo::Less(..) | MsoFo::PosEq(..) | MsoFo::In(..) => 1,
            MsoFo::QueryAt(q, _) => 1 + q.size(),
            MsoFo::Not(p)
            | MsoFo::ExistsPos(_, p)
            | MsoFo::ForallPos(_, p)
            | MsoFo::ExistsSet(_, p)
            | MsoFo::ForallSet(_, p)
            | MsoFo::ExistsData(_, p)
            | MsoFo::ForallData(_, p) => 1 + p.size(),
            MsoFo::And(a, b) | MsoFo::Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// The number of data variables appearing in the formula (the parameter `n` in the
    /// paper's complexity statement of Section 6.6).
    pub fn num_data_vars(&self) -> usize {
        let mut vars: BTreeSet<Var> = BTreeSet::new();
        self.visit(&mut |f| {
            if let MsoFo::QueryAt(q, _) = f {
                vars.extend(q.all_vars());
            }
            if let MsoFo::ExistsData(u, _) | MsoFo::ForallData(u, _) = f {
                vars.insert(*u);
            }
        });
        vars.len()
    }

    /// Visit every subformula (pre-order).
    pub fn visit<F: FnMut(&MsoFo)>(&self, f: &mut F) {
        f(self);
        match self {
            MsoFo::True
            | MsoFo::QueryAt(..)
            | MsoFo::Less(..)
            | MsoFo::PosEq(..)
            | MsoFo::In(..) => {}
            MsoFo::Not(p)
            | MsoFo::ExistsPos(_, p)
            | MsoFo::ForallPos(_, p)
            | MsoFo::ExistsSet(_, p)
            | MsoFo::ForallSet(_, p)
            | MsoFo::ExistsData(_, p)
            | MsoFo::ForallData(_, p) => p.visit(f),
            MsoFo::And(a, b) | MsoFo::Or(a, b) => {
                a.visit(f);
                b.visit(f);
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn walk_free(
        &self,
        bound_pos: &mut BTreeSet<PosVar>,
        bound_set: &mut BTreeSet<SetVar>,
        bound_data: &mut BTreeSet<Var>,
        report: &mut impl FnMut(FreeOccurrence, bool),
    ) {
        match self {
            MsoFo::True => {}
            MsoFo::QueryAt(q, x) => {
                report(FreeOccurrence::Pos(*x), bound_pos.contains(x));
                for u in q.free_vars() {
                    report(FreeOccurrence::Data(u), bound_data.contains(&u));
                }
            }
            MsoFo::Less(x, y) | MsoFo::PosEq(x, y) => {
                report(FreeOccurrence::Pos(*x), bound_pos.contains(x));
                report(FreeOccurrence::Pos(*y), bound_pos.contains(y));
            }
            MsoFo::In(x, set) => {
                report(FreeOccurrence::Pos(*x), bound_pos.contains(x));
                report(FreeOccurrence::Set(*set), bound_set.contains(set));
            }
            MsoFo::Not(p) => p.walk_free(bound_pos, bound_set, bound_data, report),
            MsoFo::And(a, b) | MsoFo::Or(a, b) => {
                a.walk_free(bound_pos, bound_set, bound_data, report);
                b.walk_free(bound_pos, bound_set, bound_data, report);
            }
            MsoFo::ExistsPos(x, p) | MsoFo::ForallPos(x, p) => {
                let newly = bound_pos.insert(*x);
                p.walk_free(bound_pos, bound_set, bound_data, report);
                if newly {
                    bound_pos.remove(x);
                }
            }
            MsoFo::ExistsSet(x, p) | MsoFo::ForallSet(x, p) => {
                let newly = bound_set.insert(*x);
                p.walk_free(bound_pos, bound_set, bound_data, report);
                if newly {
                    bound_set.remove(x);
                }
            }
            MsoFo::ExistsData(u, p) | MsoFo::ForallData(u, p) => {
                let newly = bound_data.insert(*u);
                p.walk_free(bound_pos, bound_set, bound_data, report);
                if newly {
                    bound_data.remove(u);
                }
            }
        }
    }
}

enum FreeOccurrence {
    Pos(PosVar),
    Set(SetVar),
    Data(Var),
}

impl fmt::Debug for MsoFo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsoFo::True => write!(f, "true"),
            MsoFo::QueryAt(q, x) => write!(f, "({q})@{x:?}"),
            MsoFo::Less(x, y) => write!(f, "{x:?} < {y:?}"),
            MsoFo::PosEq(x, y) => write!(f, "{x:?} = {y:?}"),
            MsoFo::In(x, s) => write!(f, "{x:?} ∈ {s:?}"),
            MsoFo::Not(p) => write!(f, "¬({p:?})"),
            MsoFo::And(a, b) => write!(f, "({a:?} ∧ {b:?})"),
            MsoFo::Or(a, b) => write!(f, "({a:?} ∨ {b:?})"),
            MsoFo::ExistsPos(x, p) => write!(f, "∃{x:?}.({p:?})"),
            MsoFo::ForallPos(x, p) => write!(f, "∀{x:?}.({p:?})"),
            MsoFo::ExistsSet(x, p) => write!(f, "∃{x:?}.({p:?})"),
            MsoFo::ForallSet(x, p) => write!(f, "∀{x:?}.({p:?})"),
            MsoFo::ExistsData(u, p) => write!(f, "∃g {u}.({p:?})"),
            MsoFo::ForallData(u, p) => write!(f, "∀g {u}.({p:?})"),
        }
    }
}

/// An assignment of the free variables of an MSO-FO formula over a (finite prefix of a) run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunAssignment {
    /// Position variables.
    pub pos: BTreeMap<PosVar, usize>,
    /// Set variables.
    pub sets: BTreeMap<SetVar, BTreeSet<usize>>,
    /// Data variables.
    pub data: Substitution,
}

impl RunAssignment {
    /// The empty assignment.
    pub fn new() -> RunAssignment {
        RunAssignment::default()
    }
}

/// Evaluate an MSO-FO formula over a **finite run prefix** `ρ = I₀ … I_{n−1}` under an
/// assignment (Appendix B semantics, with positions ranging over the prefix).
///
/// The paper's runs are infinite; every verification engine in this workspace works with
/// finite prefixes of a user-chosen depth (see DESIGN.md for the discussion of this
/// substitution), so this evaluator is the reference semantics for those engines.
///
/// Note the Appendix B proviso on `Q@x`: the data substitution must land inside `adom(I_x)`;
/// values outside make the atom false rather than erroneous.
pub fn eval(run: &[Instance], assignment: &RunAssignment, formula: &MsoFo) -> bool {
    match formula {
        MsoFo::True => true,
        MsoFo::QueryAt(q, x) => {
            let i = assignment.pos[x];
            let instance = &run[i];
            let free: Vec<Var> = q.free_vars().into_iter().collect();
            let sub = assignment.data.restrict(free.iter());
            // every free data variable must be bound and denote an active value of I_x
            let adom = instance.active_domain();
            for u in &free {
                match sub.get(*u) {
                    Some(value) if adom.contains(&value) => {}
                    _ => return false,
                }
            }
            query_eval::holds(instance, &sub, q).unwrap_or(false)
        }
        MsoFo::Less(x, y) => assignment.pos[x] < assignment.pos[y],
        MsoFo::PosEq(x, y) => assignment.pos[x] == assignment.pos[y],
        MsoFo::In(x, set) => assignment.sets[set].contains(&assignment.pos[x]),
        MsoFo::Not(p) => !eval(run, assignment, p),
        MsoFo::And(a, b) => eval(run, assignment, a) && eval(run, assignment, b),
        MsoFo::Or(a, b) => eval(run, assignment, a) || eval(run, assignment, b),
        MsoFo::ExistsPos(x, p) => (0..run.len()).any(|i| {
            let mut a = assignment.clone();
            a.pos.insert(*x, i);
            eval(run, &a, p)
        }),
        MsoFo::ForallPos(x, p) => (0..run.len()).all(|i| {
            let mut a = assignment.clone();
            a.pos.insert(*x, i);
            eval(run, &a, p)
        }),
        MsoFo::ExistsSet(x, p) => subsets(run.len()).any(|s| {
            let mut a = assignment.clone();
            a.sets.insert(*x, s);
            eval(run, &a, p)
        }),
        MsoFo::ForallSet(x, p) => subsets(run.len()).all(|s| {
            let mut a = assignment.clone();
            a.sets.insert(*x, s);
            eval(run, &a, p)
        }),
        MsoFo::ExistsData(u, p) => global_adom(run).into_iter().any(|e| {
            let mut a = assignment.clone();
            a.data.bind(*u, e);
            eval(run, &a, p)
        }),
        MsoFo::ForallData(u, p) => global_adom(run).into_iter().all(|e| {
            let mut a = assignment.clone();
            a.data.bind(*u, e);
            eval(run, &a, p)
        }),
    }
}

/// Evaluate a sentence over a finite run prefix.
pub fn eval_sentence(run: &[Instance], formula: &MsoFo) -> bool {
    eval(run, &RunAssignment::new(), formula)
}

/// The global active domain `Gadom(ρ)` of a run prefix.
pub fn global_adom(run: &[Instance]) -> BTreeSet<rdms_db::DataValue> {
    run.iter().flat_map(|i| i.active_domain()).collect()
}

fn subsets(n: usize) -> impl Iterator<Item = BTreeSet<usize>> {
    assert!(
        n <= 20,
        "second-order enumeration over {n} positions is infeasible; restrict to the FO fragment"
    );
    (0u64..(1u64 << n)).map(move |mask| (0..n).filter(|i| mask & (1 << i) != 0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdms_db::{DataValue, RelName};

    fn r(name: &str) -> RelName {
        RelName::new(name)
    }
    fn v(name: &str) -> Var {
        Var::new(name)
    }
    fn e(i: u64) -> DataValue {
        DataValue::e(i)
    }
    fn x(i: u32) -> PosVar {
        PosVar(i)
    }

    /// A little three-instance run: p holds at positions 0 and 2; e1 is enrolled at 0 and
    /// graduated at 2; e2 is enrolled at 1 and never graduates.
    fn student_run() -> Vec<Instance> {
        let i0 = Instance::from_facts([(r("p"), vec![]), (r("Enrolled"), vec![e(1)])]);
        let i1 = Instance::from_facts([(r("Enrolled"), vec![e(1)]), (r("Enrolled"), vec![e(2)])]);
        let i2 = Instance::from_facts([
            (r("p"), vec![]),
            (r("Graduated"), vec![e(1)]),
            (r("Enrolled"), vec![e(2)]),
        ]);
        vec![i0, i1, i2]
    }

    #[test]
    fn query_at_and_order() {
        let run = student_run();
        let phi = MsoFo::query_at(Query::prop(r("p")), x(0));
        let a0 = RunAssignment {
            pos: BTreeMap::from([(x(0), 0)]),
            ..Default::default()
        };
        let a1 = RunAssignment {
            pos: BTreeMap::from([(x(0), 1)]),
            ..Default::default()
        };
        assert!(eval(&run, &a0, &phi));
        assert!(!eval(&run, &a1, &phi));

        let reach = MsoFo::exists_pos(x(0), MsoFo::query_at(Query::prop(r("p")), x(0)));
        assert!(eval_sentence(&run, &reach));
        let invariant = MsoFo::forall_pos(x(0), MsoFo::query_at(Query::prop(r("p")), x(0)));
        assert!(!eval_sentence(&run, &invariant));
    }

    #[test]
    fn introduction_student_example() {
        // ∀x ∀g u. Enrolled(u)@x ⇒ ∃y. y > x ∧ Graduated(u)@y
        let run = student_run();
        let u = v("u");
        let phi = MsoFo::forall_pos(
            x(0),
            MsoFo::forall_data(
                u,
                MsoFo::query_at(Query::atom(r("Enrolled"), [u]), x(0)).implies(MsoFo::exists_pos(
                    x(1),
                    MsoFo::Less(x(0), x(1))
                        .and(MsoFo::query_at(Query::atom(r("Graduated"), [u]), x(1))),
                )),
            ),
        );
        // e2 enrolls but never graduates in this prefix: the property fails
        assert!(!eval_sentence(&run, &phi));

        // restricted to student e1 only, it holds
        let phi_e1 = MsoFo::forall_pos(
            x(0),
            MsoFo::query_at(
                Query::atom(r("Enrolled"), [rdms_db::Term::Value(e(1))]),
                x(0),
            )
            .implies(MsoFo::exists_pos(
                x(1),
                MsoFo::Less(x(0), x(1)).and(MsoFo::query_at(
                    Query::atom(r("Graduated"), [rdms_db::Term::Value(e(1))]),
                    x(1),
                )),
            )),
        );
        // note: constant-valued queries are allowed here because evaluation only requires the
        // *free variables* of Q to be active.
        assert!(eval_sentence(&run, &phi_e1));
    }

    #[test]
    fn global_quantification_ranges_over_gadom() {
        let run = student_run();
        assert_eq!(global_adom(&run), BTreeSet::from([e(1), e(2)]));
        // ∃g u. Graduated(u)@2 — true via e1 even though e1 ∉ adom(I₁)
        let u = v("u");
        let phi = MsoFo::exists_data(
            u,
            MsoFo::exists_pos(
                x(0),
                MsoFo::query_at(Query::atom(r("Graduated"), [u]), x(0)),
            ),
        );
        assert!(eval_sentence(&run, &phi));
    }

    #[test]
    fn query_at_requires_active_values() {
        // Appendix B: the data substitution must land in adom(I_x). e1 is not active at
        // position 1, so Enrolled(e1)@1 is false even though the value exists globally.
        let run = student_run();
        let u = v("u");
        let a = RunAssignment {
            pos: BTreeMap::from([(x(0), 1)]),
            data: Substitution::from_pairs([(u, e(1))]),
            ..Default::default()
        };
        // Enrolled(u) with u ↦ e1 is syntactically in I₁ — but wait, Enrolled(e1) *is* in I₁.
        // Use Graduated instead: Graduated(u)@1 with u ↦ e1: e1 is active at 1 (Enrolled(e1)),
        // but Graduated(e1) ∉ I₁ → false by query evaluation.
        assert!(!eval(
            &run,
            &a,
            &MsoFo::query_at(Query::atom(r("Graduated"), [u]), x(0))
        ));
        // and at a position where the value is not active at all, the atom is false outright
        let run2 = vec![
            Instance::from_facts([(r("Enrolled"), vec![e(5)])]),
            Instance::from_facts([(r("Other"), vec![e(6)])]),
        ];
        let a2 = RunAssignment {
            pos: BTreeMap::from([(x(0), 1)]),
            data: Substitution::from_pairs([(u, e(5))]),
            ..Default::default()
        };
        assert!(!eval(
            &run2,
            &a2,
            &MsoFo::query_at(Query::atom(r("Enrolled"), [u]), x(0))
        ));
    }

    #[test]
    fn set_quantification() {
        let run = student_run();
        // ∃X. 0 ∈ X ∧ 2 ∈ X ∧ ¬(1 ∈ X) — trivially true; checks the machinery
        let set = SetVar(0);
        let phi = MsoFo::exists_set(
            set,
            MsoFo::conj([
                MsoFo::exists_pos(
                    x(0),
                    MsoFo::query_at(Query::prop(r("p")), x(0)).and(MsoFo::In(x(0), set)),
                ),
                MsoFo::forall_pos(
                    x(1),
                    MsoFo::In(x(1), set).implies(MsoFo::query_at(Query::prop(r("p")), x(1))),
                ),
            ]),
        );
        assert!(eval_sentence(&run, &phi));
        assert!(!phi.is_first_order());
        assert!(phi.is_sentence());
    }

    #[test]
    fn free_variable_computation() {
        let u = v("u");
        let phi = MsoFo::query_at(Query::atom(r("R"), [u]), x(0)).and(MsoFo::exists_data(
            u,
            MsoFo::query_at(Query::atom(r("R"), [u]), x(1)),
        ));
        assert_eq!(phi.free_pos_vars(), BTreeSet::from([x(0), x(1)]));
        assert_eq!(phi.free_data_vars(), BTreeSet::from([u]));
        assert!(phi.free_set_vars().is_empty());
        assert!(!phi.is_sentence());
        assert!(phi.is_first_order());
        assert!(phi.size() > 3);
        assert_eq!(phi.num_data_vars(), 1);
    }
}
