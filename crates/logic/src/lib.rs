//! # rdms-logic — the MSO-FO specification logic over DMS runs
//!
//! Section 4 of the paper introduces **MSO-FO**: monadic second-order logic over the linear
//! order of time points of a run, whose atomic formulae are FOL(R) queries evaluated at a
//! time point, extended with *global* first-order quantification over the data values
//! occurring anywhere in the run (`∃g u`).
//!
//! This crate provides:
//!
//! * [`msofo`] — the MSO-FO syntax ([`MsoFo`]) and the semantics of Appendix B evaluated on
//!   **finite run prefixes** ([`msofo::eval`]) — the form every checking engine in this
//!   workspace consumes;
//! * [`foltl`] — the FO-LTL fragment (`G`, `F`, `X`, `U` with rigid data quantification),
//!   its finite-trace semantics, and its translation into MSO-FO (the paper notes
//!   "reachability, repeated reachability, fairness, liveness, safety, FO-LTL, etc." are all
//!   expressible);
//! * [`templates`] — ready-made property constructors used by examples, tests and benches
//!   (propositional reachability of Example 4.2, invariants, the response property of the
//!   introduction's student/graduation example, constraint-relativised model checking of
//!   Example 4.3).

pub mod foltl;
pub mod msofo;
pub mod templates;

pub use foltl::FoLtl;
pub use msofo::{MsoFo, PosVar, RunAssignment, SetVar};
