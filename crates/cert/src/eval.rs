//! Formula evaluation over wire instances.
//!
//! Two evaluators, both mirroring the engine's semantics node for node:
//!
//! * [`holds`] — boolean satisfaction under a substitution, quantifiers ranging over the
//!   instance's active domain (the engine's `rdms_db::eval::holds`). Used for guard checks
//!   during witness replay and for the invariant itself.
//! * [`eval_set`] — the full answer set of a formula over an explicit universe (the
//!   engine's `rdms_db::answers` evaluator). Used to enumerate guard answers when
//!   recomputing the successors of a committed state; the relational (join/project)
//!   evaluation keeps safety verification tractable where naive assignment enumeration
//!   would not be.
//!
//! The per-node semantics — including the corner cases around empty universes, truncated
//! signatures of empty intermediate results, and quantified variables that do not occur in
//! the body — are deliberately byte-for-byte translations of the engine's, because a
//! certificate only verifies when both sides compute the *same* successor sets.

use crate::verify::VerifyError;
use crate::wire::{Formula, InstanceData, PatTerm};
use std::collections::{BTreeMap, BTreeSet};

/// Whether `formula` holds in `instance` under the bindings in `base`, quantifiers ranging
/// over `adom`. Unbound free variables are an error (certificates validate formulas as
/// closed or guard-shaped before evaluating, so this only fires on malformed input).
pub(crate) fn holds(
    instance: &InstanceData,
    adom: &BTreeSet<u64>,
    base: &BTreeMap<String, u64>,
    formula: &Formula,
) -> Result<bool, VerifyError> {
    let mut stack = Vec::new();
    holds_rec(instance, adom, base, &mut stack, formula)
}

fn lookup(
    stack: &[(String, u64)],
    base: &BTreeMap<String, u64>,
    var: &str,
) -> Result<u64, VerifyError> {
    // innermost quantifier binding first (shadowing), then the base substitution
    for (v, value) in stack.iter().rev() {
        if v == var {
            return Ok(*value);
        }
    }
    base.get(var)
        .copied()
        .ok_or_else(|| VerifyError::UnboundVariable(var.to_string()))
}

fn resolve(
    term: &PatTerm,
    stack: &[(String, u64)],
    base: &BTreeMap<String, u64>,
) -> Result<u64, VerifyError> {
    match term {
        PatTerm::Value(c) => Ok(*c),
        PatTerm::Var(v) => lookup(stack, base, v),
    }
}

fn holds_rec(
    instance: &InstanceData,
    adom: &BTreeSet<u64>,
    base: &BTreeMap<String, u64>,
    stack: &mut Vec<(String, u64)>,
    formula: &Formula,
) -> Result<bool, VerifyError> {
    match formula {
        Formula::True => Ok(true),
        Formula::Atom(rel, terms) => {
            let tuple: Vec<u64> = terms
                .iter()
                .map(|t| resolve(t, stack, base))
                .collect::<Result<_, _>>()?;
            Ok(instance.get(rel).is_some_and(|ts| ts.contains(&tuple)))
        }
        Formula::Eq(a, b) => Ok(resolve(a, stack, base)? == resolve(b, stack, base)?),
        Formula::Not(q) => Ok(!holds_rec(instance, adom, base, stack, q)?),
        Formula::And(a, b) => Ok(holds_rec(instance, adom, base, stack, a)?
            && holds_rec(instance, adom, base, stack, b)?),
        Formula::Or(a, b) => Ok(holds_rec(instance, adom, base, stack, a)?
            || holds_rec(instance, adom, base, stack, b)?),
        Formula::Exists(v, q) => {
            for &value in adom {
                stack.push((v.clone(), value));
                let result = holds_rec(instance, adom, base, stack, q);
                stack.pop();
                if result? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Forall(v, q) => {
            for &value in adom {
                stack.push((v.clone(), value));
                let result = holds_rec(instance, adom, base, stack, q);
                stack.pop();
                if !result? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }
}

/// An answer set: rows over a sorted variable signature.
///
/// Invariant (mirroring the engine): a *non-empty* answer set's signature is exactly the
/// sorted free variables of the formula it came from; an empty one may carry a truncated
/// signature (short-circuited conjunctions), which every consumer that needs exact
/// variables on empties compensates for by recomputing them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Answers {
    pub vars: Vec<String>,
    pub rows: BTreeSet<Vec<u64>>,
}

impl Answers {
    fn unit() -> Answers {
        Answers {
            vars: Vec::new(),
            rows: BTreeSet::from([Vec::new()]),
        }
    }

    fn empty(vars: Vec<String>) -> Answers {
        Answers {
            vars,
            rows: BTreeSet::new(),
        }
    }

    /// All `|universe|^k` rows over the given (sorted, distinct) signature. Refuses when
    /// the row count does not fit a `usize`, exactly as the engine does.
    fn full(universe: &BTreeSet<u64>, vars: Vec<String>) -> Result<Answers, VerifyError> {
        if vars.is_empty() {
            return Ok(Answers::unit());
        }
        if universe.is_empty() {
            return Ok(Answers::empty(vars));
        }
        let width = u32::try_from(vars.len())
            .ok()
            .filter(|&w| universe.len().checked_pow(w).is_some())
            .ok_or(VerifyError::AnswerSpaceOverflow {
                variables: vars.len(),
                universe: universe.len(),
            })?;
        let _ = width;
        let mut rows = BTreeSet::new();
        let mut current = Vec::with_capacity(vars.len());
        fill_full(universe, vars.len(), &mut current, &mut rows);
        Ok(Answers { vars, rows })
    }

    /// Natural join on the shared columns, over the union signature.
    fn join(&self, other: &Answers) -> Answers {
        let vars = merge_vars(&self.vars, &other.vars);
        let shared: Vec<&String> = self
            .vars
            .iter()
            .filter(|v| other.vars.contains(v))
            .collect();
        let pos = |vars: &[String], v: &str| vars.iter().position(|x| x == v);
        let key_of = |vars: &[String], row: &[u64]| -> Vec<u64> {
            shared
                .iter()
                .map(|v| row[pos(vars, v).expect("shared var is a column")])
                .collect()
        };
        let mut index: BTreeMap<Vec<u64>, Vec<&Vec<u64>>> = BTreeMap::new();
        for row in &other.rows {
            index.entry(key_of(&other.vars, row)).or_default().push(row);
        }
        let mut rows = BTreeSet::new();
        for lrow in &self.rows {
            if let Some(matches) = index.get(&key_of(&self.vars, lrow)) {
                for rrow in matches {
                    let merged: Vec<u64> = vars
                        .iter()
                        .map(|v| match pos(&self.vars, v) {
                            Some(i) => lrow[i],
                            None => rrow[pos(&other.vars, v).expect("var from one side")],
                        })
                        .collect();
                    rows.insert(merged);
                }
            }
        }
        Answers { vars, rows }
    }

    /// Extend to the sorted target signature, missing columns ranging over the universe.
    fn cylindrify(
        self,
        target: &[String],
        universe: &BTreeSet<u64>,
    ) -> Result<Answers, VerifyError> {
        if target == self.vars.as_slice() {
            return Ok(self);
        }
        if self.rows.is_empty() {
            return Ok(Answers::empty(target.to_vec()));
        }
        let missing: Vec<String> = target
            .iter()
            .filter(|v| !self.vars.contains(v))
            .cloned()
            .collect();
        let full = Answers::full(universe, missing)?;
        Ok(self.join(&full))
    }

    /// Project onto `keep ⊆ vars` (sorted), deduplicating the surviving columns.
    fn project(&self, keep: &[String]) -> Answers {
        if keep.is_empty() {
            return if self.rows.is_empty() {
                Answers::empty(Vec::new())
            } else {
                Answers::unit()
            };
        }
        let positions: Vec<usize> = keep
            .iter()
            .map(|v| {
                self.vars
                    .iter()
                    .position(|x| x == v)
                    .expect("projection variable must be a column")
            })
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|row| positions.iter().map(|&p| row[p]).collect())
            .collect();
        Answers {
            vars: keep.to_vec(),
            rows,
        }
    }
}

fn fill_full(
    universe: &BTreeSet<u64>,
    width: usize,
    current: &mut Vec<u64>,
    rows: &mut BTreeSet<Vec<u64>>,
) {
    if current.len() == width {
        rows.insert(current.clone());
        return;
    }
    for &value in universe {
        current.push(value);
        fill_full(universe, width, current, rows);
        current.pop();
    }
}

fn merge_vars(a: &[String], b: &[String]) -> Vec<String> {
    let mut out: Vec<String> = a.iter().chain(b).cloned().collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The answer set of `formula` over `instance`, quantifiers and complements ranging over
/// `universe`.
pub(crate) fn eval_set(
    instance: &InstanceData,
    universe: &BTreeSet<u64>,
    formula: &Formula,
) -> Result<Answers, VerifyError> {
    match formula {
        Formula::True => Ok(Answers::unit()),
        Formula::Atom(rel, terms) => {
            let mut vars: Vec<String> = terms
                .iter()
                .filter_map(|t| match t {
                    PatTerm::Var(v) => Some(v.clone()),
                    PatTerm::Value(_) => None,
                })
                .collect();
            vars.sort_unstable();
            vars.dedup();
            let mut rows = BTreeSet::new();
            for tuple in instance.get(rel).into_iter().flatten() {
                if tuple.len() != terms.len() {
                    continue;
                }
                let mut binding: BTreeMap<&str, u64> = BTreeMap::new();
                let unifies = terms
                    .iter()
                    .zip(tuple.iter())
                    .all(|(term, &cell)| match term {
                        PatTerm::Value(c) => *c == cell,
                        PatTerm::Var(v) => match binding.get(v.as_str()) {
                            Some(&bound) => bound == cell,
                            None => {
                                binding.insert(v, cell);
                                true
                            }
                        },
                    });
                if unifies {
                    rows.insert(vars.iter().map(|v| binding[v.as_str()]).collect());
                }
            }
            Ok(Answers { vars, rows })
        }
        Formula::Eq(a, b) => Ok(match (a, b) {
            (PatTerm::Value(x), PatTerm::Value(y)) => {
                if x == y {
                    Answers::unit()
                } else {
                    Answers::empty(Vec::new())
                }
            }
            (PatTerm::Var(v), PatTerm::Value(c)) | (PatTerm::Value(c), PatTerm::Var(v)) => {
                Answers {
                    vars: vec![v.clone()],
                    rows: BTreeSet::from([vec![*c]]),
                }
            }
            (PatTerm::Var(v), PatTerm::Var(w)) => {
                if v == w {
                    Answers {
                        vars: vec![v.clone()],
                        rows: universe.iter().map(|&e| vec![e]).collect(),
                    }
                } else {
                    Answers {
                        vars: merge_vars(std::slice::from_ref(v), std::slice::from_ref(w)),
                        rows: universe.iter().map(|&e| vec![e, e]).collect(),
                    }
                }
            }
        }),
        Formula::And(a, b) => {
            let left = eval_set(instance, universe, a)?;
            if left.rows.is_empty() {
                // joining with an empty side is empty; the truncated signature is the
                // engine's short-circuit behaviour and is compensated for by Not/Forall
                return Ok(left);
            }
            let right = eval_set(instance, universe, b)?;
            Ok(left.join(&right))
        }
        Formula::Or(a, b) => {
            let free = formula.free_vars();
            let left = eval_set(instance, universe, a)?.cylindrify(&free, universe)?;
            let right = eval_set(instance, universe, b)?.cylindrify(&free, universe)?;
            let rows = left.rows.union(&right.rows).cloned().collect();
            Ok(Answers { vars: free, rows })
        }
        Formula::Not(q) => {
            let positive = eval_set(instance, universe, q)?;
            if positive.rows.is_empty() {
                return Answers::full(universe, q.free_vars());
            }
            let mut complement = Answers::full(universe, positive.vars.clone())?;
            complement.rows = complement
                .rows
                .difference(&positive.rows)
                .cloned()
                .collect();
            Ok(complement)
        }
        Formula::Exists(v, q) => {
            let free = q.free_vars();
            if universe.is_empty() && !free.contains(v) {
                return Ok(Answers::empty(free));
            }
            let inner = eval_set(instance, universe, q)?;
            let keep: Vec<String> = inner.vars.iter().filter(|x| *x != v).cloned().collect();
            Ok(inner.project(&keep))
        }
        Formula::Forall(v, q) => {
            let free = q.free_vars();
            if !free.contains(v) {
                if universe.is_empty() {
                    return Answers::full(universe, free);
                }
                return eval_set(instance, universe, q);
            }
            let inner = eval_set(instance, universe, q)?;
            if inner.rows.is_empty() {
                if universe.is_empty() {
                    let outer: Vec<String> = free.into_iter().filter(|x| x != v).collect();
                    return Ok(if outer.is_empty() {
                        Answers::unit()
                    } else {
                        Answers::empty(outer)
                    });
                }
                let outer: Vec<String> = inner.vars.iter().filter(|x| *x != v).cloned().collect();
                return Ok(Answers::empty(outer));
            }
            // group rows by the outer assignment; keep groups covering the whole universe
            let v_col = inner
                .vars
                .iter()
                .position(|x| x == v)
                .expect("quantified variable is free in the body");
            let outer: Vec<String> = inner.vars.iter().filter(|x| *x != v).cloned().collect();
            let mut groups: BTreeMap<Vec<u64>, usize> = BTreeMap::new();
            for row in &inner.rows {
                let key: Vec<u64> = row
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != v_col)
                    .map(|(_, &c)| c)
                    .collect();
                *groups.entry(key).or_insert(0) += 1;
            }
            let rows = groups
                .into_iter()
                .filter(|&(_, count)| count == universe.len())
                .map(|(key, _)| key)
                .collect();
            Ok(Answers { vars: outer, rows })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(v: &str) -> PatTerm {
        PatTerm::Var(v.to_string())
    }
    fn val(c: u64) -> PatTerm {
        PatTerm::Value(c)
    }
    fn atom(rel: &str, terms: Vec<PatTerm>) -> Formula {
        Formula::Atom(rel.to_string(), terms)
    }

    fn sample() -> (InstanceData, BTreeSet<u64>) {
        let mut inst = InstanceData::new();
        inst.insert("R".into(), BTreeSet::from([vec![1], vec![2]]));
        inst.insert("S".into(), BTreeSet::from([vec![2, 3]]));
        let adom = BTreeSet::from([1, 2, 3]);
        (inst, adom)
    }

    #[test]
    fn holds_evaluates_quantifiers_over_the_active_domain() {
        let (inst, adom) = sample();
        let base = BTreeMap::new();
        // ∃x. R(x) — true
        let f = Formula::Exists("x".into(), Box::new(atom("R", vec![var("x")])));
        assert!(holds(&inst, &adom, &base, &f).unwrap());
        // ∀x. R(x) — false (3 is not in R)
        let g = Formula::Forall("x".into(), Box::new(atom("R", vec![var("x")])));
        assert!(!holds(&inst, &adom, &base, &g).unwrap());
        // ∀x. S(x, y) with free y — error without a binding, fine with one
        let h = Formula::Forall("x".into(), Box::new(atom("S", vec![var("x"), var("y")])));
        assert!(holds(&inst, &adom, &base, &h).is_err());
        let bound = BTreeMap::from([("y".to_string(), 3u64)]);
        assert!(!holds(&inst, &adom, &bound, &h).unwrap());
    }

    #[test]
    fn holds_respects_quantifier_shadowing() {
        let (inst, adom) = sample();
        // base binds x to a non-member; the quantifier shadows it
        let base = BTreeMap::from([("x".to_string(), 999u64)]);
        let f = Formula::Exists("x".into(), Box::new(atom("R", vec![var("x")])));
        assert!(holds(&inst, &adom, &base, &f).unwrap());
        // without the quantifier the base binding applies
        assert!(!holds(&inst, &adom, &base, &atom("R", vec![var("x")])).unwrap());
    }

    #[test]
    fn eval_set_atoms_and_joins() {
        let (inst, universe) = sample();
        // R(x) ∧ S(x, y) — joins on x: only x=2, y=3
        let f = Formula::And(
            Box::new(atom("R", vec![var("x")])),
            Box::new(atom("S", vec![var("x"), var("y")])),
        );
        let a = eval_set(&inst, &universe, &f).unwrap();
        assert_eq!(a.vars, vec!["x".to_string(), "y".to_string()]);
        assert_eq!(a.rows, BTreeSet::from([vec![2, 3]]));
    }

    #[test]
    fn eval_set_negation_complements_within_the_universe() {
        let (inst, universe) = sample();
        let f = Formula::Not(Box::new(atom("R", vec![var("x")])));
        let a = eval_set(&inst, &universe, &f).unwrap();
        assert_eq!(a.rows, BTreeSet::from([vec![3]]));
    }

    #[test]
    fn eval_set_disjunction_cylindrifies_both_sides() {
        let (inst, universe) = sample();
        // R(x) ∨ S(x, y): the left side must be padded with every universe value for y
        let f = Formula::Or(
            Box::new(atom("R", vec![var("x")])),
            Box::new(atom("S", vec![var("x"), var("y")])),
        );
        let a = eval_set(&inst, &universe, &f).unwrap();
        assert_eq!(a.vars, vec!["x".to_string(), "y".to_string()]);
        assert_eq!(a.rows.len(), 2 * 3); // {1,2}×{1,2,3} ∪ {(2,3)} — (2,3) already inside
        assert!(a.rows.contains(&vec![1, 2]) && a.rows.contains(&vec![2, 3]));
    }

    #[test]
    fn eval_set_quantifiers() {
        let (inst, universe) = sample();
        // ∃y. S(x, y) → {2}
        let f = Formula::Exists("y".into(), Box::new(atom("S", vec![var("x"), var("y")])));
        let a = eval_set(&inst, &universe, &f).unwrap();
        assert_eq!(a.rows, BTreeSet::from([vec![2]]));
        // ∀x. R(x) → empty (not all of the universe is in R)
        let g = Formula::Forall("x".into(), Box::new(atom("R", vec![var("x")])));
        assert!(eval_set(&inst, &universe, &g).unwrap().rows.is_empty());
        // ∀x. ¬S(x, x) → unit (no reflexive S fact)
        let h = Formula::Forall(
            "x".into(),
            Box::new(Formula::Not(Box::new(atom("S", vec![var("x"), var("x")])))),
        );
        assert_eq!(eval_set(&inst, &universe, &h).unwrap(), Answers::unit());
    }

    #[test]
    fn eval_set_empty_universe_corner_cases() {
        let inst = InstanceData::new();
        let universe = BTreeSet::new();
        // ∃x. true over an empty universe: false
        let f = Formula::Exists("x".into(), Box::new(Formula::True));
        assert!(eval_set(&inst, &universe, &f).unwrap().rows.is_empty());
        // ∀x. R(x) over an empty universe: vacuously true
        let g = Formula::Forall("x".into(), Box::new(atom("R", vec![var("x")])));
        assert_eq!(eval_set(&inst, &universe, &g).unwrap(), Answers::unit());
    }

    #[test]
    fn eval_set_agrees_with_holds_on_closed_formulas() {
        let (inst, adom) = sample();
        let base = BTreeMap::new();
        let formulas = [
            Formula::Exists(
                "x".into(),
                Box::new(Formula::And(
                    Box::new(atom("R", vec![var("x")])),
                    Box::new(Formula::Exists(
                        "y".into(),
                        Box::new(atom("S", vec![var("x"), var("y")])),
                    )),
                )),
            ),
            Formula::Forall(
                "x".into(),
                Box::new(Formula::Or(
                    Box::new(atom("R", vec![var("x")])),
                    Box::new(Formula::Not(Box::new(atom("R", vec![var("x")])))),
                )),
            ),
            Formula::Not(Box::new(Formula::Exists(
                "z".into(),
                Box::new(Formula::And(
                    Box::new(atom("R", vec![var("z")])),
                    Box::new(Formula::Eq(var("z"), val(3))),
                )),
            ))),
        ];
        for f in &formulas {
            let boolean = holds(&inst, &adom, &base, f).unwrap();
            let set = eval_set(&inst, &adom, f).unwrap();
            assert_eq!(boolean, !set.rows.is_empty(), "{f:?}");
        }
    }
}
