//! The certificate wire format.
//!
//! Everything in this module is plain serde-serialisable data: no engine types, no
//! interned symbols, no shared storage. A [`Certificate`] is a self-contained description
//! of a DMS, a recency bound, an invariant, and either a violating witness run or a
//! committed closed state set — exactly the information the verifier needs, and nothing
//! the engine could vary between runs (no statistics, no timings, no thread counts).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Version tag of the wire format; [`crate::verify()`] rejects anything else.
pub const CERT_VERSION: u32 = 1;

/// The rank base used when canonicalising configurations: the value of recency rank `r`
/// (0 = most recent) is relabelled to `RANK_BASE + r`. Part of the wire specification —
/// the engine's `iso::canonical_config_key` and the verifier's successor recanonicalisation
/// must use the same base for the digests to agree. Declared constants must be `< RANK_BASE`
/// so relabelled values can never collide with them.
pub const RANK_BASE: u64 = u64::MAX / 2;

/// A term of an atom pattern: a variable (by name) or a concrete data value.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PatTerm {
    /// A variable, referred to by name.
    Var(String),
    /// A concrete data value.
    Value(u64),
}

/// A FOL(R) formula over the wire: the same shape as the engine's `Query`, with variables
/// as plain strings. Quantifiers range over the active domain of the instance under
/// inspection (active-domain semantics, as in the paper).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Formula {
    /// The trivially true formula.
    True,
    /// A relational atom `R(t₁,…,t_a)`.
    Atom(String, Vec<PatTerm>),
    /// Equality of two terms.
    Eq(PatTerm, PatTerm),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Existential quantification (active-domain semantics).
    Exists(String, Box<Formula>),
    /// Universal quantification (active-domain semantics).
    Forall(String, Box<Formula>),
}

impl Formula {
    /// The free variables, sorted.
    pub fn free_vars(&self) -> Vec<String> {
        let mut bound = Vec::new();
        let mut free = BTreeSet::new();
        self.collect_free(&mut bound, &mut free);
        free.into_iter().collect()
    }

    fn collect_free(&self, bound: &mut Vec<String>, free: &mut BTreeSet<String>) {
        match self {
            Formula::True => {}
            Formula::Atom(_, terms) => {
                for t in terms {
                    if let PatTerm::Var(v) = t {
                        if !bound.iter().any(|b| b == v) {
                            free.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Eq(a, b) => {
                for t in [a, b] {
                    if let PatTerm::Var(v) = t {
                        if !bound.iter().any(|b| b == v) {
                            free.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Not(q) => q.collect_free(bound, free),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_free(bound, free);
                b.collect_free(bound, free);
            }
            Formula::Exists(v, q) | Formula::Forall(v, q) => {
                bound.push(v.clone());
                q.collect_free(bound, free);
                bound.pop();
            }
        }
    }

    /// Every concrete data value mentioned syntactically.
    pub fn constants(&self) -> BTreeSet<u64> {
        let mut out = BTreeSet::new();
        self.collect_constants(&mut out);
        out
    }

    fn collect_constants(&self, out: &mut BTreeSet<u64>) {
        match self {
            Formula::True => {}
            Formula::Atom(_, terms) => {
                for t in terms {
                    if let PatTerm::Value(c) = t {
                        out.insert(*c);
                    }
                }
            }
            Formula::Eq(a, b) => {
                for t in [a, b] {
                    if let PatTerm::Value(c) = t {
                        out.insert(*c);
                    }
                }
            }
            Formula::Not(q) => q.collect_constants(out),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_constants(out);
                b.collect_constants(out);
            }
            Formula::Exists(_, q) | Formula::Forall(_, q) => q.collect_constants(out),
        }
    }

    /// Visit every atom `(relation, terms)` of the formula.
    pub fn for_each_atom<F: FnMut(&str, &[PatTerm])>(&self, f: &mut F) {
        match self {
            Formula::True | Formula::Eq(..) => {}
            Formula::Atom(rel, terms) => f(rel, terms),
            Formula::Not(q) | Formula::Exists(_, q) | Formula::Forall(_, q) => q.for_each_atom(f),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.for_each_atom(f);
                b.for_each_atom(f);
            }
        }
    }
}

/// A relational instance on the wire: relation name → set of tuples. Normal form: no
/// relation maps to an empty tuple set (the verifier rejects such entries, so digests are
/// unambiguous).
pub type InstanceData = BTreeMap<String, BTreeSet<Vec<u64>>>;

/// The active domain of an instance: every value occurring in some tuple.
pub fn active_domain(instance: &InstanceData) -> BTreeSet<u64> {
    instance
        .values()
        .flat_map(|tuples| tuples.iter().flatten().copied())
        .collect()
}

/// An atom pattern `R(t₁,…,t_a)` of an action's delete or add set.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomPattern {
    /// Relation name.
    pub rel: String,
    /// Terms, one per column.
    pub terms: Vec<PatTerm>,
}

/// One guarded action of the DMS.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionData {
    /// Action name (informational; replay is by index).
    pub name: String,
    /// Parameter variables `⃗u`, in declaration order.
    pub params: Vec<String>,
    /// Fresh-input variables `⃗v`, in declaration order (the order determines the sequence
    /// numbers the fresh values receive).
    pub fresh: Vec<String>,
    /// The guard; its free variables must be exactly `params`.
    pub guard: Formula,
    /// Facts to delete (variables must be parameters).
    pub del: Vec<AtomPattern>,
    /// Facts to add (variables must be parameters or fresh inputs).
    pub add: Vec<AtomPattern>,
}

/// The DMS a certificate talks about, in wire form.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct System {
    /// Schema: relation name → arity.
    pub relations: BTreeMap<String, usize>,
    /// Declared constants `∆₀`; every value of the initial instance must be one, and all
    /// must be `< `[`RANK_BASE`].
    pub constants: BTreeSet<u64>,
    /// The initial instance `I₀`.
    pub initial: InstanceData,
    /// The actions, in the engine's declaration order (witness steps index into this list).
    pub actions: Vec<ActionData>,
}

/// One step of a witness run: which action fired, and the values bound to its parameters
/// and fresh inputs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepData {
    /// Index into [`System::actions`].
    pub action: usize,
    /// Variable name → data value, covering at least all parameters and fresh inputs.
    pub bindings: BTreeMap<String, u64>,
}

/// One committed canonical state of a `Safe` certificate.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateEntry {
    /// [`crate::digest::instance_digest`] of `facts` (stored redundantly so tampering with
    /// either field is detectable on its own).
    pub digest: u64,
    /// The canonical instance: non-constant values relabelled to `RANK_BASE + rank`.
    pub facts: InstanceData,
    /// Digest multiset of this state's canonical successors, sorted ascending.
    pub successors: Vec<u64>,
}

/// The claim a certificate makes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CertVerdict {
    /// The invariant is violated: here is a `b`-bounded run ending in a bad state.
    Violation {
        /// The witness steps, replayed from `System::initial` by the verifier.
        witness: Vec<StepData>,
    },
    /// The invariant holds in every reachable state (for this recency bound): here is the
    /// full canonical state space, closed under successors, with no bad state in it.
    Safe {
        /// Every reachable canonical state, sorted by digest.
        states: Vec<StateEntry>,
        /// Merkle-style commitment over the state digests
        /// ([`crate::digest::merkle_root`]).
        commitment: u64,
    },
}

/// A self-contained, independently checkable certificate for one invariant check.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Wire-format version ([`CERT_VERSION`]).
    pub version: u32,
    /// The recency bound `b` the check ran at.
    pub bound: usize,
    /// The state invariant that was checked (a closed formula; its constants must be
    /// declared in [`System::constants`]).
    pub invariant: Formula,
    /// The system that was checked.
    pub system: System,
    /// The claim plus its evidence.
    pub verdict: CertVerdict,
}

impl Certificate {
    /// Serialise to JSON (the canonical wire encoding).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("certificates always serialise")
    }

    /// Parse from JSON. A parse failure is a rejection like any other.
    pub fn from_json(json: &str) -> Result<Certificate, crate::verify::VerifyError> {
        serde_json::from_str(json).map_err(|e| crate::verify::VerifyError::Malformed(e.to_string()))
    }

    /// Verify this certificate from scratch (see [`crate::verify::verify`]).
    pub fn verify(&self) -> Result<(), crate::verify::VerifyError> {
        crate::verify::verify(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_respect_shadowing() {
        // ∃x. R(x, y) — x bound, y free
        let f = Formula::Exists(
            "x".into(),
            Box::new(Formula::Atom(
                "R".into(),
                vec![PatTerm::Var("x".into()), PatTerm::Var("y".into())],
            )),
        );
        assert_eq!(f.free_vars(), vec!["y".to_string()]);
        // ∃x. (R(x) ∧ ∃x. Q(x)) — nothing free
        let g = Formula::Exists(
            "x".into(),
            Box::new(Formula::And(
                Box::new(Formula::Atom("R".into(), vec![PatTerm::Var("x".into())])),
                Box::new(Formula::Exists(
                    "x".into(),
                    Box::new(Formula::Atom("Q".into(), vec![PatTerm::Var("x".into())])),
                )),
            )),
        );
        assert!(g.free_vars().is_empty());
    }

    #[test]
    fn constants_are_collected_from_atoms_and_equalities() {
        let f = Formula::And(
            Box::new(Formula::Atom(
                "R".into(),
                vec![PatTerm::Value(7), PatTerm::Var("x".into())],
            )),
            Box::new(Formula::Eq(PatTerm::Var("x".into()), PatTerm::Value(9))),
        );
        assert_eq!(f.constants(), BTreeSet::from([7, 9]));
    }

    #[test]
    fn active_domain_unions_all_tuples() {
        let mut inst = InstanceData::new();
        inst.insert("R".into(), BTreeSet::from([vec![1, 2], vec![3, 1]]));
        inst.insert("p".into(), BTreeSet::from([vec![]]));
        assert_eq!(active_domain(&inst), BTreeSet::from([1, 2, 3]));
    }

    #[test]
    fn wire_types_round_trip_through_json() {
        let cert = Certificate {
            version: CERT_VERSION,
            bound: 2,
            invariant: Formula::Atom("p".into(), vec![]),
            system: System {
                relations: BTreeMap::from([("p".into(), 0), ("R".into(), 1)]),
                constants: BTreeSet::from([1]),
                initial: BTreeMap::from([("p".into(), BTreeSet::from([vec![]]))]),
                actions: vec![ActionData {
                    name: "α".into(),
                    params: vec!["u".into()],
                    fresh: vec!["v".into()],
                    guard: Formula::Atom("R".into(), vec![PatTerm::Var("u".into())]),
                    del: vec![],
                    add: vec![AtomPattern {
                        rel: "R".into(),
                        terms: vec![PatTerm::Var("v".into())],
                    }],
                }],
            },
            verdict: CertVerdict::Violation {
                witness: vec![StepData {
                    action: 0,
                    bindings: BTreeMap::from([("u".into(), 1), ("v".into(), 2)]),
                }],
            },
        };
        let json = cert.to_json();
        let back = Certificate::from_json(&json).unwrap();
        assert_eq!(back, cert);
    }
}
