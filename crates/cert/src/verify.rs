//! Certificate verification.
//!
//! [`verify`] checks a [`Certificate`] from scratch, against nothing but the wire data and
//! the recency-bounded DMS semantics re-implemented in this crate:
//!
//! * A `Violation` certificate is checked by **replaying** the witness run from the initial
//!   instance — every step's parameters must lie in the `Recent_b` window (or be declared
//!   constants), fresh inputs must be history-fresh and injective, the guard must hold, the
//!   update is applied deletions-first — and the final state must *falsify* the invariant.
//! * A `Safe` certificate is checked for **closure**: the committed set must contain the
//!   initial state, every committed state must satisfy the invariant, and every committed
//!   state's recomputed canonical successors must match the stored digests and lie inside
//!   the committed set. Together these prove no `b`-bounded run can reach a bad state.
//!
//! Any deviation — a flipped digest, a truncated witness, a dropped state, a successor
//! outside the commitment — is a [`VerifyError`].

use crate::digest::{instance_digest, merkle_root};
use crate::eval::{eval_set, holds};
use crate::wire::{
    active_domain, ActionData, AtomPattern, CertVerdict, Certificate, Formula, InstanceData,
    PatTerm, StepData, System, CERT_VERSION, RANK_BASE,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why a certificate was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The input is not a well-formed certificate at all (e.g. a JSON parse failure).
    Malformed(String),
    /// Unsupported wire-format version.
    Version(u32),
    /// A formula, pattern or instance mentions a relation the schema does not declare.
    UnknownRelation(String),
    /// A tuple or atom has the wrong number of columns for its relation.
    ArityMismatch {
        /// Relation name.
        rel: String,
        /// Declared arity.
        expected: usize,
        /// Number of columns found.
        got: usize,
    },
    /// An instance maps a relation to an empty tuple set (violates the wire normal form).
    EmptyRelationEntry(String),
    /// A declared constant is `≥ RANK_BASE` and could collide with canonical values.
    ConstantTooLarge(u64),
    /// The initial instance contains a value that is not a declared constant.
    InitialNotConstant(u64),
    /// An action declaration is internally inconsistent.
    ActionInvalid {
        /// Index into `System::actions`.
        action: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// The invariant has a free variable (it must be a closed formula).
    PropertyNotClosed(String),
    /// The invariant mentions a value that is not a declared constant.
    PropertyConstant(u64),
    /// A formula referenced a variable with no binding in scope.
    UnboundVariable(String),
    /// An answer set would not fit in memory (`|universe|^vars` overflows).
    AnswerSpaceOverflow {
        /// Number of columns requested.
        variables: usize,
        /// Universe size.
        universe: usize,
    },
    /// A witness step names an action index outside the system's action list.
    BadActionIndex {
        /// Witness step position.
        step: usize,
        /// The out-of-range index.
        index: usize,
    },
    /// A witness step leaves a parameter or fresh input unbound.
    MissingBinding {
        /// Witness step position.
        step: usize,
        /// The unbound variable.
        var: String,
    },
    /// A parameter is bound outside the `Recent_b` window (and is not a constant).
    RecencyViolation {
        /// Witness step position.
        step: usize,
        /// The offending parameter.
        var: String,
        /// Its value.
        value: u64,
    },
    /// A fresh input is bound to a value that is not history-fresh.
    FreshNotFresh {
        /// Witness step position.
        step: usize,
        /// The offending fresh variable.
        var: String,
        /// Its value.
        value: u64,
    },
    /// Two fresh inputs of one step are bound to the same value.
    FreshCollision {
        /// Witness step position.
        step: usize,
        /// The second variable bound to the value.
        var: String,
        /// The duplicated value.
        value: u64,
    },
    /// A step's guard does not hold under the claimed parameter binding.
    GuardFailed {
        /// Witness step position.
        step: usize,
    },
    /// The replayed witness ends in a state that *satisfies* the invariant.
    FinalStateSatisfiesInvariant,
    /// A `Safe` certificate with no committed states (the initial state always exists).
    EmptySafeCertificate,
    /// A committed state's stored digest does not match its stored facts.
    StateDigestMismatch {
        /// Position in the committed state list.
        index: usize,
        /// The digest stored in the certificate.
        stored: u64,
        /// The digest recomputed from the facts.
        computed: u64,
    },
    /// The committed states are not sorted strictly ascending by digest.
    StatesOutOfOrder {
        /// Position of the offending entry.
        index: usize,
    },
    /// The commitment does not equal the Merkle root of the state digests.
    CommitmentMismatch {
        /// The commitment stored in the certificate.
        stored: u64,
        /// The recomputed root.
        computed: u64,
    },
    /// The (canonical) initial state is not in the committed set.
    InitialStateMissing {
        /// Its digest.
        digest: u64,
    },
    /// A committed state is not in canonical form (non-constant values must be exactly
    /// `RANK_BASE..RANK_BASE+k`).
    NotCanonical {
        /// Position in the committed state list.
        index: usize,
        /// The offending value.
        value: u64,
    },
    /// A committed state falsifies the invariant — the certificate claims safety but
    /// commits to a bad state.
    StateViolatesInvariant {
        /// Position in the committed state list.
        index: usize,
    },
    /// A committed state's stored successor digests differ from the recomputed ones.
    SuccessorSetMismatch {
        /// Position in the committed state list.
        index: usize,
    },
    /// A recomputed successor is not itself a committed state — the set is not closed.
    SuccessorNotCommitted {
        /// Position of the predecessor in the committed state list.
        index: usize,
        /// The escaping successor's digest.
        digest: u64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Malformed(why) => write!(f, "malformed certificate: {why}"),
            VerifyError::Version(v) => {
                write!(
                    f,
                    "unsupported certificate version {v} (expected {CERT_VERSION})"
                )
            }
            VerifyError::UnknownRelation(rel) => write!(f, "unknown relation {rel}"),
            VerifyError::ArityMismatch { rel, expected, got } => {
                write!(
                    f,
                    "relation {rel} has arity {expected}, found {got} columns"
                )
            }
            VerifyError::EmptyRelationEntry(rel) => {
                write!(f, "relation {rel} maps to an empty tuple set")
            }
            VerifyError::ConstantTooLarge(c) => {
                write!(
                    f,
                    "declared constant {c} is not below the canonical rank base"
                )
            }
            VerifyError::InitialNotConstant(v) => {
                write!(f, "initial instance value {v} is not a declared constant")
            }
            VerifyError::ActionInvalid { action, reason } => {
                write!(f, "action {action} is invalid: {reason}")
            }
            VerifyError::PropertyNotClosed(v) => {
                write!(f, "invariant is not closed: free variable {v}")
            }
            VerifyError::PropertyConstant(c) => {
                write!(f, "invariant constant {c} is not declared in the system")
            }
            VerifyError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
            VerifyError::AnswerSpaceOverflow {
                variables,
                universe,
            } => {
                write!(f, "answer space {universe}^{variables} overflows")
            }
            VerifyError::BadActionIndex { step, index } => {
                write!(f, "step {step}: action index {index} out of range")
            }
            VerifyError::MissingBinding { step, var } => {
                write!(f, "step {step}: variable {var} is not bound")
            }
            VerifyError::RecencyViolation { step, var, value } => {
                write!(
                    f,
                    "step {step}: parameter {var} ↦ {value} is outside the recency window"
                )
            }
            VerifyError::FreshNotFresh { step, var, value } => {
                write!(
                    f,
                    "step {step}: fresh input {var} ↦ {value} is not history-fresh"
                )
            }
            VerifyError::FreshCollision { step, var, value } => {
                write!(f, "step {step}: fresh input {var} duplicates value {value}")
            }
            VerifyError::GuardFailed { step } => write!(f, "step {step}: guard does not hold"),
            VerifyError::FinalStateSatisfiesInvariant => {
                write!(f, "witness ends in a state that satisfies the invariant")
            }
            VerifyError::EmptySafeCertificate => {
                write!(f, "safe certificate commits to no states")
            }
            VerifyError::StateDigestMismatch {
                index,
                stored,
                computed,
            } => {
                write!(
                    f,
                    "state {index}: stored digest {stored:#x} ≠ computed {computed:#x}"
                )
            }
            VerifyError::StatesOutOfOrder { index } => {
                write!(f, "state {index}: digests not sorted strictly ascending")
            }
            VerifyError::CommitmentMismatch { stored, computed } => {
                write!(f, "commitment {stored:#x} ≠ recomputed root {computed:#x}")
            }
            VerifyError::InitialStateMissing { digest } => {
                write!(f, "initial state (digest {digest:#x}) is not committed")
            }
            VerifyError::NotCanonical { index, value } => {
                write!(f, "state {index}: value {value} breaks the canonical form")
            }
            VerifyError::StateViolatesInvariant { index } => {
                write!(f, "state {index} violates the invariant")
            }
            VerifyError::SuccessorSetMismatch { index } => {
                write!(
                    f,
                    "state {index}: stored successor digests differ from recomputed"
                )
            }
            VerifyError::SuccessorNotCommitted { index, digest } => {
                write!(f, "state {index}: successor {digest:#x} is not committed")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a certificate from scratch. `Ok(())` means the claim — violation witness or
/// safety closure — checks out against the wire data alone.
pub fn verify(cert: &Certificate) -> Result<(), VerifyError> {
    if cert.version != CERT_VERSION {
        return Err(VerifyError::Version(cert.version));
    }
    validate_system(&cert.system)?;
    validate_invariant(&cert.system, &cert.invariant)?;
    match &cert.verdict {
        CertVerdict::Violation { witness } => {
            verify_violation(&cert.system, cert.bound, &cert.invariant, witness)
        }
        CertVerdict::Safe { states, commitment } => verify_safe(
            &cert.system,
            cert.bound,
            &cert.invariant,
            states,
            *commitment,
        ),
    }
}

/// Check an instance against the schema and the no-empty-tuple-set normal form.
fn check_instance(system: &System, instance: &InstanceData) -> Result<(), VerifyError> {
    for (rel, tuples) in instance {
        let arity = *system
            .relations
            .get(rel)
            .ok_or_else(|| VerifyError::UnknownRelation(rel.clone()))?;
        if tuples.is_empty() {
            return Err(VerifyError::EmptyRelationEntry(rel.clone()));
        }
        for tuple in tuples {
            if tuple.len() != arity {
                return Err(VerifyError::ArityMismatch {
                    rel: rel.clone(),
                    expected: arity,
                    got: tuple.len(),
                });
            }
        }
    }
    Ok(())
}

/// Check a formula's atoms against the schema.
fn check_formula_atoms(system: &System, formula: &Formula) -> Result<(), VerifyError> {
    let mut error = None;
    formula.for_each_atom(&mut |rel, terms| {
        if error.is_some() {
            return;
        }
        match system.relations.get(rel) {
            None => error = Some(VerifyError::UnknownRelation(rel.to_string())),
            Some(&arity) if arity != terms.len() => {
                error = Some(VerifyError::ArityMismatch {
                    rel: rel.to_string(),
                    expected: arity,
                    got: terms.len(),
                })
            }
            Some(_) => {}
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn pattern_vars(patterns: &[AtomPattern]) -> BTreeSet<&String> {
    patterns
        .iter()
        .flat_map(|p| &p.terms)
        .filter_map(|t| match t {
            PatTerm::Var(v) => Some(v),
            PatTerm::Value(_) => None,
        })
        .collect()
}

fn pattern_constants(patterns: &[AtomPattern]) -> BTreeSet<u64> {
    patterns
        .iter()
        .flat_map(|p| &p.terms)
        .filter_map(|t| match t {
            PatTerm::Value(c) => Some(*c),
            PatTerm::Var(_) => None,
        })
        .collect()
}

fn validate_action(system: &System, index: usize, action: &ActionData) -> Result<(), VerifyError> {
    let invalid = |reason: String| VerifyError::ActionInvalid {
        action: index,
        reason,
    };
    let params: BTreeSet<&String> = action.params.iter().collect();
    if params.len() != action.params.len() {
        return Err(invalid("duplicate parameter".into()));
    }
    let fresh: BTreeSet<&String> = action.fresh.iter().collect();
    if fresh.len() != action.fresh.len() {
        return Err(invalid("duplicate fresh input".into()));
    }
    if let Some(v) = params.intersection(&fresh).next() {
        return Err(invalid(format!(
            "{v} is both a parameter and a fresh input"
        )));
    }

    check_formula_atoms(system, &action.guard)?;
    // the engine enforces Free-Vars(guard) = params at construction; guard answers are
    // complete parameter bindings only under the same condition
    let guard_free = action.guard.free_vars();
    if let Some(v) = guard_free.iter().find(|v| !params.contains(v)) {
        return Err(invalid(format!(
            "guard has free variable {v} outside the parameters"
        )));
    }
    if guard_free.len() != params.len() {
        let free: BTreeSet<&String> = guard_free.iter().collect();
        let missing = params.difference(&free).next().expect("strict subset");
        return Err(invalid(format!(
            "parameter {missing} is not free in the guard"
        )));
    }

    for pattern in action.del.iter().chain(&action.add) {
        check_formula_atoms(
            system,
            &Formula::Atom(pattern.rel.clone(), pattern.terms.clone()),
        )?;
    }
    if let Some(v) = pattern_vars(&action.del).difference(&params).next() {
        return Err(invalid(format!(
            "delete pattern variable {v} is not a parameter"
        )));
    }
    let allowed: BTreeSet<&String> = params.union(&fresh).copied().collect();
    if let Some(v) = pattern_vars(&action.add).difference(&allowed).next() {
        return Err(invalid(format!(
            "add pattern variable {v} is neither a parameter nor a fresh input"
        )));
    }

    let mut constants = action.guard.constants();
    constants.extend(pattern_constants(&action.del));
    constants.extend(pattern_constants(&action.add));
    if let Some(c) = constants.difference(&system.constants).next() {
        return Err(invalid(format!("value {c} is not a declared constant")));
    }
    Ok(())
}

fn validate_system(system: &System) -> Result<(), VerifyError> {
    if let Some(&c) = system.constants.iter().find(|&&c| c >= RANK_BASE) {
        return Err(VerifyError::ConstantTooLarge(c));
    }
    check_instance(system, &system.initial)?;
    if let Some(&v) = active_domain(&system.initial)
        .difference(&system.constants)
        .next()
    {
        return Err(VerifyError::InitialNotConstant(v));
    }
    for (index, action) in system.actions.iter().enumerate() {
        validate_action(system, index, action)?;
    }
    Ok(())
}

fn validate_invariant(system: &System, invariant: &Formula) -> Result<(), VerifyError> {
    if let Some(v) = invariant.free_vars().into_iter().next() {
        return Err(VerifyError::PropertyNotClosed(v));
    }
    check_formula_atoms(system, invariant)?;
    if let Some(&c) = invariant.constants().difference(&system.constants).next() {
        return Err(VerifyError::PropertyConstant(c));
    }
    Ok(())
}

/// The recency order of `adom` (most recent first): sequence-numbered values descending by
/// number, then unnumbered values (constants) ascending. Mirrors the engine's
/// `BConfig::recency_ranks`.
fn recency_order(adom: &BTreeSet<u64>, seqs: &BTreeMap<u64, u64>) -> Vec<u64> {
    let mut order: Vec<u64> = adom.iter().copied().collect();
    // adom iterates ascending, so the stable sort keeps unnumbered ties value-ascending
    order.sort_by_key(|v| std::cmp::Reverse(seqs.get(v).map_or(-1, |&s| s as i128)));
    order
}

fn resolve_pattern(pattern: &AtomPattern, bindings: &BTreeMap<String, u64>) -> (String, Vec<u64>) {
    let tuple = pattern
        .terms
        .iter()
        .map(|t| match t {
            PatTerm::Value(c) => *c,
            PatTerm::Var(v) => bindings[v],
        })
        .collect();
    (pattern.rel.clone(), tuple)
}

/// Apply `action` under `bindings` to `facts`: all deletions before any addition, exactly
/// as the semantics prescribes (a fact both deleted and added survives). Keeps the
/// no-empty-tuple-set normal form.
fn apply_action(
    facts: &InstanceData,
    action: &ActionData,
    bindings: &BTreeMap<String, u64>,
) -> InstanceData {
    let mut next = facts.clone();
    for pattern in &action.del {
        let (rel, tuple) = resolve_pattern(pattern, bindings);
        if let Some(tuples) = next.get_mut(&rel) {
            tuples.remove(&tuple);
            if tuples.is_empty() {
                next.remove(&rel);
            }
        }
    }
    for pattern in &action.add {
        let (rel, tuple) = resolve_pattern(pattern, bindings);
        next.entry(rel).or_default().insert(tuple);
    }
    next
}

fn verify_violation(
    system: &System,
    bound: usize,
    invariant: &Formula,
    witness: &[StepData],
) -> Result<(), VerifyError> {
    let mut facts = system.initial.clone();
    let mut history: BTreeSet<u64> = BTreeSet::new();
    let mut seqs: BTreeMap<u64, u64> = BTreeMap::new();
    let mut max_seq: u64 = 0;

    for (step, data) in witness.iter().enumerate() {
        let action = system
            .actions
            .get(data.action)
            .ok_or(VerifyError::BadActionIndex {
                step,
                index: data.action,
            })?;
        let adom = active_domain(&facts);
        let window: BTreeSet<u64> = recency_order(&adom, &seqs)
            .into_iter()
            .take(bound)
            .collect();

        let mut params = BTreeMap::new();
        for p in &action.params {
            let value = *data
                .bindings
                .get(p)
                .ok_or_else(|| VerifyError::MissingBinding {
                    step,
                    var: p.clone(),
                })?;
            if !window.contains(&value) && !system.constants.contains(&value) {
                return Err(VerifyError::RecencyViolation {
                    step,
                    var: p.clone(),
                    value,
                });
            }
            params.insert(p.clone(), value);
        }

        let mut fresh_values = BTreeSet::new();
        for v in &action.fresh {
            let value = *data
                .bindings
                .get(v)
                .ok_or_else(|| VerifyError::MissingBinding {
                    step,
                    var: v.clone(),
                })?;
            if history.contains(&value) || system.constants.contains(&value) {
                return Err(VerifyError::FreshNotFresh {
                    step,
                    var: v.clone(),
                    value,
                });
            }
            if !fresh_values.insert(value) {
                return Err(VerifyError::FreshCollision {
                    step,
                    var: v.clone(),
                    value,
                });
            }
        }

        if !holds(&facts, &adom, &params, &action.guard)? {
            return Err(VerifyError::GuardFailed { step });
        }

        let mut bindings = params;
        for v in &action.fresh {
            bindings.insert(v.clone(), data.bindings[v]);
        }
        facts = apply_action(&facts, action, &bindings);
        for v in &action.fresh {
            let value = data.bindings[v];
            history.insert(value);
            max_seq += 1;
            seqs.insert(value, max_seq);
        }
    }

    let adom = active_domain(&facts);
    if holds(&facts, &adom, &BTreeMap::new(), invariant)? {
        return Err(VerifyError::FinalStateSatisfiesInvariant);
    }
    Ok(())
}

/// Recompute the canonical successor digests of one committed canonical state.
///
/// Fresh inputs are bound to placeholder values near `u64::MAX` (distinct from every
/// canonical value and constant); re-canonicalisation erases them, so any choice of
/// history-fresh values yields the same digests — which is exactly why the engine's
/// concrete fresh values and the verifier's placeholders agree.
fn canonical_successors(
    system: &System,
    bound: usize,
    facts: &InstanceData,
    non_constants: &[u64],
) -> Result<Vec<u64>, VerifyError> {
    let adom = active_domain(facts);
    let mut order: Vec<u64> = non_constants.to_vec();
    order.extend(
        adom.iter()
            .copied()
            .filter(|v| system.constants.contains(v)),
    );
    let window: BTreeSet<u64> = order.iter().copied().take(bound).collect();

    let mut digests = Vec::new();
    for action in &system.actions {
        let guard_constants = action.guard.constants();
        let universe: BTreeSet<u64> = if guard_constants.iter().all(|c| adom.contains(c)) {
            adom.clone()
        } else {
            adom.union(&guard_constants).copied().collect()
        };
        let answers = eval_set(facts, &universe, &action.guard)?;
        'rows: for row in &answers.rows {
            // a non-empty answer set's signature is exactly the sorted parameters
            // (free(guard) = params is validated), so each row is a full parameter binding
            let mut bindings: BTreeMap<String, u64> = answers
                .vars
                .iter()
                .cloned()
                .zip(row.iter().copied())
                .collect();
            for p in &action.params {
                let value = bindings[p];
                if !window.contains(&value) && !system.constants.contains(&value) {
                    continue 'rows;
                }
            }
            for (j, v) in action.fresh.iter().enumerate() {
                bindings.insert(v.clone(), u64::MAX - j as u64);
            }
            let next = apply_action(facts, action, &bindings);
            let next_adom = active_domain(&next);

            // successor recency order among non-constants: the fresh values newest-first
            // (the last fresh input receives the highest sequence number), then the
            // surviving old non-constants in their old order
            let mut next_order: Vec<u64> = action
                .fresh
                .iter()
                .enumerate()
                .rev()
                .map(|(j, _)| u64::MAX - j as u64)
                .filter(|v| next_adom.contains(v))
                .collect();
            next_order.extend(
                non_constants
                    .iter()
                    .copied()
                    .filter(|v| next_adom.contains(v)),
            );
            let mapping: BTreeMap<u64, u64> = next_order
                .iter()
                .enumerate()
                .map(|(rank, &v)| (v, RANK_BASE + rank as u64))
                .collect();

            let canonical: InstanceData = next
                .iter()
                .map(|(rel, tuples)| {
                    (
                        rel.clone(),
                        tuples
                            .iter()
                            .map(|t| {
                                t.iter()
                                    .map(|v| mapping.get(v).copied().unwrap_or(*v))
                                    .collect()
                            })
                            .collect(),
                    )
                })
                .collect();
            digests.push(instance_digest(&canonical));
        }
    }
    digests.sort_unstable();
    Ok(digests)
}

fn verify_safe(
    system: &System,
    bound: usize,
    invariant: &Formula,
    states: &[crate::wire::StateEntry],
    commitment: u64,
) -> Result<(), VerifyError> {
    if states.is_empty() {
        return Err(VerifyError::EmptySafeCertificate);
    }

    let mut digests = Vec::with_capacity(states.len());
    for (index, entry) in states.iter().enumerate() {
        let computed = instance_digest(&entry.facts);
        if computed != entry.digest {
            return Err(VerifyError::StateDigestMismatch {
                index,
                stored: entry.digest,
                computed,
            });
        }
        if index > 0 && states[index - 1].digest >= entry.digest {
            return Err(VerifyError::StatesOutOfOrder { index });
        }
        digests.push(entry.digest);
    }

    let root = merkle_root(&digests);
    if root != commitment {
        return Err(VerifyError::CommitmentMismatch {
            stored: commitment,
            computed: root,
        });
    }

    // the initial instance is its own canonical form (its values are all constants)
    let initial_digest = instance_digest(&system.initial);
    if digests.binary_search(&initial_digest).is_err() {
        return Err(VerifyError::InitialStateMissing {
            digest: initial_digest,
        });
    }

    for (index, entry) in states.iter().enumerate() {
        check_instance(system, &entry.facts)?;
        let adom = active_domain(&entry.facts);
        let non_constants: Vec<u64> = adom
            .iter()
            .copied()
            .filter(|v| !system.constants.contains(v))
            .collect();
        for (rank, &v) in non_constants.iter().enumerate() {
            if v != RANK_BASE + rank as u64 {
                return Err(VerifyError::NotCanonical { index, value: v });
            }
        }

        if !holds(&entry.facts, &adom, &BTreeMap::new(), invariant)? {
            return Err(VerifyError::StateViolatesInvariant { index });
        }

        let successors = canonical_successors(system, bound, &entry.facts, &non_constants)?;
        if successors != entry.successors {
            return Err(VerifyError::SuccessorSetMismatch { index });
        }
        for &digest in &successors {
            if digests.binary_search(&digest).is_err() {
                return Err(VerifyError::SuccessorNotCommitted { index, digest });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::StateEntry;

    fn var(v: &str) -> PatTerm {
        PatTerm::Var(v.to_string())
    }
    fn atom(rel: &str, terms: Vec<PatTerm>) -> Formula {
        Formula::Atom(rel.to_string(), terms)
    }

    /// R(1) initially; one action replacing the current R-value with a fresh one.
    fn rotate_system() -> System {
        System {
            relations: BTreeMap::from([("R".to_string(), 1)]),
            constants: BTreeSet::from([1]),
            initial: BTreeMap::from([("R".to_string(), BTreeSet::from([vec![1]]))]),
            actions: vec![ActionData {
                name: "rotate".into(),
                params: vec!["u".into()],
                fresh: vec!["v".into()],
                guard: atom("R", vec![var("u")]),
                del: vec![AtomPattern {
                    rel: "R".into(),
                    terms: vec![var("u")],
                }],
                add: vec![AtomPattern {
                    rel: "R".into(),
                    terms: vec![var("v")],
                }],
            }],
        }
    }

    fn entry(facts: InstanceData, successors: Vec<u64>) -> StateEntry {
        StateEntry {
            digest: instance_digest(&facts),
            facts,
            successors,
        }
    }

    /// The rotate system's full canonical state space at any bound ≥ 1: the initial state
    /// R(1) and the canonicalised R(RANK_BASE), which rotates back onto itself.
    fn rotate_safe_certificate() -> Certificate {
        let initial: InstanceData = BTreeMap::from([("R".to_string(), BTreeSet::from([vec![1]]))]);
        let rotated: InstanceData =
            BTreeMap::from([("R".to_string(), BTreeSet::from([vec![RANK_BASE]]))]);
        let rotated_digest = instance_digest(&rotated);
        let mut states = vec![
            entry(initial, vec![rotated_digest]),
            entry(rotated, vec![rotated_digest]),
        ];
        states.sort_by_key(|e| e.digest);
        let commitment = merkle_root(&states.iter().map(|e| e.digest).collect::<Vec<_>>());
        Certificate {
            version: CERT_VERSION,
            bound: 1,
            // ∃x. R(x) — preserved by rotation
            invariant: Formula::Exists("x".into(), Box::new(atom("R", vec![var("x")]))),
            system: rotate_system(),
            verdict: CertVerdict::Safe { states, commitment },
        }
    }

    #[test]
    fn hand_built_safe_certificate_verifies() {
        rotate_safe_certificate().verify().unwrap();
    }

    #[test]
    fn safe_certificate_tampering_is_rejected() {
        let good = rotate_safe_certificate();

        // flipped state digest
        let mut cert = good.clone();
        if let CertVerdict::Safe { states, .. } = &mut cert.verdict {
            states[0].digest ^= 1;
        }
        assert!(matches!(
            cert.verify(),
            Err(VerifyError::StateDigestMismatch { .. })
        ));

        // dropped state entry
        let mut cert = good.clone();
        if let CertVerdict::Safe { states, .. } = &mut cert.verdict {
            states.pop();
        }
        assert!(matches!(
            cert.verify(),
            Err(VerifyError::CommitmentMismatch { .. })
        ));

        // forged commitment over a truncated set: some successor now escapes
        let mut cert = good.clone();
        if let CertVerdict::Safe { states, commitment } = &mut cert.verdict {
            let initial_digest = instance_digest(&cert.system.initial);
            states.retain(|e| e.digest == initial_digest);
            *commitment = merkle_root(&[initial_digest]);
        }
        assert!(matches!(
            cert.verify(),
            Err(VerifyError::SuccessorNotCommitted { .. })
        ));

        // flipped successor digest
        let mut cert = good.clone();
        if let CertVerdict::Safe { states, .. } = &mut cert.verdict {
            states[0].successors[0] ^= 1;
        }
        assert!(matches!(
            cert.verify(),
            Err(VerifyError::SuccessorSetMismatch { .. })
        ));

        // wrong version
        let mut cert = good.clone();
        cert.version = CERT_VERSION + 1;
        assert!(matches!(cert.verify(), Err(VerifyError::Version(_))));

        // invariant the committed states do not all satisfy: ∀x. R(x) → x = 1
        let mut cert = good.clone();
        cert.invariant = Formula::Forall(
            "x".into(),
            Box::new(Formula::Or(
                Box::new(Formula::Not(Box::new(atom("R", vec![var("x")])))),
                Box::new(Formula::Eq(var("x"), PatTerm::Value(1))),
            )),
        );
        assert!(matches!(
            cert.verify(),
            Err(VerifyError::StateViolatesInvariant { .. })
        ));
    }

    fn rotate_violation_certificate() -> Certificate {
        Certificate {
            version: CERT_VERSION,
            bound: 1,
            // ∀x. R(x) → x = 1 — broken after one rotation
            invariant: Formula::Forall(
                "x".into(),
                Box::new(Formula::Or(
                    Box::new(Formula::Not(Box::new(atom("R", vec![var("x")])))),
                    Box::new(Formula::Eq(var("x"), PatTerm::Value(1))),
                )),
            ),
            system: rotate_system(),
            verdict: CertVerdict::Violation {
                witness: vec![StepData {
                    action: 0,
                    bindings: BTreeMap::from([("u".to_string(), 1), ("v".to_string(), 2)]),
                }],
            },
        }
    }

    #[test]
    fn hand_built_violation_certificate_verifies() {
        rotate_violation_certificate().verify().unwrap();
    }

    #[test]
    fn violation_tampering_is_rejected() {
        let good = rotate_violation_certificate();

        // truncated witness: the initial state satisfies the invariant
        let mut cert = good.clone();
        if let CertVerdict::Violation { witness } = &mut cert.verdict {
            witness.clear();
        }
        assert_eq!(
            cert.verify(),
            Err(VerifyError::FinalStateSatisfiesInvariant)
        );

        // fresh input colliding with a constant
        let mut cert = good.clone();
        if let CertVerdict::Violation { witness } = &mut cert.verdict {
            witness[0].bindings.insert("v".into(), 1);
        }
        assert!(matches!(
            cert.verify(),
            Err(VerifyError::FreshNotFresh { .. })
        ));

        // parameter bound to a value not in the instance: guard has no such answer
        let mut cert = good.clone();
        if let CertVerdict::Violation { witness } = &mut cert.verdict {
            witness[0].bindings.insert("u".into(), 5);
        }
        assert!(matches!(
            cert.verify(),
            Err(VerifyError::RecencyViolation { .. }) | Err(VerifyError::GuardFailed { .. })
        ));

        // out-of-range action index
        let mut cert = good.clone();
        if let CertVerdict::Violation { witness } = &mut cert.verdict {
            witness[0].action = 3;
        }
        assert!(matches!(
            cert.verify(),
            Err(VerifyError::BadActionIndex { .. })
        ));
    }

    #[test]
    fn recency_window_is_enforced_on_replay() {
        // intro: adds a fresh value; use: requires its parameter in the window
        let system = System {
            relations: BTreeMap::from([("R".to_string(), 1)]),
            constants: BTreeSet::from([1]),
            initial: BTreeMap::from([("R".to_string(), BTreeSet::from([vec![1]]))]),
            actions: vec![
                ActionData {
                    name: "intro".into(),
                    params: vec![],
                    fresh: vec!["v".into()],
                    guard: Formula::True,
                    del: vec![],
                    add: vec![AtomPattern {
                        rel: "R".into(),
                        terms: vec![var("v")],
                    }],
                },
                ActionData {
                    name: "use".into(),
                    params: vec!["u".into()],
                    fresh: vec![],
                    guard: atom("R", vec![var("u")]),
                    del: vec![],
                    add: vec![],
                },
            ],
        };
        let witness = |last: u64| {
            vec![
                StepData {
                    action: 0,
                    bindings: BTreeMap::from([("v".to_string(), 2)]),
                },
                StepData {
                    action: 0,
                    bindings: BTreeMap::from([("v".to_string(), 3)]),
                },
                StepData {
                    action: 1,
                    bindings: BTreeMap::from([("u".to_string(), last)]),
                },
            ]
        };
        // at b = 1 only the newest value (3) is in the window
        let ok = verify_violation(
            &system,
            1,
            &Formula::Not(Box::new(Formula::True)),
            &witness(3),
        );
        assert_eq!(ok, Ok(()));
        let stale = verify_violation(
            &system,
            1,
            &Formula::Not(Box::new(Formula::True)),
            &witness(2),
        );
        assert!(matches!(stale, Err(VerifyError::RecencyViolation { .. })));
        // at b = 2 the older value is admitted again
        let ok2 = verify_violation(
            &system,
            2,
            &Formula::Not(Box::new(Formula::True)),
            &witness(2),
        );
        assert_eq!(ok2, Ok(()));
    }

    #[test]
    fn system_validation_rejects_malformed_input() {
        let mut system = rotate_system();
        system.initial.insert("Q".into(), BTreeSet::from([vec![1]]));
        assert!(matches!(
            validate_system(&system),
            Err(VerifyError::UnknownRelation(_))
        ));

        let mut system = rotate_system();
        system.initial.insert("R".into(), BTreeSet::from([vec![7]]));
        assert!(matches!(
            validate_system(&system),
            Err(VerifyError::InitialNotConstant(7))
        ));

        let mut system = rotate_system();
        system.constants.insert(RANK_BASE + 3);
        assert!(matches!(
            validate_system(&system),
            Err(VerifyError::ConstantTooLarge(_))
        ));

        // guard whose free variables are not the parameters
        let mut system = rotate_system();
        system.actions[0].guard = Formula::True;
        assert!(matches!(
            validate_system(&system),
            Err(VerifyError::ActionInvalid { .. })
        ));
    }
}
