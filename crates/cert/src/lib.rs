//! # rdms-cert — the independent certificate verifier
//!
//! The engine may be clever; the checker must be small and stable. `rdms-checker`'s
//! explorer earns its speed with parallel work stealing, copy-on-write instances, an
//! indexed sorted-row evaluator and canonical-form deduplication — all of which would sit
//! in the trusted base if a bare `Verdict` were the end of the story. This crate is the
//! other half of the refactor: verdicts carry **certificates**,
//! and certificates are checked *here*, by a verifier that
//!
//! * depends on nothing but serde (no engine crates in its dependency tree — CI enforces
//!   this with `cargo tree`),
//! * re-implements only the *specification* of the recency-bounded DMS semantics (a few
//!   hundred lines over plain `BTreeMap`s), never the engine's optimisations,
//! * and rejects anything it cannot positively confirm.
//!
//! ## Certificates
//!
//! A [`Certificate`] is self-contained: the system ([`System`]), the recency bound, the
//! invariant ([`Formula`]), and the evidence ([`CertVerdict`]):
//!
//! * **`Violation { witness }`** — a sequence of steps ([`StepData`]). The verifier replays
//!   them from the initial instance: parameters must lie in the `Recent_b` window (or be
//!   declared constants), fresh inputs must be history-fresh and injective, guards must
//!   hold, updates apply deletions before additions, and the final state must *falsify*
//!   the invariant.
//! * **`Safe { states, commitment }`** — the full canonical state space as a list of
//!   [`StateEntry`]s plus a Merkle-style commitment ([`merkle_root`]) over the state
//!   digests ([`instance_digest`]). The verifier checks *closure*: the initial state is
//!   committed, every committed state satisfies the invariant, and every committed state's
//!   recomputed canonical successor digests match the stored ones and stay inside the
//!   commitment. No `b`-bounded run can leave a closed set, so no reachable state is bad.
//!
//! Committed states are in the engine's canonical form: values introduced as fresh inputs
//! are relabelled to `RANK_BASE + rank` by recency (most recent first), declared constants
//! keep their identity. That makes the committed set finite whenever the engine's
//! canonical exploration saturates, and lets the verifier recompute successor digests by
//! binding fresh inputs to placeholders that re-canonicalisation erases.
//!
//! The wire encoding is JSON over the types in [`wire`]; see
//! [`Certificate::to_json`]/[`Certificate::from_json`]. Nothing volatile — timings, thread
//! counts, frontier sizes — appears anywhere in a certificate, so two runs of the same
//! check serialise byte-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
mod eval;
pub mod verify;
pub mod wire;

pub use digest::{instance_digest, merkle_root, Hasher};
pub use verify::{verify, VerifyError};
pub use wire::{
    active_domain, ActionData, AtomPattern, CertVerdict, Certificate, Formula, InstanceData,
    PatTerm, StateEntry, StepData, System, CERT_VERSION, RANK_BASE,
};
