//! Content digests and the Merkle-style commitment over the explored state set.
//!
//! The digest is 64-bit FNV-1a over a length-prefixed encoding of the instance. It is a
//! *content* hash, not a cryptographic one: certificates defend against accidental
//! corruption and against an engine bug silently changing a state, not against an adversary
//! engineering collisions. The encoding is part of the wire specification — the engine
//! streams it over its own representation while recording, and the verifier recomputes it
//! from [`InstanceData`]; both sides iterate relations in ascending name order and tuples in
//! ascending lexicographic order, so the digests agree byte for byte.

use crate::wire::InstanceData;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64 hasher. Public so the engine side can stream the instance
/// encoding without first materialising an [`InstanceData`].
#[derive(Clone, Debug)]
pub struct Hasher(u64);

impl Hasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Hasher {
        Hasher(FNV_OFFSET)
    }

    /// Absorb one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.0 = (self.0 ^ byte as u64).wrapping_mul(FNV_PRIME);
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorb a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

/// The digest of a relational instance.
///
/// Encoding: the number of relations, then per relation (ascending name order) the name
/// bytes, a `0xFF` terminator, the tuple count, and per tuple (ascending order) its length
/// followed by its values, all integers as little-endian `u64`.
pub fn instance_digest(instance: &InstanceData) -> u64 {
    let mut h = Hasher::new();
    h.write_u64(instance.len() as u64);
    for (rel, tuples) in instance {
        h.write_bytes(rel.as_bytes());
        h.write_u8(0xFF);
        h.write_u64(tuples.len() as u64);
        for tuple in tuples {
            h.write_u64(tuple.len() as u64);
            for &v in tuple {
                h.write_u64(v);
            }
        }
    }
    h.finish()
}

/// Combine two digests into a parent node digest. The `0x01` tag domain-separates interior
/// nodes from the leaf digests themselves.
fn combine(left: u64, right: u64) -> u64 {
    let mut h = Hasher::new();
    h.write_u8(0x01);
    h.write_u64(left);
    h.write_u64(right);
    h.finish()
}

/// The Merkle-style commitment over a set of state digests.
///
/// The leaves are the digests sorted ascending; levels are built by combining adjacent
/// pairs (an odd last leaf is promoted unchanged) until one root remains. The empty set
/// commits to a fixed tag value.
pub fn merkle_root(digests: &[u64]) -> u64 {
    let mut level: Vec<u64> = digests.to_vec();
    level.sort_unstable();
    if level.is_empty() {
        let mut h = Hasher::new();
        h.write_bytes(b"rdms-cert-empty");
        return h.finish();
    }
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(match pair {
                [l, r] => combine(*l, *r),
                [odd] => *odd,
                _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
            });
        }
        level = next;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    fn inst(facts: &[(&str, &[&[u64]])]) -> InstanceData {
        facts
            .iter()
            .map(|(rel, tuples)| {
                (
                    rel.to_string(),
                    tuples.iter().map(|t| t.to_vec()).collect::<BTreeSet<_>>(),
                )
            })
            .collect::<BTreeMap<_, _>>()
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = inst(&[("R", &[&[1, 2], &[3, 4]]), ("p", &[&[]])]);
        let b = inst(&[("p", &[&[]]), ("R", &[&[3, 4], &[1, 2]])]);
        // same content in any insertion order → same digest
        assert_eq!(instance_digest(&a), instance_digest(&b));
        // any content change → different digest
        let c = inst(&[("R", &[&[1, 2], &[3, 5]]), ("p", &[&[]])]);
        assert_ne!(instance_digest(&a), instance_digest(&c));
        let d = inst(&[("R", &[&[1, 2], &[3, 4]])]);
        assert_ne!(instance_digest(&a), instance_digest(&d));
    }

    #[test]
    fn digest_distinguishes_tuple_boundaries() {
        // R = {(1,2)} vs R = {(1),(2)} — flattened values are identical, the length
        // prefixes must separate them
        let joined = inst(&[("R2", &[&[1, 2]])]);
        let split = inst(&[("R2", &[&[1], &[2]])]);
        assert_ne!(instance_digest(&joined), instance_digest(&split));
    }

    #[test]
    fn merkle_root_is_order_insensitive_and_tamper_sensitive() {
        let root = merkle_root(&[10, 20, 30, 40, 50]);
        assert_eq!(root, merkle_root(&[50, 30, 10, 40, 20]));
        assert_ne!(root, merkle_root(&[10, 20, 30, 40]));
        assert_ne!(root, merkle_root(&[10, 20, 30, 40, 51]));
        assert_ne!(merkle_root(&[]), merkle_root(&[0]));
        assert_eq!(merkle_root(&[7]), 7);
    }
}
