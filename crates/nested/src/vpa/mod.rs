//! Visibly pushdown automata (VPAs) over finite nested words.
//!
//! A VPA reads a word over a visible alphabet; on call letters it pushes one stack symbol, on
//! return letters it pops one (or reads the empty stack, for pending returns), on internal
//! letters it leaves the stack alone. Acceptance is by final state, regardless of the stack
//! content — the Alur–Madhusudan convention, which also matches the paper's use of nested
//! words with unmatched pushes.
//!
//! Submodules:
//! * [`ops`] — union, intersection (product), relabelling (projection / cylindrification);
//! * [`determinize`] — the summary-pair determinization, and complementation;
//! * [`emptiness`] — emptiness check and witness extraction.

pub mod determinize;
pub mod emptiness;
pub mod ops;

#[cfg(test)]
mod cross_validation;

use crate::alphabet::{Alphabet, LetterId, LetterKind};
use crate::word::NestedWord;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A (nondeterministic) visibly pushdown automaton.
///
/// States and stack symbols are dense indices (`0 ‥ num_states−1`, `0 ‥ num_stack−1`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vpa {
    /// The visible alphabet.
    pub alphabet: Arc<Alphabet>,
    /// Number of states.
    pub num_states: usize,
    /// Number of stack symbols.
    pub num_stack: usize,
    /// Initial states.
    pub initial: BTreeSet<usize>,
    /// Final (accepting) states.
    pub finals: BTreeSet<usize>,
    /// Internal transitions `(q, a, q')`.
    pub internal: BTreeSet<(usize, LetterId, usize)>,
    /// Call transitions `(q, a, q', γ)`: read `a`, move to `q'`, push `γ`.
    pub call: BTreeSet<(usize, LetterId, usize, usize)>,
    /// Return transitions `(q, γ, a, q')`: read `a` popping `γ`, move to `q'`.
    pub ret: BTreeSet<(usize, usize, LetterId, usize)>,
    /// Pending-return transitions `(q, a, q')`: read `a` on the empty stack.
    pub ret_empty: BTreeSet<(usize, LetterId, usize)>,
}

impl Vpa {
    /// An automaton with the given number of states and stack symbols and no transitions.
    pub fn new(alphabet: Arc<Alphabet>, num_states: usize, num_stack: usize) -> Vpa {
        Vpa {
            alphabet,
            num_states,
            num_stack,
            initial: BTreeSet::new(),
            finals: BTreeSet::new(),
            internal: BTreeSet::new(),
            call: BTreeSet::new(),
            ret: BTreeSet::new(),
            ret_empty: BTreeSet::new(),
        }
    }

    /// The automaton accepting every nested word over `alphabet` (single accepting state with
    /// self-loops on every letter).
    pub fn universal(alphabet: Arc<Alphabet>) -> Vpa {
        let mut vpa = Vpa::new(alphabet.clone(), 1, 1);
        vpa.initial.insert(0);
        vpa.finals.insert(0);
        for letter in alphabet.letters() {
            match alphabet.kind(letter) {
                LetterKind::Internal => {
                    vpa.internal.insert((0, letter, 0));
                }
                LetterKind::Call => {
                    vpa.call.insert((0, letter, 0, 0));
                }
                LetterKind::Return => {
                    vpa.ret.insert((0, 0, letter, 0));
                    vpa.ret_empty.insert((0, letter, 0));
                }
            }
        }
        vpa
    }

    /// The automaton accepting nothing.
    pub fn empty_language(alphabet: Arc<Alphabet>) -> Vpa {
        let mut vpa = Vpa::new(alphabet, 1, 1);
        vpa.initial.insert(0);
        vpa
    }

    /// Mark a state initial.
    pub fn set_initial(&mut self, q: usize) {
        self.initial.insert(q);
    }

    /// Mark a state final.
    pub fn set_final(&mut self, q: usize) {
        self.finals.insert(q);
    }

    /// Add an internal transition.
    pub fn add_internal(&mut self, q: usize, a: LetterId, q2: usize) {
        debug_assert_eq!(self.alphabet.kind(a), LetterKind::Internal);
        self.internal.insert((q, a, q2));
    }

    /// Add a call transition.
    pub fn add_call(&mut self, q: usize, a: LetterId, q2: usize, gamma: usize) {
        debug_assert_eq!(self.alphabet.kind(a), LetterKind::Call);
        self.call.insert((q, a, q2, gamma));
    }

    /// Add a return transition.
    pub fn add_return(&mut self, q: usize, gamma: usize, a: LetterId, q2: usize) {
        debug_assert_eq!(self.alphabet.kind(a), LetterKind::Return);
        self.ret.insert((q, gamma, a, q2));
    }

    /// Add a pending-return (empty-stack) transition.
    pub fn add_return_empty(&mut self, q: usize, a: LetterId, q2: usize) {
        debug_assert_eq!(self.alphabet.kind(a), LetterKind::Return);
        self.ret_empty.insert((q, a, q2));
    }

    /// Add a self-loop on every letter at state `q` (ignoring the stack: pushes a dedicated
    /// symbol, pops anything). Convenient when building atomic automata for the MSO
    /// compilation. `loop_stack` is the stack symbol used for the call self-loops.
    pub fn add_all_letter_loops(&mut self, q: usize, loop_stack: usize) {
        for letter in self.alphabet.clone().letters() {
            match self.alphabet.kind(letter) {
                LetterKind::Internal => self.add_internal(q, letter, q),
                LetterKind::Call => self.add_call(q, letter, q, loop_stack),
                LetterKind::Return => {
                    for gamma in 0..self.num_stack {
                        self.add_return(q, gamma, letter, q);
                    }
                    self.add_return_empty(q, letter, q);
                }
            }
        }
    }

    /// Whether the automaton accepts the given nested word (nondeterministic simulation over
    /// `(state, stack)` configurations).
    pub fn accepts(&self, word: &NestedWord) -> bool {
        debug_assert_eq!(word.alphabet().as_ref(), self.alphabet.as_ref());
        let mut configs: BTreeSet<(usize, Vec<usize>)> =
            self.initial.iter().map(|&q| (q, Vec::new())).collect();
        for position in 0..word.len() {
            let letter = word.letter(position);
            let mut next: BTreeSet<(usize, Vec<usize>)> = BTreeSet::new();
            match self.alphabet.kind(letter) {
                LetterKind::Internal => {
                    for (q, stack) in &configs {
                        for &(p, a, p2) in &self.internal {
                            if p == *q && a == letter {
                                next.insert((p2, stack.clone()));
                            }
                        }
                    }
                }
                LetterKind::Call => {
                    for (q, stack) in &configs {
                        for &(p, a, p2, gamma) in &self.call {
                            if p == *q && a == letter {
                                let mut stack2 = stack.clone();
                                stack2.push(gamma);
                                next.insert((p2, stack2));
                            }
                        }
                    }
                }
                LetterKind::Return => {
                    for (q, stack) in &configs {
                        match stack.last() {
                            Some(&top) => {
                                for &(p, gamma, a, p2) in &self.ret {
                                    if p == *q && gamma == top && a == letter {
                                        let mut stack2 = stack.clone();
                                        stack2.pop();
                                        next.insert((p2, stack2));
                                    }
                                }
                            }
                            None => {
                                for &(p, a, p2) in &self.ret_empty {
                                    if p == *q && a == letter {
                                        next.insert((p2, Vec::new()));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            configs = next;
            if configs.is_empty() {
                return false;
            }
        }
        configs.iter().any(|(q, _)| self.finals.contains(q))
    }

    /// Total number of transitions (size measure used in benchmarks).
    pub fn num_transitions(&self) -> usize {
        self.internal.len() + self.call.len() + self.ret.len() + self.ret_empty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn simple_alphabet() -> Arc<Alphabet> {
        let mut a = Alphabet::new();
        a.call("<");
        a.ret(">");
        a.internal("i");
        a.into_arc()
    }

    /// A VPA accepting nested words whose every `<` is matched (no pending calls) and whose
    /// matched pairs carry the same stack symbol — i.e. well-matched words possibly with
    /// pending returns. Used in the tests below.
    fn well_matched_calls(alphabet: Arc<Alphabet>) -> Vpa {
        let lt = alphabet.lookup("<").unwrap();
        let gt = alphabet.lookup(">").unwrap();
        let int = alphabet.lookup("i").unwrap();
        let mut vpa = Vpa::new(alphabet, 1, 1);
        vpa.set_initial(0);
        vpa.set_final(0);
        vpa.add_internal(0, int, 0);
        vpa.add_call(0, lt, 0, 0);
        vpa.add_return(0, 0, gt, 0);
        vpa.add_return_empty(0, gt, 0);
        vpa
    }

    #[test]
    fn universal_accepts_everything() {
        let alphabet = simple_alphabet();
        let u = Vpa::universal(alphabet.clone());
        for names in [&["<", "i", ">"][..], &[">", ">"], &["<", "<"], &[]] {
            let w = NestedWord::from_names(alphabet.clone(), names);
            assert!(u.accepts(&w), "universal must accept {w:?}");
        }
        let e = Vpa::empty_language(alphabet.clone());
        let w = NestedWord::from_names(alphabet, &["i"]);
        assert!(!e.accepts(&w));
    }

    #[test]
    fn membership_respects_the_stack() {
        let alphabet = simple_alphabet();
        let lt = alphabet.lookup("<").unwrap();
        let gt = alphabet.lookup(">").unwrap();
        let int = alphabet.lookup("i").unwrap();

        // accept exactly words of the form  < i >  (one call, internal inside, matched return)
        let mut vpa = Vpa::new(alphabet.clone(), 4, 1);
        vpa.set_initial(0);
        vpa.add_call(0, lt, 1, 0);
        vpa.add_internal(1, int, 2);
        vpa.add_return(2, 0, gt, 3);
        vpa.set_final(3);

        assert!(vpa.accepts(&NestedWord::from_names(alphabet.clone(), &["<", "i", ">"])));
        assert!(!vpa.accepts(&NestedWord::from_names(alphabet.clone(), &["<", "i"])));
        assert!(!vpa.accepts(&NestedWord::from_names(alphabet.clone(), &["i", ">"])));
        assert!(!vpa.accepts(&NestedWord::from_names(alphabet, &["<", "i", ">", "i"])));
    }

    #[test]
    fn pending_return_transitions_are_distinct_from_pops() {
        let alphabet = simple_alphabet();
        let gt = alphabet.lookup(">").unwrap();
        // accept exactly the single-letter word ">" read on the empty stack
        let mut vpa = Vpa::new(alphabet.clone(), 2, 1);
        vpa.set_initial(0);
        vpa.add_return_empty(0, gt, 1);
        vpa.set_final(1);
        assert!(vpa.accepts(&NestedWord::from_names(alphabet.clone(), &[">"])));
        assert!(!vpa.accepts(&NestedWord::from_names(alphabet.clone(), &["<", ">"])));
        assert!(!vpa.accepts(&NestedWord::from_names(alphabet, &[">", ">"])));
    }

    #[test]
    fn well_matched_language() {
        let alphabet = simple_alphabet();
        let vpa = well_matched_calls(alphabet.clone());
        let accept = [
            &["<", ">"][..],
            &["<", "<", ">", ">"],
            &[">", "<", ">"],
            &["i"],
            &[],
        ];
        for names in accept {
            assert!(vpa.accepts(&NestedWord::from_names(alphabet.clone(), names)));
        }
        // a pending call is rejected: the final configuration is still accepting by state,
        // so to reject pending calls we need... in fact this automaton accepts pending calls
        // too (acceptance ignores the stack). Verify that it does — this documents the
        // acceptance-by-final-state convention.
        assert!(vpa.accepts(&NestedWord::from_names(alphabet, &["<"])));
    }

    #[test]
    fn add_all_letter_loops_is_universal_at_that_state() {
        let alphabet = simple_alphabet();
        let mut vpa = Vpa::new(alphabet.clone(), 1, 1);
        vpa.set_initial(0);
        vpa.set_final(0);
        vpa.add_all_letter_loops(0, 0);
        let w = NestedWord::from_names(alphabet, &["<", ">", ">", "i", "<"]);
        assert!(vpa.accepts(&w));
    }
}
