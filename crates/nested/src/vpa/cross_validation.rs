//! Cross-validation of the VPA operations against the direct MSO evaluator.
//!
//! Every test here checks an automaton-level operation (union, product/intersection,
//! determinization, complementation, emptiness) against the reference semantics in
//! [`crate::eval`]: the operand languages are given by small MSO_NW sentences (compiled
//! through [`crate::compile`]) or by small hand-built automata whose language has a known
//! MSO characterisation, and the operation's result is compared with the corresponding
//! boolean combination of direct evaluations on **every** nested word up to a length bound.

use crate::alphabet::{Alphabet, LetterId};
use crate::compile::compile;
use crate::eval::eval_sentence;
use crate::mso::{MsoNw, VarFactory};
use crate::vpa::determinize::{complement, determinize};
use crate::vpa::emptiness::{is_empty, shortest_witness};
use crate::vpa::ops::{intersect, trim, union};
use crate::vpa::Vpa;
use crate::word::NestedWord;
use std::sync::Arc;

fn base() -> Arc<Alphabet> {
    let mut a = Alphabet::new();
    a.call("<");
    a.ret(">");
    a.internal("x");
    a.internal("y");
    a.into_arc()
}

/// Every nested word over `a` of length at most `max_len` (all letter sequences are valid
/// nested words; the nesting relation is computed from the letter kinds).
fn all_words(a: &Arc<Alphabet>, max_len: usize) -> Vec<NestedWord> {
    let letters: Vec<LetterId> = a.letters().collect();
    let mut words = vec![Vec::new()];
    let mut out: Vec<Vec<LetterId>> = vec![Vec::new()];
    for _ in 0..max_len {
        words = words
            .iter()
            .flat_map(|w| {
                letters.iter().map(move |&l| {
                    let mut w2 = w.clone();
                    w2.push(l);
                    w2
                })
            })
            .collect();
        out.extend(words.iter().cloned());
    }
    out.into_iter()
        .map(|ls| NestedWord::new(a.clone(), ls))
        .collect()
}

/// `∃p. x(p)` — some position carries the internal letter `x`.
fn phi_has_x(a: &Arc<Alphabet>) -> MsoNw {
    let mut f = VarFactory::new();
    let p = f.pos();
    MsoNw::exists_pos(p, MsoNw::letter(a.lookup("x").unwrap(), p))
}

/// `∃c,r. c ⊿ r` — some matched call/return pair exists.
fn phi_some_matched(_a: &Arc<Alphabet>) -> MsoNw {
    let mut f = VarFactory::new();
    let c = f.pos();
    let r = f.pos();
    MsoNw::exists_pos(c, MsoNw::exists_pos(r, MsoNw::matched(c, r)))
}

/// `∃c,r,p. c ⊿ r ∧ c < p ∧ p < r ∧ x(p)` — an `x` strictly inside a matched pair.
fn phi_x_inside_matched(a: &Arc<Alphabet>) -> MsoNw {
    let mut f = VarFactory::new();
    let c = f.pos();
    let r = f.pos();
    let p = f.pos();
    MsoNw::exists_pos(
        c,
        MsoNw::exists_pos(
            r,
            MsoNw::exists_pos(
                p,
                MsoNw::matched(c, r)
                    .and(MsoNw::less(c, p))
                    .and(MsoNw::less(p, r))
                    .and(MsoNw::letter(a.lookup("x").unwrap(), p)),
            ),
        ),
    )
}

/// Hand-built nondeterministic automaton for [`phi_x_inside_matched`]: guess the matched
/// call, push a marked stack symbol for it, require an `x` before its matching return pops
/// the mark.
fn hand_built_x_inside_matched(a: Arc<Alphabet>) -> Vpa {
    let lt = a.lookup("<").unwrap();
    let gt = a.lookup(">").unwrap();
    let x = a.lookup("x").unwrap();
    let y = a.lookup("y").unwrap();
    // states: 0 = searching, 1 = inside the guessed call (x not yet seen),
    //         2 = inside, x seen, 3 = accept; stack: 0 = plain, 1 = the guessed call
    let mut vpa = Vpa::new(a, 4, 2);
    vpa.set_initial(0);
    vpa.set_final(3);
    vpa.add_all_letter_loops(0, 0);
    vpa.add_all_letter_loops(3, 0);
    vpa.add_call(0, lt, 1, 1);
    vpa.add_internal(1, x, 2);
    vpa.add_internal(1, y, 1);
    vpa.add_call(1, lt, 1, 0);
    vpa.add_return(1, 0, gt, 1);
    vpa.add_internal(2, x, 2);
    vpa.add_internal(2, y, 2);
    vpa.add_call(2, lt, 2, 0);
    vpa.add_return(2, 0, gt, 2);
    vpa.add_return(2, 1, gt, 3);
    vpa
}

#[test]
fn hand_built_automaton_matches_its_mso_characterisation() {
    let a = base();
    let vpa = hand_built_x_inside_matched(a.clone());
    let phi = phi_x_inside_matched(&a);
    for word in all_words(&a, 4) {
        assert_eq!(
            vpa.accepts(&word),
            eval_sentence(&word, &phi),
            "hand-built automaton disagrees with MSO evaluation on {word:?}"
        );
    }
}

#[test]
fn union_agrees_with_disjunction() {
    let a = base();
    let phi_x = phi_has_x(&a);
    let phi_m = phi_some_matched(&a);
    let u = union(&compile(&phi_x, &a).vpa, &compile(&phi_m, &a).vpa);
    for word in all_words(&a, 4) {
        assert_eq!(
            u.accepts(&word),
            eval_sentence(&word, &phi_x) || eval_sentence(&word, &phi_m),
            "union disagrees with ∨ on {word:?}"
        );
    }
}

#[test]
fn product_agrees_with_conjunction() {
    let a = base();
    let phi_x = phi_has_x(&a);
    let phi_m = phi_some_matched(&a);
    let product = intersect(&compile(&phi_x, &a).vpa, &compile(&phi_m, &a).vpa);
    for word in all_words(&a, 4) {
        assert_eq!(
            product.accepts(&word),
            eval_sentence(&word, &phi_x) && eval_sentence(&word, &phi_m),
            "product disagrees with ∧ on {word:?}"
        );
    }
}

#[test]
fn determinization_agrees_with_direct_evaluation() {
    let a = base();
    let nd = hand_built_x_inside_matched(a.clone());
    let det = determinize(&nd);
    let phi = phi_x_inside_matched(&a);
    for word in all_words(&a, 4) {
        assert_eq!(
            det.accepts(&word),
            eval_sentence(&word, &phi),
            "determinization disagrees with MSO evaluation on {word:?}"
        );
    }
}

#[test]
fn complementation_agrees_with_negation() {
    let a = base();
    let nd = hand_built_x_inside_matched(a.clone());
    let comp = complement(&nd);
    let phi = phi_x_inside_matched(&a);
    for word in all_words(&a, 4) {
        assert_eq!(
            comp.accepts(&word),
            !eval_sentence(&word, &phi),
            "complement disagrees with ¬ on {word:?}"
        );
    }
    // ... and on a compiled operand as well
    let phi_x = phi_has_x(&a);
    let comp_x = complement(&compile(&phi_x, &a).vpa);
    for word in all_words(&a, 3) {
        assert_eq!(comp_x.accepts(&word), !eval_sentence(&word, &phi_x));
    }
}

#[test]
fn trim_preserves_compiled_and_hand_built_languages() {
    let a = base();
    let nd = hand_built_x_inside_matched(a.clone());
    let compiled = compile(&phi_some_matched(&a), &a).vpa;
    for word in all_words(&a, 4) {
        assert_eq!(trim(&nd).accepts(&word), nd.accepts(&word));
        assert_eq!(trim(&compiled).accepts(&word), compiled.accepts(&word));
    }
}

#[test]
fn emptiness_agrees_with_the_evaluator() {
    let a = base();
    let nd = hand_built_x_inside_matched(a.clone());

    // L ∩ ¬L is empty — for the hand-built and for a compiled automaton
    assert!(is_empty(&intersect(&nd, &complement(&nd))));
    let cx = compile(&phi_has_x(&a), &a).vpa;
    assert!(is_empty(&intersect(&cx, &complement(&cx))));

    // a contradictory sentence compiles to an empty automaton
    let mut f = VarFactory::new();
    let p = f.pos();
    let x = a.lookup("x").unwrap();
    let contradiction = MsoNw::exists_pos(p, MsoNw::letter(x, p).and(MsoNw::letter(x, p).not()));
    assert!(is_empty(&compile(&contradiction, &a).vpa));

    // non-empty automata yield witnesses that the evaluator confirms
    let phi = phi_x_inside_matched(&a);
    let witness = shortest_witness(&nd).expect("language is non-empty");
    assert!(
        eval_sentence(&witness, &phi),
        "witness {witness:?} must satisfy the sentence"
    );
}
