//! Determinization and complementation of VPAs (the Alur–Madhusudan summary-pair
//! construction).
//!
//! A state of the deterministic automaton is a set `S ⊆ Q × Q` of pairs `(origin, current)`:
//! `origin` is the state the original automaton was in at the time of the last pending call
//! (or at the start of the word), `current` a state it can be in now. On a call the
//! deterministic automaton pushes `(S, a)` onto its own stack and restarts the pair set; on a
//! matching return it combines the popped context with the summary accumulated in between.
//!
//! The construction yields a *complete* deterministic VPA, so complementation is just
//! flipping the accepting states.
//!
//! ## Implementation notes
//!
//! The naive construction pairs every discovered set-state with every stack symbol when
//! computing matched-return transitions, which is quadratic in the number of discovered
//! states *before* any of the per-transition work — on the automata produced by the MSO
//! compilation pipeline (`crate::compile`) that blows up far past what the reachable part
//! needs. This implementation therefore:
//!
//! * interns pair sets as sorted packed `u64` vectors in a hash map (cheap equality),
//! * pre-indexes the input automaton's transitions by `(state, letter)` so successor sets
//!   are computed by lookup instead of scanning the whole transition relation,
//! * tracks which *configurations* `(set-state, top-of-stack)` are actually reachable —
//!   via a context-propagation fixpoint — and only expands matched returns for those.
//!
//! Internal, call and pending-return transitions are still emitted for **every** discovered
//! state (they are cheap, and keep the result total on those letters); only the matched
//! return relation is restricted to viable `(state, stack symbol)` pairs. Combinations that
//! are skipped can never occur in a run from the initial state, so the language — and the
//! language of the complement — is unchanged.

use crate::alphabet::{LetterId, LetterKind};
use crate::vpa::Vpa;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Contexts a set-state can be reached in: `ROOT` means "with an empty stack";
/// `gid + 1` means "with stack symbol `gid` on top".
const ROOT: usize = 0;

struct Determinizer<'a> {
    vpa: &'a Vpa,
    n: u64,
    internal_letters: Vec<LetterId>,
    call_letters: Vec<LetterId>,
    return_letters: Vec<LetterId>,
    // (state, letter) → successors / (target, pushed γ) of the *input* automaton
    internal_idx: HashMap<(usize, LetterId), Vec<usize>>,
    call_idx: HashMap<(usize, LetterId), Vec<(usize, usize)>>,
    ret_idx: HashMap<(usize, usize, LetterId), Vec<usize>>,
    ret_empty_idx: HashMap<(usize, LetterId), Vec<usize>>,
    // deterministic automaton under construction
    states: Vec<Vec<u64>>,
    state_ids: HashMap<Vec<u64>, usize>,
    stack_syms: Vec<(usize, LetterId)>,
    stack_ids: HashMap<(usize, LetterId), usize>,
    d_internal: Vec<(usize, LetterId, usize)>,
    d_call: Vec<(usize, LetterId, usize, usize)>,
    d_ret: Vec<(usize, usize, LetterId, usize)>,
    d_ret_empty: Vec<(usize, LetterId, usize)>,
    // reachable contexts per state, and members per level (= context gid + 1)
    state_ctxs: Vec<BTreeSet<usize>>,
    level_members: Vec<BTreeSet<usize>>,
}

impl<'a> Determinizer<'a> {
    fn new(vpa: &'a Vpa) -> Determinizer<'a> {
        let mut internal_idx: HashMap<(usize, LetterId), Vec<usize>> = HashMap::new();
        for &(q, a, q2) in &vpa.internal {
            internal_idx.entry((q, a)).or_default().push(q2);
        }
        let mut call_idx: HashMap<(usize, LetterId), Vec<(usize, usize)>> = HashMap::new();
        for &(q, a, q2, gamma) in &vpa.call {
            call_idx.entry((q, a)).or_default().push((q2, gamma));
        }
        let mut ret_idx: HashMap<(usize, usize, LetterId), Vec<usize>> = HashMap::new();
        for &(q, gamma, a, q2) in &vpa.ret {
            ret_idx.entry((q, gamma, a)).or_default().push(q2);
        }
        let mut ret_empty_idx: HashMap<(usize, LetterId), Vec<usize>> = HashMap::new();
        for &(q, a, q2) in &vpa.ret_empty {
            ret_empty_idx.entry((q, a)).or_default().push(q2);
        }
        let of_kind = |kind: LetterKind| -> Vec<LetterId> {
            vpa.alphabet
                .letters()
                .filter(|&l| vpa.alphabet.kind(l) == kind)
                .collect()
        };
        Determinizer {
            n: vpa.num_states.max(1) as u64,
            internal_letters: of_kind(LetterKind::Internal),
            call_letters: of_kind(LetterKind::Call),
            return_letters: of_kind(LetterKind::Return),
            internal_idx,
            call_idx,
            ret_idx,
            ret_empty_idx,
            states: Vec::new(),
            state_ids: HashMap::new(),
            stack_syms: Vec::new(),
            stack_ids: HashMap::new(),
            d_internal: Vec::new(),
            d_call: Vec::new(),
            d_ret: Vec::new(),
            d_ret_empty: Vec::new(),
            state_ctxs: Vec::new(),
            level_members: Vec::new(),
            vpa,
        }
    }

    fn pack(&self, origin: usize, current: usize) -> u64 {
        debug_assert!(
            (origin as u64) < self.n && (current as u64) < self.n,
            "transition references state out of range (num_states = {})",
            self.n
        );
        origin as u64 * self.n + current as u64
    }

    fn unpack(&self, packed: u64) -> (usize, usize) {
        ((packed / self.n) as usize, (packed % self.n) as usize)
    }

    fn intern_state(&mut self, set: BTreeSet<u64>) -> usize {
        let key: Vec<u64> = set.into_iter().collect();
        if let Some(&id) = self.state_ids.get(&key) {
            return id;
        }
        let id = self.states.len();
        self.states.push(key.clone());
        self.state_ids.insert(key, id);
        self.state_ctxs.push(BTreeSet::new());
        id
    }

    fn intern_stack_sym(&mut self, sym: (usize, LetterId)) -> usize {
        if let Some(&gid) = self.stack_ids.get(&sym) {
            return gid;
        }
        let gid = self.stack_syms.len();
        self.stack_syms.push(sym);
        self.stack_ids.insert(sym, gid);
        self.level_members.push(BTreeSet::new());
        gid
    }

    fn add_ctx(&mut self, sid: usize, ctx: usize) -> bool {
        if !self.state_ctxs[sid].insert(ctx) {
            return false;
        }
        if ctx > ROOT {
            self.level_members[ctx - 1].insert(sid);
        }
        true
    }

    /// Emit internal, call and pending-return transitions for one discovered state.
    fn process_state(&mut self, sid: usize) {
        let s = self.states[sid].clone();

        for &a in &self.internal_letters.clone() {
            let mut next: BTreeSet<u64> = BTreeSet::new();
            for &packed in &s {
                let (origin, current) = self.unpack(packed);
                if let Some(targets) = self.internal_idx.get(&(current, a)) {
                    for &t in targets {
                        next.insert(self.pack(origin, t));
                    }
                }
            }
            let tid = self.intern_state(next);
            self.d_internal.push((sid, a, tid));
        }

        for &a in &self.call_letters.clone() {
            let mut next: BTreeSet<u64> = BTreeSet::new();
            for &packed in &s {
                let (_, current) = self.unpack(packed);
                if let Some(targets) = self.call_idx.get(&(current, a)) {
                    for &(t, _gamma) in targets {
                        next.insert(self.pack(t, t));
                    }
                }
            }
            let tid = self.intern_state(next);
            let gid = self.intern_stack_sym((sid, a));
            self.d_call.push((sid, a, tid, gid));
        }

        for &b in &self.return_letters.clone() {
            let mut next: BTreeSet<u64> = BTreeSet::new();
            for &packed in &s {
                let (origin, current) = self.unpack(packed);
                if let Some(targets) = self.ret_empty_idx.get(&(current, b)) {
                    for &t in targets {
                        next.insert(self.pack(origin, t));
                    }
                }
            }
            let tid = self.intern_state(next);
            self.d_ret_empty.push((sid, b, tid));
        }
    }

    /// Emit matched-return transitions for one viable `(state, stack symbol)` pair.
    fn process_return(&mut self, sid: usize, gid: usize) {
        let (prev_sid, call_letter) = self.stack_syms[gid];
        let s_prev = self.states[prev_sid].clone();
        let s_current = self.states[sid].clone();

        // group the current-level summaries by their origin (= the call's target state)
        let mut current_by_origin: HashMap<usize, Vec<usize>> = HashMap::new();
        for &packed in &s_current {
            let (q2, q3) = self.unpack(packed);
            current_by_origin.entry(q2).or_default().push(q3);
        }

        for &b in &self.return_letters.clone() {
            let mut next: BTreeSet<u64> = BTreeSet::new();
            for &packed in &s_prev {
                let (origin, q1) = self.unpack(packed);
                let Some(calls) = self.call_idx.get(&(q1, call_letter)) else {
                    continue;
                };
                for &(q2, gamma) in calls {
                    let Some(currents) = current_by_origin.get(&q2) else {
                        continue;
                    };
                    for &q3 in currents {
                        if let Some(targets) = self.ret_idx.get(&(q3, gamma, b)) {
                            for &q4 in targets {
                                next.insert(self.pack(origin, q4));
                            }
                        }
                    }
                }
            }
            let tid = self.intern_state(next);
            self.d_ret.push((sid, gid, b, tid));
        }
    }

    /// Propagate reachable contexts along the transitions discovered so far, to fixpoint.
    ///
    /// Soundly over-approximates the reachable `(state, top-of-stack)` configurations:
    /// internal moves keep the context, calls open the pushed symbol's level, pending
    /// returns exist only at the root, and a matched return restores any context its
    /// pushing state was reachable in.
    fn propagate_contexts(&mut self) {
        loop {
            let mut changed = false;
            for i in 0..self.d_internal.len() {
                let (s, _, t) = self.d_internal[i];
                for ctx in self.state_ctxs[s].clone() {
                    changed |= self.add_ctx(t, ctx);
                }
            }
            for i in 0..self.d_ret_empty.len() {
                let (s, _, t) = self.d_ret_empty[i];
                if self.state_ctxs[s].contains(&ROOT) {
                    changed |= self.add_ctx(t, ROOT);
                }
            }
            for i in 0..self.d_call.len() {
                let (s, _, t, g) = self.d_call[i];
                if !self.state_ctxs[s].is_empty() {
                    changed |= self.add_ctx(t, g + 1);
                }
            }
            for i in 0..self.d_ret.len() {
                let (s, g, _, t) = self.d_ret[i];
                if self.state_ctxs[s].contains(&(g + 1)) {
                    let (push_source, _) = self.stack_syms[g];
                    for ctx in self.state_ctxs[push_source].clone() {
                        changed |= self.add_ctx(t, ctx);
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn run(mut self) -> Vpa {
        let initial_set: BTreeSet<u64> =
            self.vpa.initial.iter().map(|&q| self.pack(q, q)).collect();
        let initial_id = self.intern_state(initial_set);
        self.add_ctx(initial_id, ROOT);

        let mut processed_states = 0;
        let mut processed_ret: HashSet<(usize, usize)> = HashSet::new();
        loop {
            let mut changed = false;

            while processed_states < self.states.len() {
                let sid = processed_states;
                processed_states += 1;
                changed = true;
                self.process_state(sid);
            }

            self.propagate_contexts();

            for gid in 0..self.stack_syms.len() {
                for sid in self.level_members[gid].clone() {
                    if processed_ret.insert((sid, gid)) {
                        changed = true;
                        self.process_return(sid, gid);
                    }
                }
            }

            if !changed {
                break;
            }
        }

        let mut out = Vpa::new(
            self.vpa.alphabet.clone(),
            self.states.len(),
            self.stack_syms.len().max(1),
        );
        out.initial.insert(initial_id);
        for (sid, s) in self.states.iter().enumerate() {
            if s.iter()
                .any(|&packed| self.vpa.finals.contains(&((packed % self.n) as usize)))
            {
                out.finals.insert(sid);
            }
        }
        out.internal = self.d_internal.into_iter().collect();
        out.call = self.d_call.into_iter().collect();
        out.ret = self.d_ret.into_iter().collect();
        out.ret_empty = self.d_ret_empty.into_iter().collect();
        out
    }
}

/// Determinize a VPA. The result is deterministic (single initial state, at most one
/// transition per letter/stack-symbol) and accepts the same language; on internal, call and
/// pending-return letters it is also complete (exactly one transition per discovered state),
/// and matched-return transitions cover every reachable configuration.
pub fn determinize(vpa: &Vpa) -> Vpa {
    Determinizer::new(vpa).run()
}

/// Complement a VPA with respect to the set of *all* finite nested words over its alphabet
/// (determinize, then flip the accepting states).
pub fn complement(vpa: &Vpa) -> Vpa {
    let mut det = determinize(vpa);
    det.finals = (0..det.num_states)
        .filter(|q| !det.finals.contains(q))
        .collect();
    det
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::vpa::ops::intersect;
    use crate::word::NestedWord;
    use std::sync::Arc;

    fn alphabet() -> Arc<Alphabet> {
        let mut a = Alphabet::new();
        a.call("<");
        a.ret(">");
        a.internal("x");
        a.internal("y");
        a.into_arc()
    }

    /// Nondeterministic automaton: accepts words where some internal `x` occurs *inside* a
    /// matched call/return pair (i.e. at nesting depth ≥ 1 below a matched call).
    fn x_inside_matched_call(a: Arc<Alphabet>) -> Vpa {
        let lt = a.lookup("<").unwrap();
        let gt = a.lookup(">").unwrap();
        let x = a.lookup("x").unwrap();
        // states: 0 = searching, 1 = inside a guessed matched call (before x),
        //         2 = inside, x seen (must still see the matching return), 3 = done
        // stack: 0 = other, 1 = the guessed call
        let mut vpa = Vpa::new(a, 4, 2);
        vpa.set_initial(0);
        vpa.set_final(3);
        vpa.add_all_letter_loops(0, 0);
        vpa.add_all_letter_loops(3, 0);
        // guess the interesting call
        vpa.add_call(0, lt, 1, 1);
        // inside: anything, tracking only the guessed symbol's matching return
        vpa.add_internal(1, x, 2);
        let y = vpa.alphabet.lookup("y").unwrap();
        vpa.add_internal(1, y, 1);
        vpa.add_call(1, lt, 1, 0);
        vpa.add_return(1, 0, gt, 1);
        vpa.add_internal(2, x, 2);
        vpa.add_internal(2, y, 2);
        vpa.add_call(2, lt, 2, 0);
        vpa.add_return(2, 0, gt, 2);
        // the matching return of the guessed call
        vpa.add_return(2, 1, gt, 3);
        vpa
    }

    fn words(a: &Arc<Alphabet>) -> Vec<(NestedWord, bool)> {
        // (word, should x-inside-matched-call hold?)
        vec![
            (NestedWord::from_names(a.clone(), &["<", "x", ">"]), true),
            (
                NestedWord::from_names(a.clone(), &["<", "y", ">", "x"]),
                false,
            ),
            (NestedWord::from_names(a.clone(), &["x"]), false),
            (
                NestedWord::from_names(a.clone(), &["<", "<", "x", ">", ">"]),
                true,
            ),
            (NestedWord::from_names(a.clone(), &["<", "x"]), false), // pending call: not matched
            (NestedWord::from_names(a.clone(), &[">", "x", "<"]), false),
            (
                NestedWord::from_names(a.clone(), &["y", "<", "y", "<", "x", ">", ">"]),
                true,
            ),
            (NestedWord::from_names(a.clone(), &[]), false),
        ]
    }

    #[test]
    fn determinization_preserves_the_language() {
        let a = alphabet();
        let nd = x_inside_matched_call(a.clone());
        let det = determinize(&nd);
        for (word, expected) in words(&a) {
            assert_eq!(nd.accepts(&word), expected, "nondeterministic on {word:?}");
            assert_eq!(det.accepts(&word), expected, "deterministic on {word:?}");
        }
    }

    #[test]
    fn determinized_automaton_is_deterministic_and_complete() {
        let a = alphabet();
        let det = determinize(&x_inside_matched_call(a.clone()));
        assert_eq!(det.initial.len(), 1);
        // exactly one internal transition per (state, internal letter)
        for q in 0..det.num_states {
            for letter in a.letters() {
                match a.kind(letter) {
                    LetterKind::Internal => {
                        assert_eq!(
                            det.internal
                                .iter()
                                .filter(|&&(p, l, _)| p == q && l == letter)
                                .count(),
                            1
                        );
                    }
                    LetterKind::Call => {
                        assert_eq!(
                            det.call
                                .iter()
                                .filter(|&&(p, l, _, _)| p == q && l == letter)
                                .count(),
                            1
                        );
                    }
                    LetterKind::Return => {
                        assert_eq!(
                            det.ret_empty
                                .iter()
                                .filter(|&&(p, l, _)| p == q && l == letter)
                                .count(),
                            1
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn matched_returns_cover_reachable_configurations() {
        let a = alphabet();
        let det = determinize(&x_inside_matched_call(a.clone()));
        // at most one matched-return transition per (state, stack symbol, letter) —
        // determinism of the pruned relation
        let mut seen = std::collections::BTreeSet::new();
        for &(q, g, l, _) in &det.ret {
            assert!(
                seen.insert((q, g, l)),
                "duplicate return transition for {:?}",
                (q, g, l)
            );
        }
        // ... and coverage: walking the deterministic automaton over every word up to
        // length 5, each step must find exactly one applicable transition — in particular
        // no matched return over a reachable configuration may have been pruned away.
        let letters: Vec<_> = a.letters().collect();
        let mut words: Vec<Vec<crate::alphabet::LetterId>> = vec![Vec::new()];
        for _ in 0..5 {
            words = words
                .iter()
                .flat_map(|w| {
                    letters.iter().map(move |&l| {
                        let mut w2 = w.clone();
                        w2.push(l);
                        w2
                    })
                })
                .collect();
            for word in &words {
                let mut state = *det.initial.iter().next().unwrap();
                let mut stack: Vec<usize> = Vec::new();
                for &l in word {
                    match det.alphabet.kind(l) {
                        LetterKind::Internal => {
                            let mut next = det
                                .internal
                                .iter()
                                .filter(|&&(p, a2, _)| p == state && a2 == l);
                            state = next.next().expect("internal transition must exist").2;
                        }
                        LetterKind::Call => {
                            let mut next = det
                                .call
                                .iter()
                                .filter(|&&(p, a2, _, _)| p == state && a2 == l);
                            let &(_, _, t, g) = next.next().expect("call transition must exist");
                            stack.push(g);
                            state = t;
                        }
                        LetterKind::Return => match stack.pop() {
                            Some(g) => {
                                let mut next = det
                                    .ret
                                    .iter()
                                    .filter(|&&(p, g2, a2, _)| p == state && g2 == g && a2 == l);
                                state = next
                                    .next()
                                    .unwrap_or_else(|| {
                                        panic!("matched return pruned for reachable configuration ({state}, {g})")
                                    })
                                    .3;
                            }
                            None => {
                                let mut next = det
                                    .ret_empty
                                    .iter()
                                    .filter(|&&(p, a2, _)| p == state && a2 == l);
                                state =
                                    next.next().expect("pending-return transition must exist").2;
                            }
                        },
                    }
                }
            }
        }
    }

    #[test]
    fn complement_is_exact() {
        let a = alphabet();
        let nd = x_inside_matched_call(a.clone());
        let comp = complement(&nd);
        for (word, expected) in words(&a) {
            assert_eq!(comp.accepts(&word), !expected, "complement on {word:?}");
        }
        // the intersection of a language and its complement is empty on all sample words
        let inter = intersect(&nd, &comp);
        for (word, _) in words(&a) {
            assert!(!inter.accepts(&word));
        }
    }

    #[test]
    fn double_complement_preserves_the_language() {
        let a = alphabet();
        let nd = x_inside_matched_call(a.clone());
        let cc = complement(&complement(&nd));
        for (word, expected) in words(&a) {
            assert_eq!(cc.accepts(&word), expected, "double complement on {word:?}");
        }
    }
}
