//! Determinization and complementation of VPAs (the Alur–Madhusudan summary-pair
//! construction).
//!
//! A state of the deterministic automaton is a set `S ⊆ Q × Q` of pairs `(origin, current)`:
//! `origin` is the state the original automaton was in at the time of the last pending call
//! (or at the start of the word), `current` a state it can be in now. On a call the
//! deterministic automaton pushes `(S, a)` onto its own stack and restarts the pair set; on a
//! matching return it combines the popped context with the summary accumulated in between.
//!
//! The construction yields a *complete* deterministic VPA, so complementation is just
//! flipping the accepting states.

use crate::alphabet::LetterKind;
use crate::vpa::Vpa;
use std::collections::{BTreeMap, BTreeSet};

type PairSet = BTreeSet<(usize, usize)>;

/// Determinize a VPA. The result is deterministic (single initial state, at most one
/// transition per letter/stack-symbol) and complete (exactly one transition), and accepts the
/// same language.
pub fn determinize(vpa: &Vpa) -> Vpa {
    let mut states: Vec<PairSet> = Vec::new();
    let mut state_ids: BTreeMap<PairSet, usize> = BTreeMap::new();
    let mut stack_syms: Vec<(usize, crate::alphabet::LetterId)> = Vec::new();
    let mut stack_ids: BTreeMap<(usize, crate::alphabet::LetterId), usize> = BTreeMap::new();

    let intern_state = |s: PairSet, states: &mut Vec<PairSet>, ids: &mut BTreeMap<PairSet, usize>| -> usize {
        if let Some(&id) = ids.get(&s) {
            return id;
        }
        let id = states.len();
        states.push(s.clone());
        ids.insert(s, id);
        id
    };

    let initial_set: PairSet = vpa.initial.iter().map(|&q| (q, q)).collect();
    let initial_id = intern_state(initial_set, &mut states, &mut state_ids);

    // transition tables of the deterministic automaton, filled as we discover states
    let mut d_internal: BTreeSet<(usize, crate::alphabet::LetterId, usize)> = BTreeSet::new();
    let mut d_call: BTreeSet<(usize, crate::alphabet::LetterId, usize, usize)> = BTreeSet::new();
    let mut d_ret: BTreeSet<(usize, usize, crate::alphabet::LetterId, usize)> = BTreeSet::new();
    let mut d_ret_empty: BTreeSet<(usize, crate::alphabet::LetterId, usize)> = BTreeSet::new();

    // fixpoint: process (state, letter) and (state, stack symbol, return letter) combinations
    // until no new state or stack symbol appears
    let mut processed_states = 0;
    let mut processed_ret: BTreeSet<(usize, usize)> = BTreeSet::new(); // (state, stack sym)
    loop {
        let mut changed = false;

        // process newly discovered states
        while processed_states < states.len() {
            let sid = processed_states;
            processed_states += 1;
            changed = true;
            let s = states[sid].clone();

            for letter in vpa.alphabet.letters() {
                match vpa.alphabet.kind(letter) {
                    LetterKind::Internal => {
                        let mut next: PairSet = BTreeSet::new();
                        for &(origin, current) in &s {
                            for &(p, a, p2) in &vpa.internal {
                                if p == current && a == letter {
                                    next.insert((origin, p2));
                                }
                            }
                        }
                        let tid = intern_state(next, &mut states, &mut state_ids);
                        d_internal.insert((sid, letter, tid));
                    }
                    LetterKind::Call => {
                        let mut next: PairSet = BTreeSet::new();
                        for &(_, current) in &s {
                            for &(p, a, p2, _gamma) in &vpa.call {
                                if p == current && a == letter {
                                    next.insert((p2, p2));
                                }
                            }
                        }
                        let tid = intern_state(next, &mut states, &mut state_ids);
                        // the deterministic automaton pushes (source state, call letter)
                        let sym = (sid, letter);
                        let gid = *stack_ids.entry(sym).or_insert_with(|| {
                            stack_syms.push(sym);
                            stack_syms.len() - 1
                        });
                        d_call.insert((sid, letter, tid, gid));
                    }
                    LetterKind::Return => {
                        // pending return (empty stack)
                        let mut next: PairSet = BTreeSet::new();
                        for &(origin, current) in &s {
                            for &(p, a, p2) in &vpa.ret_empty {
                                if p == current && a == letter {
                                    next.insert((origin, p2));
                                }
                            }
                        }
                        let tid = intern_state(next, &mut states, &mut state_ids);
                        d_ret_empty.insert((sid, letter, tid));
                    }
                }
            }
        }

        // process (state, stack symbol) pairs for matched returns
        let num_states_now = states.len();
        let num_syms_now = stack_syms.len();
        for sid in 0..num_states_now {
            for gid in 0..num_syms_now {
                if !processed_ret.insert((sid, gid)) {
                    continue;
                }
                changed = true;
                let s_current = states[sid].clone();
                let (prev_sid, call_letter) = stack_syms[gid];
                let s_prev = states[prev_sid].clone();
                for letter in vpa.alphabet.letters_of_kind(LetterKind::Return).collect::<Vec<_>>() {
                    let mut next: PairSet = BTreeSet::new();
                    for &(origin, q1) in &s_prev {
                        for &(p, a, q2, gamma) in &vpa.call {
                            if p != q1 || a != call_letter {
                                continue;
                            }
                            for &(q2b, q3) in &s_current {
                                if q2b != q2 {
                                    continue;
                                }
                                for &(p3, g, b, q4) in &vpa.ret {
                                    if p3 == q3 && g == gamma && b == letter {
                                        next.insert((origin, q4));
                                    }
                                }
                            }
                        }
                    }
                    let tid = intern_state(next, &mut states, &mut state_ids);
                    d_ret.insert((sid, gid, letter, tid));
                }
            }
        }

        if !changed {
            break;
        }
    }

    let mut out = Vpa::new(vpa.alphabet.clone(), states.len(), stack_syms.len().max(1));
    out.initial.insert(initial_id);
    for (sid, s) in states.iter().enumerate() {
        if s.iter().any(|&(_, current)| vpa.finals.contains(&current)) {
            out.finals.insert(sid);
        }
    }
    out.internal = d_internal;
    out.call = d_call;
    out.ret = d_ret;
    out.ret_empty = d_ret_empty;
    out
}

/// Complement a VPA with respect to the set of *all* finite nested words over its alphabet
/// (determinize, then flip the accepting states).
pub fn complement(vpa: &Vpa) -> Vpa {
    let mut det = determinize(vpa);
    det.finals = (0..det.num_states).filter(|q| !det.finals.contains(q)).collect();
    det
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::vpa::ops::intersect;
    use crate::word::NestedWord;
    use std::sync::Arc;

    fn alphabet() -> Arc<Alphabet> {
        let mut a = Alphabet::new();
        a.call("<");
        a.ret(">");
        a.internal("x");
        a.internal("y");
        a.into_arc()
    }

    /// Nondeterministic automaton: accepts words where some internal `x` occurs *inside* a
    /// matched call/return pair (i.e. at nesting depth ≥ 1 below a matched call).
    fn x_inside_matched_call(a: Arc<Alphabet>) -> Vpa {
        let lt = a.lookup("<").unwrap();
        let gt = a.lookup(">").unwrap();
        let x = a.lookup("x").unwrap();
        // states: 0 = searching, 1 = inside a guessed matched call (before x),
        //         2 = inside, x seen (must still see the matching return), 3 = done
        // stack: 0 = other, 1 = the guessed call
        let mut vpa = Vpa::new(a, 4, 2);
        vpa.set_initial(0);
        vpa.set_final(3);
        vpa.add_all_letter_loops(0, 0);
        vpa.add_all_letter_loops(3, 0);
        // guess the interesting call
        vpa.add_call(0, lt, 1, 1);
        // inside: anything, tracking only the guessed symbol's matching return
        vpa.add_internal(1, x, 2);
        let y = vpa.alphabet.lookup("y").unwrap();
        vpa.add_internal(1, y, 1);
        vpa.add_call(1, lt, 1, 0);
        vpa.add_return(1, 0, gt, 1);
        vpa.add_internal(2, x, 2);
        vpa.add_internal(2, y, 2);
        vpa.add_call(2, lt, 2, 0);
        vpa.add_return(2, 0, gt, 2);
        // the matching return of the guessed call
        vpa.add_return(2, 1, gt, 3);
        vpa
    }

    fn words(a: &Arc<Alphabet>) -> Vec<(NestedWord, bool)> {
        // (word, should x-inside-matched-call hold?)
        vec![
            (NestedWord::from_names(a.clone(), &["<", "x", ">"]), true),
            (NestedWord::from_names(a.clone(), &["<", "y", ">", "x"]), false),
            (NestedWord::from_names(a.clone(), &["x"]), false),
            (NestedWord::from_names(a.clone(), &["<", "<", "x", ">", ">"]), true),
            (NestedWord::from_names(a.clone(), &["<", "x"]), false), // pending call: not matched
            (NestedWord::from_names(a.clone(), &[">", "x", "<"]), false),
            (NestedWord::from_names(a.clone(), &["y", "<", "y", "<", "x", ">", ">"]), true),
            (NestedWord::from_names(a.clone(), &[]), false),
        ]
    }

    #[test]
    fn determinization_preserves_the_language() {
        let a = alphabet();
        let nd = x_inside_matched_call(a.clone());
        let det = determinize(&nd);
        for (word, expected) in words(&a) {
            assert_eq!(nd.accepts(&word), expected, "nondeterministic on {word:?}");
            assert_eq!(det.accepts(&word), expected, "deterministic on {word:?}");
        }
    }

    #[test]
    fn determinized_automaton_is_deterministic_and_complete() {
        let a = alphabet();
        let det = determinize(&x_inside_matched_call(a.clone()));
        assert_eq!(det.initial.len(), 1);
        // exactly one internal transition per (state, internal letter)
        for q in 0..det.num_states {
            for letter in a.letters() {
                match a.kind(letter) {
                    LetterKind::Internal => {
                        assert_eq!(det.internal.iter().filter(|&&(p, l, _)| p == q && l == letter).count(), 1);
                    }
                    LetterKind::Call => {
                        assert_eq!(det.call.iter().filter(|&&(p, l, _, _)| p == q && l == letter).count(), 1);
                    }
                    LetterKind::Return => {
                        assert_eq!(det.ret_empty.iter().filter(|&&(p, l, _)| p == q && l == letter).count(), 1);
                    }
                }
            }
        }
    }

    #[test]
    fn complement_is_exact() {
        let a = alphabet();
        let nd = x_inside_matched_call(a.clone());
        let comp = complement(&nd);
        for (word, expected) in words(&a) {
            assert_eq!(comp.accepts(&word), !expected, "complement on {word:?}");
        }
        // the intersection of a language and its complement is empty on all sample words
        let inter = intersect(&nd, &comp);
        for (word, _) in words(&a) {
            assert!(!inter.accepts(&word));
        }
    }

    #[test]
    fn double_complement_preserves_the_language() {
        let a = alphabet();
        let nd = x_inside_matched_call(a.clone());
        let cc = complement(&complement(&nd));
        for (word, expected) in words(&a) {
            assert_eq!(cc.accepts(&word), expected, "double complement on {word:?}");
        }
    }
}
