//! Language operations on VPAs: union, intersection (product), relabelling.

use crate::alphabet::{Alphabet, LetterId};
use crate::vpa::Vpa;
use std::sync::Arc;

/// Union of two VPAs over the same alphabet (disjoint union of the automata).
pub fn union(a: &Vpa, b: &Vpa) -> Vpa {
    assert_eq!(
        a.alphabet.as_ref(),
        b.alphabet.as_ref(),
        "alphabet mismatch in union"
    );
    let offset_q = a.num_states;
    let offset_g = a.num_stack;
    let mut out = Vpa::new(
        a.alphabet.clone(),
        a.num_states + b.num_states,
        a.num_stack + b.num_stack,
    );

    out.initial.extend(a.initial.iter().copied());
    out.finals.extend(a.finals.iter().copied());
    out.internal.extend(a.internal.iter().copied());
    out.call.extend(a.call.iter().copied());
    out.ret.extend(a.ret.iter().copied());
    out.ret_empty.extend(a.ret_empty.iter().copied());

    out.initial.extend(b.initial.iter().map(|&q| q + offset_q));
    out.finals.extend(b.finals.iter().map(|&q| q + offset_q));
    out.internal.extend(
        b.internal
            .iter()
            .map(|&(q, l, q2)| (q + offset_q, l, q2 + offset_q)),
    );
    out.call.extend(
        b.call
            .iter()
            .map(|&(q, l, q2, g)| (q + offset_q, l, q2 + offset_q, g + offset_g)),
    );
    out.ret.extend(
        b.ret
            .iter()
            .map(|&(q, g, l, q2)| (q + offset_q, g + offset_g, l, q2 + offset_q)),
    );
    out.ret_empty.extend(
        b.ret_empty
            .iter()
            .map(|&(q, l, q2)| (q + offset_q, l, q2 + offset_q)),
    );
    out
}

/// Intersection of two VPAs over the same alphabet (synchronised product; stack symbols are
/// pairs). Correctness relies on visibility: both automata always have equal stack heights on
/// the same input, so pops and pending-return reads are synchronised.
pub fn intersect(a: &Vpa, b: &Vpa) -> Vpa {
    assert_eq!(
        a.alphabet.as_ref(),
        b.alphabet.as_ref(),
        "alphabet mismatch in intersection"
    );
    let pair_q = |qa: usize, qb: usize| qa * b.num_states + qb;
    let pair_g = |ga: usize, gb: usize| ga * b.num_stack + gb;
    let mut out = Vpa::new(
        a.alphabet.clone(),
        a.num_states * b.num_states,
        (a.num_stack * b.num_stack).max(1),
    );

    for &qa in &a.initial {
        for &qb in &b.initial {
            out.initial.insert(pair_q(qa, qb));
        }
    }
    for &qa in &a.finals {
        for &qb in &b.finals {
            out.finals.insert(pair_q(qa, qb));
        }
    }
    for &(qa, la, qa2) in &a.internal {
        for &(qb, lb, qb2) in &b.internal {
            if la == lb {
                out.internal.insert((pair_q(qa, qb), la, pair_q(qa2, qb2)));
            }
        }
    }
    for &(qa, la, qa2, ga) in &a.call {
        for &(qb, lb, qb2, gb) in &b.call {
            if la == lb {
                out.call
                    .insert((pair_q(qa, qb), la, pair_q(qa2, qb2), pair_g(ga, gb)));
            }
        }
    }
    for &(qa, ga, la, qa2) in &a.ret {
        for &(qb, gb, lb, qb2) in &b.ret {
            if la == lb {
                out.ret
                    .insert((pair_q(qa, qb), pair_g(ga, gb), la, pair_q(qa2, qb2)));
            }
        }
    }
    for &(qa, la, qa2) in &a.ret_empty {
        for &(qb, lb, qb2) in &b.ret_empty {
            if la == lb {
                out.ret_empty.insert((pair_q(qa, qb), la, pair_q(qa2, qb2)));
            }
        }
    }
    out
}

/// Relabel an automaton *forwards* through `map : old letter → new letter` (used for
/// projection, e.g. erasing a variable track in the MSO compilation: the image automaton is
/// generally nondeterministic).
///
/// `map` must preserve letter kinds.
pub fn relabel_forward(
    vpa: &Vpa,
    new_alphabet: Arc<Alphabet>,
    map: impl Fn(LetterId) -> LetterId,
) -> Vpa {
    let mut out = Vpa::new(new_alphabet.clone(), vpa.num_states, vpa.num_stack);
    out.initial = vpa.initial.clone();
    out.finals = vpa.finals.clone();
    for &(q, l, q2) in &vpa.internal {
        out.internal.insert((q, map(l), q2));
    }
    for &(q, l, q2, g) in &vpa.call {
        out.call.insert((q, map(l), q2, g));
    }
    for &(q, g, l, q2) in &vpa.ret {
        out.ret.insert((q, g, map(l), q2));
    }
    for &(q, l, q2) in &vpa.ret_empty {
        out.ret_empty.insert((q, map(l), q2));
    }
    debug_assert!(out
        .internal
        .iter()
        .all(|&(_, l, _)| new_alphabet.kind(l) == crate::alphabet::LetterKind::Internal));
    out
}

/// Relabel an automaton *backwards* through `map : new letter → old letter` (cylindrification:
/// the automaton over the richer alphabet behaves on each new letter as the original did on
/// its image).
///
/// `map` must preserve letter kinds.
pub fn relabel_inverse(
    vpa: &Vpa,
    new_alphabet: Arc<Alphabet>,
    map: impl Fn(LetterId) -> LetterId,
) -> Vpa {
    let mut out = Vpa::new(new_alphabet.clone(), vpa.num_states, vpa.num_stack);
    out.initial = vpa.initial.clone();
    out.finals = vpa.finals.clone();
    for new_letter in new_alphabet.letters() {
        let old_letter = map(new_letter);
        for &(q, l, q2) in &vpa.internal {
            if l == old_letter {
                out.internal.insert((q, new_letter, q2));
            }
        }
        for &(q, l, q2, g) in &vpa.call {
            if l == old_letter {
                out.call.insert((q, new_letter, q2, g));
            }
        }
        for &(q, g, l, q2) in &vpa.ret {
            if l == old_letter {
                out.ret.insert((q, g, new_letter, q2));
            }
        }
        for &(q, l, q2) in &vpa.ret_empty {
            if l == old_letter {
                out.ret_empty.insert((q, new_letter, q2));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::word::NestedWord;

    fn alphabet() -> Arc<Alphabet> {
        let mut a = Alphabet::new();
        a.call("<");
        a.ret(">");
        a.internal("x");
        a.internal("y");
        a.into_arc()
    }

    /// Accepts words containing at least one internal `target` letter.
    fn contains_internal(alphabet: Arc<Alphabet>, target: &str) -> Vpa {
        let target = alphabet.lookup(target).unwrap();
        let mut vpa = Vpa::new(alphabet.clone(), 2, 1);
        vpa.set_initial(0);
        vpa.set_final(1);
        vpa.add_all_letter_loops(0, 0);
        vpa.add_all_letter_loops(1, 0);
        vpa.add_internal(0, target, 1);
        vpa
    }

    #[test]
    fn union_accepts_either() {
        let a = alphabet();
        let has_x = contains_internal(a.clone(), "x");
        let has_y = contains_internal(a.clone(), "y");
        let u = union(&has_x, &has_y);

        let wx = NestedWord::from_names(a.clone(), &["<", "x", ">"]);
        let wy = NestedWord::from_names(a.clone(), &["y"]);
        let wnone = NestedWord::from_names(a.clone(), &["<", ">"]);
        assert!(u.accepts(&wx));
        assert!(u.accepts(&wy));
        assert!(!u.accepts(&wnone));
    }

    #[test]
    fn intersection_requires_both() {
        let a = alphabet();
        let has_x = contains_internal(a.clone(), "x");
        let has_y = contains_internal(a.clone(), "y");
        let i = intersect(&has_x, &has_y);

        let both = NestedWord::from_names(a.clone(), &["x", "<", "y", ">"]);
        let only_x = NestedWord::from_names(a.clone(), &["x", "x"]);
        assert!(i.accepts(&both));
        assert!(!i.accepts(&only_x));
    }

    #[test]
    fn intersection_synchronises_the_stack() {
        let a = alphabet();
        // both operands are universal; their product must still accept words with pending
        // calls and pending returns (stack synchronisation must not lose configurations)
        let u1 = Vpa::universal(a.clone());
        let u2 = Vpa::universal(a.clone());
        let i = intersect(&u1, &u2);
        for names in [&["<", "<", "x"][..], &[">", "<", ">"], &[">", ">", ">"]] {
            assert!(
                i.accepts(&NestedWord::from_names(a.clone(), names)),
                "{names:?}"
            );
        }
    }

    #[test]
    fn relabelling_round_trip() {
        // big alphabet: two internal letters x0, x1 that both project to x in the small one
        let mut small = Alphabet::new();
        small.call("<");
        small.ret(">");
        small.internal("x");
        let small = small.into_arc();
        let mut big = Alphabet::new();
        big.call("<");
        big.ret(">");
        big.internal("x0");
        big.internal("x1");
        let big = big.into_arc();

        let project = |l: LetterId| {
            let name = big.name(l);
            let base = match name {
                "x0" | "x1" => "x",
                other => other,
            };
            small.lookup(base).unwrap()
        };

        // automaton over the big alphabet accepting exactly the single word "x1"
        let x1 = big.lookup("x1").unwrap();
        let mut vpa = Vpa::new(big.clone(), 2, 1);
        vpa.set_initial(0);
        vpa.add_internal(0, x1, 1);
        vpa.set_final(1);

        // forward relabelling (projection): accepts "x" over the small alphabet
        let projected = relabel_forward(&vpa, small.clone(), project);
        assert!(projected.accepts(&NestedWord::from_names(small.clone(), &["x"])));
        assert!(!projected.accepts(&NestedWord::from_names(small.clone(), &["<", ">"])));

        // inverse relabelling (cylindrification): lift back to the big alphabet; now both x0
        // and x1 are accepted
        let lifted = relabel_inverse(&projected, big.clone(), project);
        assert!(lifted.accepts(&NestedWord::from_names(big.clone(), &["x0"])));
        assert!(lifted.accepts(&NestedWord::from_names(big.clone(), &["x1"])));
        assert!(!lifted.accepts(&NestedWord::from_names(big, &["x0", "x1"])));
    }

    #[test]
    #[should_panic(expected = "alphabet mismatch")]
    fn mismatched_alphabets_panic() {
        let a = alphabet();
        let mut other = Alphabet::new();
        other.internal("z");
        let other = other.into_arc();
        let _ = union(&Vpa::universal(a), &Vpa::universal(other));
    }
}

/// Remove states that are not reachable from an initial state or cannot reach a final state
/// (both computed over the transition graph, ignoring stack consistency — a safe
/// over-approximation of usefulness, so the language is preserved). States are renumbered
/// densely; stack symbols are left untouched.
pub fn trim(vpa: &Vpa) -> Vpa {
    use std::collections::BTreeSet;
    let mut forward: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); vpa.num_states];
    let mut backward: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); vpa.num_states];
    let add = |from: usize,
               to: usize,
               forward: &mut Vec<BTreeSet<usize>>,
               backward: &mut Vec<BTreeSet<usize>>| {
        forward[from].insert(to);
        backward[to].insert(from);
    };
    for &(q, _, q2) in &vpa.internal {
        add(q, q2, &mut forward, &mut backward);
    }
    for &(q, _, q2, _) in &vpa.call {
        add(q, q2, &mut forward, &mut backward);
    }
    for &(q, _, _, q2) in &vpa.ret {
        add(q, q2, &mut forward, &mut backward);
    }
    for &(q, _, q2) in &vpa.ret_empty {
        add(q, q2, &mut forward, &mut backward);
    }

    let closure = |seeds: &BTreeSet<usize>, edges: &Vec<BTreeSet<usize>>| -> BTreeSet<usize> {
        let mut seen = seeds.clone();
        let mut work: Vec<usize> = seeds.iter().copied().collect();
        while let Some(q) = work.pop() {
            for &q2 in &edges[q] {
                if seen.insert(q2) {
                    work.push(q2);
                }
            }
        }
        seen
    };
    let reachable = closure(&vpa.initial, &forward);
    let productive = closure(&vpa.finals, &backward);
    let useful: Vec<usize> = (0..vpa.num_states)
        .filter(|q| reachable.contains(q) && productive.contains(q))
        .collect();
    if useful.is_empty() {
        return Vpa::empty_language(vpa.alphabet.clone());
    }
    let index: std::collections::BTreeMap<usize, usize> =
        useful.iter().enumerate().map(|(i, &q)| (q, i)).collect();

    let mut out = Vpa::new(vpa.alphabet.clone(), useful.len(), vpa.num_stack.max(1));
    out.initial = vpa
        .initial
        .iter()
        .filter_map(|q| index.get(q).copied())
        .collect();
    out.finals = vpa
        .finals
        .iter()
        .filter_map(|q| index.get(q).copied())
        .collect();
    for &(q, l, q2) in &vpa.internal {
        if let (Some(&a), Some(&b)) = (index.get(&q), index.get(&q2)) {
            out.internal.insert((a, l, b));
        }
    }
    for &(q, l, q2, g) in &vpa.call {
        if let (Some(&a), Some(&b)) = (index.get(&q), index.get(&q2)) {
            out.call.insert((a, l, b, g));
        }
    }
    for &(q, g, l, q2) in &vpa.ret {
        if let (Some(&a), Some(&b)) = (index.get(&q), index.get(&q2)) {
            out.ret.insert((a, g, l, b));
        }
    }
    for &(q, l, q2) in &vpa.ret_empty {
        if let (Some(&a), Some(&b)) = (index.get(&q), index.get(&q2)) {
            out.ret_empty.insert((a, l, b));
        }
    }
    out
}

#[cfg(test)]
mod trim_tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::word::NestedWord;

    #[test]
    fn trim_preserves_the_language_and_drops_useless_states() {
        let mut a = Alphabet::new();
        a.call("<");
        a.ret(">");
        a.internal("x");
        let a = a.into_arc();
        let x = a.lookup("x").unwrap();

        // states: 0 (initial) -x-> 1 (final); 2 unreachable; 3 reachable but dead
        let mut vpa = Vpa::new(a.clone(), 4, 1);
        vpa.set_initial(0);
        vpa.set_final(1);
        vpa.add_internal(0, x, 1);
        vpa.add_internal(2, x, 1);
        vpa.add_internal(0, x, 3);
        let trimmed = trim(&vpa);
        assert_eq!(trimmed.num_states, 2);
        let w = NestedWord::from_names(a.clone(), &["x"]);
        assert_eq!(vpa.accepts(&w), trimmed.accepts(&w));
        let w2 = NestedWord::from_names(a, &["x", "x"]);
        assert_eq!(vpa.accepts(&w2), trimmed.accepts(&w2));
    }

    #[test]
    fn trim_of_an_empty_language_is_empty() {
        let mut a = Alphabet::new();
        a.internal("x");
        let a = a.into_arc();
        let vpa = Vpa::empty_language(a.clone());
        let trimmed = trim(&vpa);
        assert!(crate::vpa::emptiness::is_empty(&trimmed));
    }
}
