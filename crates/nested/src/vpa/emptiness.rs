//! Emptiness checking and witness extraction for VPAs.
//!
//! The algorithm is the standard summary saturation: first compute, for every pair of states
//! `(q, q')`, whether `q'` is reachable from `q` by reading a *well-matched* nested word
//! (internal letters and matched call/return pairs only); then explore what is reachable from
//! the initial states when additionally allowing pending returns (which must all come first)
//! and pending calls (which must all come last). Witness words are reconstructed from the
//! derivations.

use crate::alphabet::LetterId;
use crate::vpa::Vpa;
use crate::word::NestedWord;
use std::collections::BTreeMap;

/// Whether the automaton accepts at least one nested word.
pub fn is_empty(vpa: &Vpa) -> bool {
    shortest_witness(vpa).is_none()
}

/// A nested word accepted by the automaton, if any.
///
/// The witness is not guaranteed to be globally shortest, but it is minimal with respect to
/// the saturation order, which keeps it small in practice.
pub fn shortest_witness(vpa: &Vpa) -> Option<NestedWord> {
    // well-matched summaries: (q, q') → witness word
    let mut summaries: BTreeMap<(usize, usize), Vec<LetterId>> = BTreeMap::new();
    for q in 0..vpa.num_states {
        summaries.insert((q, q), Vec::new());
    }

    // saturate
    loop {
        let mut added: Vec<((usize, usize), Vec<LetterId>)> = Vec::new();
        // internal extension
        for (&(q, q1), w) in &summaries {
            for &(p, a, p2) in &vpa.internal {
                if p == q1 && !summaries.contains_key(&(q, p2)) {
                    let mut w2 = w.clone();
                    w2.push(a);
                    added.push(((q, p2), w2));
                }
            }
            // call/return wrapping: q →wm q1, q1 -call a/γ→ q2, q2 →wm q3, q3 -ret b pop γ→ q4
            for &(p, a, q2, gamma) in &vpa.call {
                if p != q1 {
                    continue;
                }
                for (&(q2b, q3), inner) in &summaries {
                    if q2b != q2 {
                        continue;
                    }
                    for &(p3, g, b, q4) in &vpa.ret {
                        if p3 == q3 && g == gamma && !summaries.contains_key(&(q, q4)) {
                            let mut w2 = w.clone();
                            w2.push(a);
                            w2.extend(inner.iter().copied());
                            w2.push(b);
                            added.push(((q, q4), w2));
                        }
                    }
                }
            }
        }
        if added.is_empty() {
            break;
        }
        for (key, w) in added {
            summaries.entry(key).or_insert(w);
        }
    }

    // phase 1: from the initial states, close under summaries and pending returns
    let mut phase1: BTreeMap<usize, Vec<LetterId>> =
        vpa.initial.iter().map(|&q| (q, Vec::new())).collect();
    saturate_phase(&mut phase1, |q| {
        let mut succ: Vec<(usize, Vec<LetterId>)> = Vec::new();
        for (&(p, p2), w) in &summaries {
            if p == q && p2 != q {
                succ.push((p2, w.clone()));
            }
        }
        for &(p, a, p2) in &vpa.ret_empty {
            if p == q {
                succ.push((p2, vec![a]));
            }
        }
        succ
    });

    // phase 2: additionally allow pending calls (and summaries after them)
    let mut phase2 = phase1.clone();
    saturate_phase(&mut phase2, |q| {
        let mut succ: Vec<(usize, Vec<LetterId>)> = Vec::new();
        for (&(p, p2), w) in &summaries {
            if p == q && p2 != q {
                succ.push((p2, w.clone()));
            }
        }
        for &(p, a, p2, _gamma) in &vpa.call {
            if p == q {
                succ.push((p2, vec![a]));
            }
        }
        succ
    });

    // accepting state reachable?
    let mut best: Option<Vec<LetterId>> = None;
    for (&q, w) in phase1.iter().chain(phase2.iter()) {
        if vpa.finals.contains(&q) {
            match &best {
                Some(current) if current.len() <= w.len() => {}
                _ => best = Some(w.clone()),
            }
        }
    }
    best.map(|letters| NestedWord::new(vpa.alphabet.clone(), letters))
}

/// Generic worklist closure: `reached` maps a state to a witness prefix; `successors` yields
/// `(state, word-suffix)` edges.
fn saturate_phase(
    reached: &mut BTreeMap<usize, Vec<LetterId>>,
    successors: impl Fn(usize) -> Vec<(usize, Vec<LetterId>)>,
) {
    let mut worklist: Vec<usize> = reached.keys().copied().collect();
    while let Some(q) = worklist.pop() {
        let prefix = reached[&q].clone();
        for (q2, suffix) in successors(q) {
            if let std::collections::btree_map::Entry::Vacant(e) = reached.entry(q2) {
                let mut w = prefix.clone();
                w.extend(suffix);
                e.insert(w);
                worklist.push(q2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::vpa::ops::intersect;
    use std::sync::Arc;

    fn alphabet() -> Arc<Alphabet> {
        let mut a = Alphabet::new();
        a.call("<");
        a.ret(">");
        a.internal("x");
        a.into_arc()
    }

    #[test]
    fn universal_is_nonempty_and_empty_is_empty() {
        let a = alphabet();
        assert!(!is_empty(&Vpa::universal(a.clone())));
        assert!(is_empty(&Vpa::empty_language(a.clone())));
        // the universal automaton's witness is the empty word
        let w = shortest_witness(&Vpa::universal(a)).unwrap();
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn witness_requires_matched_nesting() {
        let a = alphabet();
        let lt = a.lookup("<").unwrap();
        let gt = a.lookup(">").unwrap();
        let x = a.lookup("x").unwrap();
        // accepts exactly < x > (via the stack)
        let mut vpa = Vpa::new(a.clone(), 4, 1);
        vpa.set_initial(0);
        vpa.add_call(0, lt, 1, 0);
        vpa.add_internal(1, x, 2);
        vpa.add_return(2, 0, gt, 3);
        vpa.set_final(3);

        let w = shortest_witness(&vpa).expect("nonempty");
        assert_eq!(w.len(), 3);
        assert!(vpa.accepts(&w), "witness must be accepted: {w:?}");
        assert!(w.check_nesting_laws());
    }

    #[test]
    fn witness_with_pending_calls_and_returns() {
        let a = alphabet();
        let lt = a.lookup("<").unwrap();
        let gt = a.lookup(">").unwrap();
        // accepts exactly the words with one pending return followed by one pending call
        let mut vpa = Vpa::new(a.clone(), 3, 1);
        vpa.set_initial(0);
        vpa.add_return_empty(0, gt, 1);
        vpa.add_call(1, lt, 2, 0);
        vpa.set_final(2);

        let w = shortest_witness(&vpa).expect("nonempty");
        assert!(vpa.accepts(&w));
        assert_eq!(w.len(), 2);
        assert_eq!(w.pending_returns().len(), 1);
        assert_eq!(w.pending_calls().len(), 1);
    }

    #[test]
    fn empty_intersection_is_detected() {
        let a = alphabet();
        let x = a.lookup("x").unwrap();
        // automaton 1: accepts words with at least one x
        let mut has_x = Vpa::new(a.clone(), 2, 1);
        has_x.set_initial(0);
        has_x.set_final(1);
        has_x.add_all_letter_loops(0, 0);
        has_x.add_all_letter_loops(1, 0);
        has_x.add_internal(0, x, 1);
        // automaton 2: accepts words with no x at all
        let mut no_x = Vpa::new(a.clone(), 1, 1);
        no_x.set_initial(0);
        no_x.set_final(0);
        let lt = a.lookup("<").unwrap();
        let gt = a.lookup(">").unwrap();
        no_x.add_call(0, lt, 0, 0);
        no_x.add_return(0, 0, gt, 0);
        no_x.add_return_empty(0, gt, 0);

        assert!(!is_empty(&has_x));
        assert!(!is_empty(&no_x));
        assert!(is_empty(&intersect(&has_x, &no_x)));
    }

    #[test]
    fn witness_is_accepted_for_a_nondeterministic_automaton() {
        let a = alphabet();
        let lt = a.lookup("<").unwrap();
        let gt = a.lookup(">").unwrap();
        let x = a.lookup("x").unwrap();
        // accepts words of the form < ... x ... > where the x is directly inside the
        // outermost (matched) call — nondeterministic guess of the relevant call
        let mut vpa = Vpa::new(a.clone(), 4, 2);
        vpa.set_initial(0);
        vpa.set_final(3);
        vpa.add_all_letter_loops(0, 0);
        vpa.add_call(0, lt, 1, 1);
        vpa.add_internal(1, x, 2);
        vpa.add_return(2, 1, gt, 3);
        vpa.add_all_letter_loops(3, 0);
        let w = shortest_witness(&vpa).expect("nonempty");
        assert!(vpa.accepts(&w), "witness {w:?} must be accepted");
    }
}
