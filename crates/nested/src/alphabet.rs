//! Visible (pushdown) alphabets.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The visibility class of a letter: call letters push, return letters pop, internal letters
/// leave the stack untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LetterKind {
    /// A push letter (`Σ↓` in the paper's notation for the encoding alphabet).
    Call,
    /// A pop letter (`Σ↑`).
    Return,
    /// An internal letter (`Σint`).
    Internal,
}

/// Index of a letter within its alphabet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LetterId(pub u32);

impl fmt::Debug for LetterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// A visible alphabet `Σ = Σ↓ ⊎ Σ↑ ⊎ Σint`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alphabet {
    letters: Vec<(String, LetterKind)>,
    #[serde(skip)]
    by_name: HashMap<String, LetterId>,
}

impl Alphabet {
    /// The empty alphabet.
    pub fn new() -> Alphabet {
        Alphabet::default()
    }

    /// Add a letter, returning its id. Adding an existing name with the same kind is a no-op.
    ///
    /// # Panics
    /// Panics if the name exists with a different kind.
    pub fn add(&mut self, name: &str, kind: LetterKind) -> LetterId {
        if let Some(&id) = self.by_name.get(name) {
            assert_eq!(
                self.letters[id.0 as usize].1, kind,
                "letter {name} redeclared with a different kind"
            );
            return id;
        }
        let id = LetterId(self.letters.len() as u32);
        self.letters.push((name.to_owned(), kind));
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Convenience: add a call letter.
    pub fn call(&mut self, name: &str) -> LetterId {
        self.add(name, LetterKind::Call)
    }

    /// Convenience: add a return letter.
    pub fn ret(&mut self, name: &str) -> LetterId {
        self.add(name, LetterKind::Return)
    }

    /// Convenience: add an internal letter.
    pub fn internal(&mut self, name: &str) -> LetterId {
        self.add(name, LetterKind::Internal)
    }

    /// Number of letters.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// Whether the alphabet has no letters.
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// The kind of a letter.
    pub fn kind(&self, letter: LetterId) -> LetterKind {
        self.letters[letter.0 as usize].1
    }

    /// The name of a letter.
    pub fn name(&self, letter: LetterId) -> &str {
        &self.letters[letter.0 as usize].0
    }

    /// Look a letter up by name.
    pub fn lookup(&self, name: &str) -> Option<LetterId> {
        self.by_name.get(name).copied()
    }

    /// Iterate over all letter ids.
    pub fn letters(&self) -> impl Iterator<Item = LetterId> + '_ {
        (0..self.letters.len() as u32).map(LetterId)
    }

    /// Iterate over the letters of a given kind.
    pub fn letters_of_kind(&self, kind: LetterKind) -> impl Iterator<Item = LetterId> + '_ {
        self.letters().filter(move |&l| self.kind(l) == kind)
    }

    /// Wrap in an `Arc` (alphabets are shared by words and automata).
    pub fn into_arc(self) -> Arc<Alphabet> {
        Arc::new(self)
    }

    /// Rebuild the name index (needed after deserialization).
    pub fn reindex(&mut self) {
        self.by_name = self
            .letters
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.clone(), LetterId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut a = Alphabet::new();
        let call = a.call("push_a");
        let ret = a.ret("pop_a");
        let int = a.internal("i");
        assert_eq!(a.len(), 3);
        assert_eq!(a.kind(call), LetterKind::Call);
        assert_eq!(a.kind(ret), LetterKind::Return);
        assert_eq!(a.kind(int), LetterKind::Internal);
        assert_eq!(a.lookup("push_a"), Some(call));
        assert_eq!(a.lookup("missing"), None);
        assert_eq!(a.name(int), "i");
        assert_eq!(a.letters_of_kind(LetterKind::Call).count(), 1);
    }

    #[test]
    fn adding_same_letter_twice_is_idempotent() {
        let mut a = Alphabet::new();
        let x = a.call("x");
        let y = a.call("x");
        assert_eq!(x, y);
        assert_eq!(a.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn conflicting_kind_panics() {
        let mut a = Alphabet::new();
        a.call("x");
        a.ret("x");
    }

    #[test]
    fn example_6_2_alphabet() {
        // Σ↓ = {↓a, ↓b}, Σ↑ = {↑a, ↑b}, Σint = {•}
        let mut a = Alphabet::new();
        a.call("↓a");
        a.call("↓b");
        a.ret("↑a");
        a.ret("↑b");
        a.internal("•");
        assert_eq!(a.letters_of_kind(LetterKind::Call).count(), 2);
        assert_eq!(a.letters_of_kind(LetterKind::Return).count(), 2);
        assert_eq!(a.letters_of_kind(LetterKind::Internal).count(), 1);
    }
}
