//! # rdms-nested — nested words, MSO over nested words, visibly pushdown automata
//!
//! The decidability result of the paper (Theorem 5.1) reduces recency-bounded model checking
//! to the satisfiability problem of **monadic second-order logic over nested words**, citing
//! Alur–Madhusudan for its decidability (the paper's "Fact 1"). This crate implements that
//! machinery from scratch:
//!
//! * [`alphabet`] — visible (pushdown) alphabets: every letter is a call (push), return
//!   (pop) or internal letter;
//! * [`word`] — finite nested words: a word over a visible alphabet together with the
//!   induced nesting relation `⊿` (computed by stack matching, with pending calls and
//!   pending returns allowed, exactly as in the paper's Section 6.2);
//! * [`mso`] — the logic MSO_NW: letter predicates `a(x)`, order `x < y`, nesting `x ⊿ y`,
//!   membership `x ∈ X`, boolean connectives and first/second-order quantification;
//! * [`eval`] — direct evaluation of MSO_NW formulae on concrete nested words (reference
//!   semantics, exponential in the second-order quantifier depth — used for cross-validation
//!   on small instances);
//! * [`vpa`] — visibly pushdown automata: nondeterministic VPAs, membership, union, product,
//!   determinization (the Alur–Madhusudan summary-pair construction), complementation,
//!   relabelling/projection, emptiness and witness extraction;
//! * [`mod@compile`] — the MSO_NW → VPA compiler realising Fact 1: satisfiability and
//!   model-checking of MSO_NW formulae by automata-theoretic means.

pub mod alphabet;
pub mod compile;
pub mod eval;
pub mod mso;
pub mod vpa;
pub mod word;

pub use alphabet::{Alphabet, LetterId, LetterKind};
pub use compile::{compile, is_satisfiable, satisfying_witness};
pub use mso::MsoNw;
pub use vpa::Vpa;
pub use word::NestedWord;
