//! Compilation of MSO_NW formulae into visibly pushdown automata.
//!
//! This module realises the paper's "Fact 1" (decidability of MSO_NW satisfiability, due to
//! Alur–Madhusudan) constructively, by the classical MSO-to-automaton translation:
//!
//! * a formula with free variables `V` is compiled into a VPA over the **tracked alphabet**
//!   `Σ × {0,1}^V` — every letter carries one bit per variable, marking the position(s)
//!   assigned to it;
//! * atomic formulae become small fixed automata; `∧` is automaton product, `∨` union, `¬`
//!   complement (via determinization); `∃` is projection of the variable's track, with a
//!   *singleton* constraint conjoined for first-order variables;
//! * satisfiability is VPA emptiness; witnesses decode into a nested word plus an
//!   assignment.
//!
//! The translation is non-elementary in the quantifier alternation depth — exactly the
//! complexity the paper reports for its decision procedure — so this pipeline is intended for
//! small formulae/alphabets; the `rdms-checker` crate uses it as the faithful reference
//! engine and cross-validates it against direct evaluation and against its bounded explorer.

use crate::alphabet::{Alphabet, LetterId, LetterKind};
use crate::eval::Assignment;
use crate::mso::{MsoNw, MsoVar};
use crate::vpa::determinize::complement;
use crate::vpa::emptiness::shortest_witness;
use crate::vpa::ops::{intersect, relabel_forward, relabel_inverse, trim, union};
use crate::vpa::Vpa;
use crate::word::NestedWord;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The alphabet `Σ × {0,1}^V` for a base alphabet `Σ` and an ordered variable list `V`.
#[derive(Clone, Debug)]
pub struct TrackedAlphabet {
    base: Arc<Alphabet>,
    vars: Vec<MsoVar>,
    alphabet: Arc<Alphabet>,
}

impl TrackedAlphabet {
    /// Build the tracked alphabet for the given (sorted, duplicate-free) variable list.
    pub fn new(base: Arc<Alphabet>, vars: Vec<MsoVar>) -> TrackedAlphabet {
        debug_assert!(
            vars.windows(2).all(|w| w[0] < w[1]),
            "variables must be sorted and distinct"
        );
        if vars.is_empty() {
            return TrackedAlphabet {
                alphabet: base.clone(),
                base,
                vars,
            };
        }
        let k = vars.len();
        let mut alphabet = Alphabet::new();
        for letter in base.letters() {
            for mask in 0..(1u64 << k) {
                alphabet.add(
                    &format!("{}|{:0width$b}", base.name(letter), mask, width = k),
                    base.kind(letter),
                );
            }
        }
        TrackedAlphabet {
            base,
            vars,
            alphabet: alphabet.into_arc(),
        }
    }

    /// The underlying base alphabet.
    pub fn base(&self) -> &Arc<Alphabet> {
        &self.base
    }

    /// The tracked alphabet itself.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// The tracked variables, in bit order.
    pub fn vars(&self) -> &[MsoVar] {
        &self.vars
    }

    /// The bit index of a variable.
    pub fn bit(&self, var: MsoVar) -> Option<usize> {
        self.vars.iter().position(|&v| v == var)
    }

    /// The tracked letter for `(base letter, mask)`.
    pub fn letter(&self, base: LetterId, mask: u64) -> LetterId {
        if self.vars.is_empty() {
            debug_assert_eq!(mask, 0);
            return base;
        }
        LetterId(base.0 * (1u32 << self.vars.len()) + mask as u32)
    }

    /// Decompose a tracked letter into `(base letter, mask)`.
    pub fn decompose(&self, letter: LetterId) -> (LetterId, u64) {
        if self.vars.is_empty() {
            return (letter, 0);
        }
        let width = 1u32 << self.vars.len();
        (LetterId(letter.0 / width), (letter.0 % width) as u64)
    }

    /// Whether the given tracked letter has the bit of `var` set.
    pub fn has_bit(&self, letter: LetterId, var: MsoVar) -> bool {
        match self.bit(var) {
            Some(i) => self.decompose(letter).1 & (1 << i) != 0,
            None => false,
        }
    }

    /// Encode a base nested word plus an assignment as a word over the tracked alphabet.
    pub fn encode(&self, word: &NestedWord, assignment: &Assignment) -> NestedWord {
        let letters = (0..word.len())
            .map(|p| {
                let mut mask = 0u64;
                for (i, var) in self.vars.iter().enumerate() {
                    let marked = match var {
                        MsoVar::Pos(x) => assignment.pos.get(x) == Some(&p),
                        MsoVar::Set(s) => assignment
                            .sets
                            .get(s)
                            .map(|set| set.contains(&p))
                            .unwrap_or(false),
                    };
                    if marked {
                        mask |= 1 << i;
                    }
                }
                self.letter(word.letter(p), mask)
            })
            .collect();
        NestedWord::new(self.alphabet.clone(), letters)
    }

    /// Decode a tracked nested word into a base word and the assignment it encodes.
    pub fn decode(&self, word: &NestedWord) -> (NestedWord, Assignment) {
        let mut assignment = Assignment::new();
        let mut letters = Vec::with_capacity(word.len());
        for p in 0..word.len() {
            let (base, mask) = self.decompose(word.letter(p));
            letters.push(base);
            for (i, var) in self.vars.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    match var {
                        MsoVar::Pos(x) => {
                            assignment.pos.insert(*x, p);
                        }
                        MsoVar::Set(s) => {
                            assignment.sets.entry(*s).or_default().insert(p);
                        }
                    }
                }
            }
        }
        // make sure every tracked set variable is present even if empty
        for var in &self.vars {
            if let MsoVar::Set(s) = var {
                assignment.sets.entry(*s).or_default();
            }
        }
        (NestedWord::new(self.base.clone(), letters), assignment)
    }
}

/// The result of compiling a formula: an automaton over the tracked alphabet of its free
/// variables.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The automaton.
    pub vpa: Vpa,
    /// Tracked alphabet (free variables of the compiled formula, sorted).
    pub tracked: TrackedAlphabet,
}

impl Compiled {
    /// Whether the compiled formula holds on `word` under `assignment` (membership of the
    /// encoded word).
    pub fn check(&self, word: &NestedWord, assignment: &Assignment) -> bool {
        self.vpa.accepts(&self.tracked.encode(word, assignment))
    }
}

/// Compile a formula over the given base alphabet.
pub fn compile(formula: &MsoNw, base: &Arc<Alphabet>) -> Compiled {
    let (vpa, vars) = compile_rec(formula, base);
    Compiled {
        vpa,
        tracked: TrackedAlphabet::new(base.clone(), vars),
    }
}

/// Satisfiability of a formula: is there a nested word (and assignment of the free
/// variables) satisfying it? First-order free variables are constrained to be assigned to
/// exactly one position, as the standard encoding requires.
pub fn is_satisfiable(formula: &MsoNw, base: &Arc<Alphabet>) -> bool {
    satisfying_witness(formula, base).is_some()
}

/// A satisfying nested word and assignment, if one exists.
pub fn satisfying_witness(
    formula: &MsoNw,
    base: &Arc<Alphabet>,
) -> Option<(NestedWord, Assignment)> {
    let compiled = compile(formula, base);
    let tracked = &compiled.tracked;
    // conjoin singleton constraints for free first-order variables
    let mut vpa = compiled.vpa.clone();
    for var in tracked.vars() {
        if let MsoVar::Pos(_) = var {
            vpa = intersect(&vpa, &singleton_automaton(tracked, *var));
        }
    }
    let witness = shortest_witness(&vpa)?;
    Some(tracked.decode(&witness))
}

// ---------------------------------------------------------------------------------------
// recursive translation
// ---------------------------------------------------------------------------------------

fn compile_rec(formula: &MsoNw, base: &Arc<Alphabet>) -> (Vpa, Vec<MsoVar>) {
    match formula {
        MsoNw::True => (Vpa::universal(base.clone()), vec![]),
        MsoNw::Letter(a, x) => {
            let tracked = TrackedAlphabet::new(base.clone(), vec![MsoVar::Pos(*x)]);
            (
                letter_automaton(&tracked, *a, MsoVar::Pos(*x)),
                tracked.vars.clone(),
            )
        }
        MsoNw::Less(x, y) => {
            let vars = two_vars(MsoVar::Pos(*x), MsoVar::Pos(*y));
            let tracked = TrackedAlphabet::new(base.clone(), vars.clone());
            (
                less_automaton(&tracked, MsoVar::Pos(*x), MsoVar::Pos(*y)),
                vars,
            )
        }
        MsoNw::PosEq(x, y) => {
            if x == y {
                // x = x: require only that the position exists
                let tracked = TrackedAlphabet::new(base.clone(), vec![MsoVar::Pos(*x)]);
                (
                    exists_marked_automaton(&tracked, MsoVar::Pos(*x)),
                    tracked.vars.clone(),
                )
            } else {
                let vars = two_vars(MsoVar::Pos(*x), MsoVar::Pos(*y));
                let tracked = TrackedAlphabet::new(base.clone(), vars.clone());
                (
                    same_position_automaton(&tracked, MsoVar::Pos(*x), MsoVar::Pos(*y)),
                    vars,
                )
            }
        }
        MsoNw::Matched(x, y) => {
            let vars = two_vars(MsoVar::Pos(*x), MsoVar::Pos(*y));
            let tracked = TrackedAlphabet::new(base.clone(), vars.clone());
            (
                matched_automaton(&tracked, MsoVar::Pos(*x), MsoVar::Pos(*y)),
                vars,
            )
        }
        MsoNw::In(x, set) => {
            let vars = two_vars(MsoVar::Pos(*x), MsoVar::Set(*set));
            let tracked = TrackedAlphabet::new(base.clone(), vars.clone());
            (
                same_position_automaton(&tracked, MsoVar::Pos(*x), MsoVar::Set(*set)),
                vars,
            )
        }
        MsoNw::Not(p) => {
            let (vpa, vars) = compile_rec(p, base);
            (trim(&complement(&trim(&vpa))), vars)
        }
        MsoNw::And(a, b) => {
            let (va, vars_a) = compile_rec(a, base);
            let (vb, vars_b) = compile_rec(b, base);
            let (va, vb, vars) = align(base, va, vars_a, vb, vars_b);
            (trim(&intersect(&va, &vb)), vars)
        }
        MsoNw::Or(a, b) => {
            let (va, vars_a) = compile_rec(a, base);
            let (vb, vars_b) = compile_rec(b, base);
            let (va, vb, vars) = align(base, va, vars_a, vb, vars_b);
            (trim(&union(&va, &vb)), vars)
        }
        MsoNw::ExistsPos(x, p) => compile_exists(base, MsoVar::Pos(*x), p, true),
        MsoNw::ExistsSet(x, p) => compile_exists(base, MsoVar::Set(*x), p, false),
        MsoNw::ForallPos(x, p) => {
            let inner = MsoNw::ExistsPos(*x, Box::new(p.clone().not())).not();
            compile_rec(&inner, base)
        }
        MsoNw::ForallSet(x, p) => {
            let inner = MsoNw::ExistsSet(*x, Box::new(p.clone().not())).not();
            compile_rec(&inner, base)
        }
    }
}

fn two_vars(a: MsoVar, b: MsoVar) -> Vec<MsoVar> {
    let set: BTreeSet<MsoVar> = [a, b].into_iter().collect();
    set.into_iter().collect()
}

fn compile_exists(
    base: &Arc<Alphabet>,
    var: MsoVar,
    body: &MsoNw,
    first_order: bool,
) -> (Vpa, Vec<MsoVar>) {
    let (vpa, vars) = compile_rec(body, base);
    if !vars.contains(&var) {
        // the variable does not occur in the body
        if first_order {
            // ∃x.ψ still requires a witness position to exist
            let tracked = TrackedAlphabet::new(base.clone(), vars.clone());
            let nonempty = nonempty_word_automaton(tracked.alphabet());
            return (intersect(&vpa, &nonempty), vars);
        }
        // ∃X.ψ is witnessed by the empty set
        return (vpa, vars);
    }
    let tracked = TrackedAlphabet::new(base.clone(), vars.clone());
    let constrained = if first_order {
        intersect(&vpa, &singleton_automaton(&tracked, var))
    } else {
        vpa
    };
    // project the variable's track away
    let small_vars: Vec<MsoVar> = vars.iter().copied().filter(|&v| v != var).collect();
    let small = TrackedAlphabet::new(base.clone(), small_vars.clone());
    let bit = tracked.bit(var).expect("var is tracked");
    let map = |letter: LetterId| {
        let (b, mask) = tracked.decompose(letter);
        let small_mask = drop_bit(mask, bit);
        small.letter(b, small_mask)
    };
    let projected = relabel_forward(&trim(&constrained), small.alphabet().clone(), map);
    (projected, small_vars)
}

fn drop_bit(mask: u64, bit: usize) -> u64 {
    let low = mask & ((1 << bit) - 1);
    let high = mask >> (bit + 1);
    low | (high << bit)
}

/// Cylindrify both operands to the union of their variable lists.
fn align(
    base: &Arc<Alphabet>,
    va: Vpa,
    vars_a: Vec<MsoVar>,
    vb: Vpa,
    vars_b: Vec<MsoVar>,
) -> (Vpa, Vpa, Vec<MsoVar>) {
    let union_vars: Vec<MsoVar> = vars_a
        .iter()
        .chain(vars_b.iter())
        .copied()
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let big = TrackedAlphabet::new(base.clone(), union_vars.clone());
    let lift = |vpa: Vpa, vars: &[MsoVar]| -> Vpa {
        if vars == union_vars.as_slice() {
            return vpa;
        }
        let small = TrackedAlphabet::new(base.clone(), vars.to_vec());
        let map = |letter: LetterId| {
            let (b, big_mask) = big.decompose(letter);
            let mut small_mask = 0u64;
            for (i, var) in small.vars().iter().enumerate() {
                let big_bit = big.bit(*var).expect("subset of union vars");
                if big_mask & (1 << big_bit) != 0 {
                    small_mask |= 1 << i;
                }
            }
            small.letter(b, small_mask)
        };
        relabel_inverse(&vpa, big.alphabet().clone(), map)
    };
    let va2 = lift(va, &vars_a);
    let vb2 = lift(vb, &vars_b);
    (va2, vb2, union_vars)
}

// ---------------------------------------------------------------------------------------
// atomic automata
// ---------------------------------------------------------------------------------------

/// Add a transition `from --letter--> to` of the appropriate kind, ignoring the stack
/// (pushes symbol 0, pops any symbol or the empty stack).
fn add_edge(vpa: &mut Vpa, from: usize, to: usize, letter: LetterId) {
    match vpa.alphabet.kind(letter) {
        LetterKind::Internal => vpa.add_internal(from, letter, to),
        LetterKind::Call => vpa.add_call(from, letter, to, 0),
        LetterKind::Return => {
            for gamma in 0..vpa.num_stack {
                vpa.add_return(from, gamma, letter, to);
            }
            vpa.add_return_empty(from, letter, to);
        }
    }
}

/// Letters of the tracked alphabet whose bits satisfy `predicate(mask)`.
fn letters_where<'a>(
    tracked: &'a TrackedAlphabet,
    predicate: impl Fn(LetterId, u64) -> bool + 'a,
) -> impl Iterator<Item = LetterId> + 'a {
    tracked.alphabet().letters().filter(move |&l| {
        let (base, mask) = tracked.decompose(l);
        predicate(base, mask)
    })
}

fn bit_of(tracked: &TrackedAlphabet, var: MsoVar) -> u64 {
    1u64 << tracked.bit(var).expect("variable must be tracked")
}

/// `a(x)`: the x-marked position carries base letter `a`.
fn letter_automaton(tracked: &TrackedAlphabet, a: LetterId, x: MsoVar) -> Vpa {
    let xb = bit_of(tracked, x);
    let mut vpa = Vpa::new(tracked.alphabet().clone(), 2, 1);
    vpa.set_initial(0);
    vpa.set_final(1);
    for l in letters_where(tracked, |_, m| m & xb == 0).collect::<Vec<_>>() {
        add_edge(&mut vpa, 0, 0, l);
        add_edge(&mut vpa, 1, 1, l);
    }
    for l in letters_where(tracked, |b, m| m & xb != 0 && b == a).collect::<Vec<_>>() {
        add_edge(&mut vpa, 0, 1, l);
    }
    vpa
}

/// Some x-marked position exists (used for `x = x`).
fn exists_marked_automaton(tracked: &TrackedAlphabet, x: MsoVar) -> Vpa {
    let xb = bit_of(tracked, x);
    let mut vpa = Vpa::new(tracked.alphabet().clone(), 2, 1);
    vpa.set_initial(0);
    vpa.set_final(1);
    for l in letters_where(tracked, |_, m| m & xb == 0).collect::<Vec<_>>() {
        add_edge(&mut vpa, 0, 0, l);
        add_edge(&mut vpa, 1, 1, l);
    }
    for l in letters_where(tracked, |_, m| m & xb != 0).collect::<Vec<_>>() {
        add_edge(&mut vpa, 0, 1, l);
    }
    vpa
}

/// `x < y`.
fn less_automaton(tracked: &TrackedAlphabet, x: MsoVar, y: MsoVar) -> Vpa {
    let xb = bit_of(tracked, x);
    let yb = bit_of(tracked, y);
    let mut vpa = Vpa::new(tracked.alphabet().clone(), 3, 1);
    vpa.set_initial(0);
    vpa.set_final(2);
    for l in letters_where(tracked, |_, m| m & xb == 0 && m & yb == 0).collect::<Vec<_>>() {
        add_edge(&mut vpa, 0, 0, l);
        add_edge(&mut vpa, 1, 1, l);
        add_edge(&mut vpa, 2, 2, l);
    }
    for l in letters_where(tracked, |_, m| m & xb != 0 && m & yb == 0).collect::<Vec<_>>() {
        add_edge(&mut vpa, 0, 1, l);
    }
    for l in letters_where(tracked, |_, m| m & yb != 0 && m & xb == 0).collect::<Vec<_>>() {
        add_edge(&mut vpa, 1, 2, l);
    }
    vpa
}

/// Some position carries both marks (`x = y`, and `x ∈ X`).
fn same_position_automaton(tracked: &TrackedAlphabet, a: MsoVar, b: MsoVar) -> Vpa {
    let ab = bit_of(tracked, a);
    let bb = bit_of(tracked, b);
    let mut vpa = Vpa::new(tracked.alphabet().clone(), 2, 1);
    vpa.set_initial(0);
    vpa.set_final(1);
    // Note: for `x ∈ X` the other positions of X are unconstrained, so the loops only care
    // about the *x* mark.
    for l in letters_where(tracked, |_, m| m & ab == 0).collect::<Vec<_>>() {
        add_edge(&mut vpa, 0, 0, l);
        add_edge(&mut vpa, 1, 1, l);
    }
    for l in letters_where(tracked, |_, m| m & ab != 0 && m & bb != 0).collect::<Vec<_>>() {
        add_edge(&mut vpa, 0, 1, l);
    }
    vpa
}

/// `x ⊿ y`: the x-marked call is matched by the y-marked return. Uses two stack symbols:
/// `1` marks the push made at the x position, `0` everything else.
fn matched_automaton(tracked: &TrackedAlphabet, x: MsoVar, y: MsoVar) -> Vpa {
    let xb = bit_of(tracked, x);
    let yb = bit_of(tracked, y);
    let alphabet = tracked.alphabet().clone();
    let mut vpa = Vpa::new(alphabet.clone(), 3, 2);
    vpa.set_initial(0);
    vpa.set_final(2);

    let unmarked: Vec<LetterId> =
        letters_where(tracked, |_, m| m & xb == 0 && m & yb == 0).collect();
    for &l in &unmarked {
        match alphabet.kind(l) {
            LetterKind::Internal => {
                vpa.add_internal(0, l, 0);
                vpa.add_internal(1, l, 1);
                vpa.add_internal(2, l, 2);
            }
            LetterKind::Call => {
                vpa.add_call(0, l, 0, 0);
                vpa.add_call(1, l, 1, 0);
                vpa.add_call(2, l, 2, 0);
            }
            LetterKind::Return => {
                // plain pops keep the state; the marked symbol may only be popped at y
                vpa.add_return(0, 0, l, 0);
                vpa.add_return_empty(0, l, 0);
                vpa.add_return(1, 0, l, 1);
                vpa.add_return(2, 0, l, 2);
                vpa.add_return_empty(2, l, 2);
            }
        }
    }
    // the x-marked call pushes the marked symbol
    for l in letters_where(tracked, |_, m| m & xb != 0 && m & yb == 0).collect::<Vec<_>>() {
        if alphabet.kind(l) == LetterKind::Call {
            vpa.add_call(0, l, 1, 1);
        }
    }
    // the y-marked return must pop the marked symbol
    for l in letters_where(tracked, |_, m| m & yb != 0 && m & xb == 0).collect::<Vec<_>>() {
        if alphabet.kind(l) == LetterKind::Return {
            vpa.add_return(1, 1, l, 2);
        }
    }
    vpa
}

/// Exactly one position carries the mark of `var`.
fn singleton_automaton(tracked: &TrackedAlphabet, var: MsoVar) -> Vpa {
    let vb = bit_of(tracked, var);
    let mut vpa = Vpa::new(tracked.alphabet().clone(), 2, 1);
    vpa.set_initial(0);
    vpa.set_final(1);
    for l in letters_where(tracked, |_, m| m & vb == 0).collect::<Vec<_>>() {
        add_edge(&mut vpa, 0, 0, l);
        add_edge(&mut vpa, 1, 1, l);
    }
    for l in letters_where(tracked, |_, m| m & vb != 0).collect::<Vec<_>>() {
        add_edge(&mut vpa, 0, 1, l);
    }
    vpa
}

/// Words with at least one position.
fn nonempty_word_automaton(alphabet: &Arc<Alphabet>) -> Vpa {
    let mut vpa = Vpa::new(alphabet.clone(), 2, 1);
    vpa.set_initial(0);
    vpa.set_final(1);
    for l in alphabet.letters().collect::<Vec<_>>() {
        add_edge(&mut vpa, 0, 1, l);
        add_edge(&mut vpa, 1, 1, l);
    }
    vpa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, eval_sentence};
    use crate::mso::{PosVar, SetVar, VarFactory};

    fn base() -> Arc<Alphabet> {
        let mut a = Alphabet::new();
        a.call("<");
        a.ret(">");
        a.internal("x");
        a.internal("y");
        a.into_arc()
    }

    fn sample_words(a: &Arc<Alphabet>) -> Vec<NestedWord> {
        [
            &["x"][..],
            &["<", "x", ">"],
            &["<", "y", ">", "x"],
            &["<", "<", "y", ">", ">"],
            &[">", "x", "<"],
            &["<", "x"],
            &[],
            &["y", "y", "<", "x", ">"],
        ]
        .iter()
        .map(|names| NestedWord::from_names(a.clone(), names))
        .collect()
    }

    /// Cross-validate the compiled automaton against direct evaluation on every sample word.
    fn agree_on_sentences(phi: &MsoNw, a: &Arc<Alphabet>) {
        let compiled = compile(phi, a);
        for word in sample_words(a) {
            let direct = eval_sentence(&word, phi);
            let via_vpa = compiled.check(&word, &Assignment::new());
            assert_eq!(direct, via_vpa, "formula {phi:?} disagrees on {word:?}");
        }
    }

    #[test]
    fn sentence_every_x_is_inside_some_matching_pair() {
        let a = base();
        let x_letter = a.lookup("x").unwrap();
        let mut f = VarFactory::new();
        let p = f.pos();
        let c = f.pos();
        let r = f.pos();
        // ∀p. x(p) → ∃c,r. c ⊿ r ∧ c < p ∧ p < r
        let phi = MsoNw::forall_pos(
            p,
            MsoNw::Letter(x_letter, p).implies(MsoNw::exists_pos(
                c,
                MsoNw::exists_pos(
                    r,
                    MsoNw::Matched(c, r)
                        .and(MsoNw::Less(c, p))
                        .and(MsoNw::Less(p, r)),
                ),
            )),
        );
        agree_on_sentences(&phi, &a);
    }

    #[test]
    fn sentence_some_call_is_pending() {
        let a = base();
        let mut f = VarFactory::new();
        let c = f.pos();
        let r = f.pos();
        let call_letters: Vec<LetterId> = a.letters_of_kind(LetterKind::Call).collect();
        // ∃c. call(c) ∧ ¬∃r. c ⊿ r
        let phi = MsoNw::exists_pos(
            c,
            MsoNw::letter_among(call_letters, c)
                .and(MsoNw::exists_pos(r, MsoNw::Matched(c, r)).not()),
        );
        agree_on_sentences(&phi, &a);
    }

    #[test]
    fn sentence_with_second_order_quantification() {
        let a = base();
        let mut f = VarFactory::new();
        let set = f.set();
        let p = f.pos();
        let y_letter = a.lookup("y").unwrap();
        // ∃X. ∀p. (p ∈ X ↔ y(p)) ∧ ∃p. p ∈ X   — i.e. “some position carries y”
        let phi = MsoNw::exists_set(
            set,
            MsoNw::forall_pos(p, MsoNw::is_in(p, set).iff(MsoNw::Letter(y_letter, p)))
                .and(MsoNw::exists_pos(p, MsoNw::is_in(p, set))),
        );
        agree_on_sentences(&phi, &a);
    }

    #[test]
    fn formulas_with_free_variables_check_against_assignments() {
        let a = base();
        let x = PosVar(0);
        let y = PosVar(1);
        let phi = MsoNw::Matched(x, y);
        let compiled = compile(&phi, &a);
        let word = NestedWord::from_names(a.clone(), &["<", "<", "y", ">", ">"]);
        for i in 0..word.len() {
            for j in 0..word.len() {
                let assignment = Assignment::new().with_pos(x, i).with_pos(y, j);
                assert_eq!(
                    compiled.check(&word, &assignment),
                    eval(&word, &assignment, &phi),
                    "x ⊿ y at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn satisfiability_and_witnesses() {
        let a = base();
        let mut f = VarFactory::new();
        let c = f.pos();
        let r = f.pos();
        let p = f.pos();
        let x_letter = a.lookup("x").unwrap();

        // satisfiable: there is a matched pair with an x strictly inside
        let phi = MsoNw::exists_pos(
            c,
            MsoNw::exists_pos(
                r,
                MsoNw::exists_pos(
                    p,
                    MsoNw::Matched(c, r)
                        .and(MsoNw::Less(c, p))
                        .and(MsoNw::Less(p, r))
                        .and(MsoNw::Letter(x_letter, p)),
                ),
            ),
        );
        assert!(is_satisfiable(&phi, &a));
        let (word, _) = satisfying_witness(&phi, &a).unwrap();
        assert!(
            eval_sentence(&word, &phi),
            "witness {word:?} must satisfy the sentence"
        );

        // unsatisfiable: a position that is both a call and matched as a return
        let q = f.pos();
        let unsat = MsoNw::exists_pos(q, MsoNw::Matched(q, q));
        assert!(!is_satisfiable(&unsat, &a));
    }

    #[test]
    fn singleton_constraint_applies_to_free_variables() {
        let a = base();
        // x < x is unsatisfiable once x must be a single position
        let x = PosVar(7);
        let phi = MsoNw::Less(x, x);
        assert!(!is_satisfiable(&phi, &a));
        // x = x is satisfiable (any one-position word)
        let phi = MsoNw::PosEq(x, x);
        assert!(is_satisfiable(&phi, &a));
    }

    #[test]
    fn tracked_alphabet_encode_decode_round_trip() {
        let a = base();
        let x = PosVar(0);
        let set = SetVar(0);
        let tracked = TrackedAlphabet::new(a.clone(), vec![MsoVar::Pos(x), MsoVar::Set(set)]);
        assert_eq!(tracked.alphabet().len(), a.len() * 4);

        let word = NestedWord::from_names(a.clone(), &["<", "x", ">", "y"]);
        let assignment = Assignment::new()
            .with_pos(x, 1)
            .with_set(set, BTreeSet::from([0, 3]));
        let encoded = tracked.encode(&word, &assignment);
        assert_eq!(encoded.len(), word.len());
        // nesting structure is preserved by the encoding
        assert_eq!(encoded.nesting_edges(), word.nesting_edges());
        let (decoded, decoded_assignment) = tracked.decode(&encoded);
        assert_eq!(decoded, word);
        assert_eq!(decoded_assignment, assignment);
    }

    #[test]
    fn forall_set_compiles() {
        let a = base();
        let mut f = VarFactory::new();
        let set = f.set();
        let p = f.pos();
        // ∀X. ∃p. p ∈ X ∨ ¬(p ∈ X)  — valid on non-empty words, false on the empty word
        // (because ∃p needs a position)
        let phi = MsoNw::forall_set(
            set,
            MsoNw::exists_pos(p, MsoNw::is_in(p, set).or(MsoNw::is_in(p, set).not())),
        );
        let compiled = compile(&phi, &a);
        let nonempty = NestedWord::from_names(a.clone(), &["x", "y"]);
        let empty = NestedWord::new(a.clone(), vec![]);
        assert!(compiled.check(&nonempty, &Assignment::new()));
        assert!(!compiled.check(&empty, &Assignment::new()));
        assert!(eval_sentence(&nonempty, &phi));
        assert!(!eval_sentence(&empty, &phi));
    }

    #[test]
    fn drop_bit_helper() {
        assert_eq!(drop_bit(0b1011, 1), 0b101);
        assert_eq!(drop_bit(0b1011, 0), 0b101);
        assert_eq!(drop_bit(0b1011, 3), 0b011);
        assert_eq!(drop_bit(0b1, 0), 0);
    }
}
