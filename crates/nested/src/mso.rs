//! Monadic second-order logic over nested words (MSO_NW, Section 6.2 of the paper).
//!
//! ```text
//! ϕ ::= a(x) | x < y | x ⊿ y | x ∈ X | ¬ϕ | ϕ ∨ ϕ | ∃x.ϕ | ∃X.ϕ
//! ```
//!
//! We additionally keep `∧`, `→`, `∀`, position equality and a handful of derived macros
//! (`succ`, `first`, `last`, `x ≤ y`) as constructors — they all desugar to the core syntax
//! for the purposes of the automaton translation, but keeping them first-class makes the
//! (very large) formulae produced by `rdms-checker` much easier to read and to test.

use crate::alphabet::LetterId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A first-order position variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PosVar(pub u32);

/// A second-order (set-of-positions) variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SetVar(pub u32);

impl fmt::Debug for PosVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for SetVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// Either kind of variable (used for free-variable bookkeeping in the compiler).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum MsoVar {
    /// First-order position variable.
    Pos(PosVar),
    /// Second-order set variable.
    Set(SetVar),
}

/// An MSO_NW formula.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MsoNw {
    /// The constant true.
    True,
    /// `a(x)`: position `x` carries letter `a`.
    Letter(LetterId, PosVar),
    /// `x < y`.
    Less(PosVar, PosVar),
    /// `x = y` (derivable, kept atomic).
    PosEq(PosVar, PosVar),
    /// `x ⊿ y`: `x` is a call matched by return `y`.
    Matched(PosVar, PosVar),
    /// `x ∈ X`.
    In(PosVar, SetVar),
    /// Negation.
    Not(Box<MsoNw>),
    /// Conjunction.
    And(Box<MsoNw>, Box<MsoNw>),
    /// Disjunction.
    Or(Box<MsoNw>, Box<MsoNw>),
    /// First-order existential quantification.
    ExistsPos(PosVar, Box<MsoNw>),
    /// First-order universal quantification.
    ForallPos(PosVar, Box<MsoNw>),
    /// Second-order existential quantification.
    ExistsSet(SetVar, Box<MsoNw>),
    /// Second-order universal quantification.
    ForallSet(SetVar, Box<MsoNw>),
}

impl MsoNw {
    /// The constant false.
    pub fn false_() -> MsoNw {
        MsoNw::True.not()
    }

    /// Letter predicate `a(x)`.
    pub fn letter(a: LetterId, x: PosVar) -> MsoNw {
        MsoNw::Letter(a, x)
    }

    /// Any of the given letters at `x` (e.g. the paper's `Σint(x)` macro).
    pub fn letter_among<I: IntoIterator<Item = LetterId>>(letters: I, x: PosVar) -> MsoNw {
        MsoNw::disj(letters.into_iter().map(|a| MsoNw::Letter(a, x)))
    }

    /// `x < y`.
    pub fn less(x: PosVar, y: PosVar) -> MsoNw {
        MsoNw::Less(x, y)
    }

    /// `x ≤ y`.
    pub fn leq(x: PosVar, y: PosVar) -> MsoNw {
        MsoNw::Less(x, y).or(MsoNw::PosEq(x, y))
    }

    /// `x ⊿ y`.
    pub fn matched(x: PosVar, y: PosVar) -> MsoNw {
        MsoNw::Matched(x, y)
    }

    /// `x ∈ X`.
    pub fn is_in(x: PosVar, set: SetVar) -> MsoNw {
        MsoNw::In(x, set)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> MsoNw {
        MsoNw::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: MsoNw) -> MsoNw {
        MsoNw::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: MsoNw) -> MsoNw {
        MsoNw::Or(Box::new(self), Box::new(other))
    }

    /// Implication.
    pub fn implies(self, other: MsoNw) -> MsoNw {
        self.not().or(other)
    }

    /// Bi-implication.
    pub fn iff(self, other: MsoNw) -> MsoNw {
        self.clone().implies(other.clone()).and(other.implies(self))
    }

    /// Conjunction of many formulae (`true` if empty).
    pub fn conj<I: IntoIterator<Item = MsoNw>>(items: I) -> MsoNw {
        let mut iter = items.into_iter();
        match iter.next() {
            None => MsoNw::True,
            Some(first) => iter.fold(first, MsoNw::and),
        }
    }

    /// Disjunction of many formulae (`false` if empty).
    pub fn disj<I: IntoIterator<Item = MsoNw>>(items: I) -> MsoNw {
        let mut iter = items.into_iter();
        match iter.next() {
            None => MsoNw::false_(),
            Some(first) => iter.fold(first, MsoNw::or),
        }
    }

    /// `∃x.ϕ`.
    pub fn exists_pos(x: PosVar, body: MsoNw) -> MsoNw {
        MsoNw::ExistsPos(x, Box::new(body))
    }

    /// `∀x.ϕ`.
    pub fn forall_pos(x: PosVar, body: MsoNw) -> MsoNw {
        MsoNw::ForallPos(x, Box::new(body))
    }

    /// `∃X.ϕ`.
    pub fn exists_set(set: SetVar, body: MsoNw) -> MsoNw {
        MsoNw::ExistsSet(set, Box::new(body))
    }

    /// `∀X.ϕ`.
    pub fn forall_set(set: SetVar, body: MsoNw) -> MsoNw {
        MsoNw::ForallSet(set, Box::new(body))
    }

    /// Existential quantification over many position variables.
    pub fn exists_pos_many<I: IntoIterator<Item = PosVar>>(vars: I, body: MsoNw) -> MsoNw {
        let vars: Vec<PosVar> = vars.into_iter().collect();
        vars.into_iter()
            .rev()
            .fold(body, |acc, v| MsoNw::exists_pos(v, acc))
    }

    /// Universal quantification over many position variables.
    pub fn forall_pos_many<I: IntoIterator<Item = PosVar>>(vars: I, body: MsoNw) -> MsoNw {
        let vars: Vec<PosVar> = vars.into_iter().collect();
        vars.into_iter()
            .rev()
            .fold(body, |acc, v| MsoNw::forall_pos(v, acc))
    }

    /// `succ(x, y)`: `y` is the successor position of `x` (macro used in Example 4.1).
    pub fn succ(x: PosVar, y: PosVar, scratch: PosVar) -> MsoNw {
        // x < y ∧ ¬∃z. x < z < y
        MsoNw::Less(x, y).and(
            MsoNw::exists_pos(
                scratch,
                MsoNw::Less(x, scratch).and(MsoNw::Less(scratch, y)),
            )
            .not(),
        )
    }

    /// `first(x)`: `x` is the first position.
    pub fn first(x: PosVar, scratch: PosVar) -> MsoNw {
        MsoNw::exists_pos(scratch, MsoNw::Less(scratch, x)).not()
    }

    /// `last(x)`: `x` is the last position.
    pub fn last(x: PosVar, scratch: PosVar) -> MsoNw {
        MsoNw::exists_pos(scratch, MsoNw::Less(x, scratch)).not()
    }

    /// The free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<MsoVar> {
        let mut free = BTreeSet::new();
        self.collect_free(&mut BTreeSet::new(), &mut free);
        free
    }

    fn collect_free(&self, bound: &mut BTreeSet<MsoVar>, free: &mut BTreeSet<MsoVar>) {
        let add = |v: MsoVar, bound: &BTreeSet<MsoVar>, free: &mut BTreeSet<MsoVar>| {
            if !bound.contains(&v) {
                free.insert(v);
            }
        };
        match self {
            MsoNw::True => {}
            MsoNw::Letter(_, x) => add(MsoVar::Pos(*x), bound, free),
            MsoNw::Less(x, y) | MsoNw::PosEq(x, y) | MsoNw::Matched(x, y) => {
                add(MsoVar::Pos(*x), bound, free);
                add(MsoVar::Pos(*y), bound, free);
            }
            MsoNw::In(x, set) => {
                add(MsoVar::Pos(*x), bound, free);
                add(MsoVar::Set(*set), bound, free);
            }
            MsoNw::Not(p) => p.collect_free(bound, free),
            MsoNw::And(a, b) | MsoNw::Or(a, b) => {
                a.collect_free(bound, free);
                b.collect_free(bound, free);
            }
            MsoNw::ExistsPos(x, p) | MsoNw::ForallPos(x, p) => {
                let v = MsoVar::Pos(*x);
                let newly = bound.insert(v);
                p.collect_free(bound, free);
                if newly {
                    bound.remove(&v);
                }
            }
            MsoNw::ExistsSet(x, p) | MsoNw::ForallSet(x, p) => {
                let v = MsoVar::Set(*x);
                let newly = bound.insert(v);
                p.collect_free(bound, free);
                if newly {
                    bound.remove(&v);
                }
            }
        }
    }

    /// Whether the formula is a sentence.
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            MsoNw::True
            | MsoNw::Letter(..)
            | MsoNw::Less(..)
            | MsoNw::PosEq(..)
            | MsoNw::Matched(..)
            | MsoNw::In(..) => 1,
            MsoNw::Not(p)
            | MsoNw::ExistsPos(_, p)
            | MsoNw::ForallPos(_, p)
            | MsoNw::ExistsSet(_, p)
            | MsoNw::ForallSet(_, p) => 1 + p.size(),
            MsoNw::And(a, b) | MsoNw::Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Quantifier nesting depth (first- and second-order).
    pub fn quantifier_depth(&self) -> usize {
        match self {
            MsoNw::True
            | MsoNw::Letter(..)
            | MsoNw::Less(..)
            | MsoNw::PosEq(..)
            | MsoNw::Matched(..)
            | MsoNw::In(..) => 0,
            MsoNw::Not(p) => p.quantifier_depth(),
            MsoNw::And(a, b) | MsoNw::Or(a, b) => a.quantifier_depth().max(b.quantifier_depth()),
            MsoNw::ExistsPos(_, p)
            | MsoNw::ForallPos(_, p)
            | MsoNw::ExistsSet(_, p)
            | MsoNw::ForallSet(_, p) => 1 + p.quantifier_depth(),
        }
    }
}

impl fmt::Debug for MsoNw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsoNw::True => write!(f, "true"),
            MsoNw::Letter(a, x) => write!(f, "ℓ{}({x:?})", a.0),
            MsoNw::Less(x, y) => write!(f, "{x:?} < {y:?}"),
            MsoNw::PosEq(x, y) => write!(f, "{x:?} = {y:?}"),
            MsoNw::Matched(x, y) => write!(f, "{x:?} ⊿ {y:?}"),
            MsoNw::In(x, s) => write!(f, "{x:?} ∈ {s:?}"),
            MsoNw::Not(p) => write!(f, "¬({p:?})"),
            MsoNw::And(a, b) => write!(f, "({a:?} ∧ {b:?})"),
            MsoNw::Or(a, b) => write!(f, "({a:?} ∨ {b:?})"),
            MsoNw::ExistsPos(x, p) => write!(f, "∃{x:?}.({p:?})"),
            MsoNw::ForallPos(x, p) => write!(f, "∀{x:?}.({p:?})"),
            MsoNw::ExistsSet(x, p) => write!(f, "∃{x:?}.({p:?})"),
            MsoNw::ForallSet(x, p) => write!(f, "∀{x:?}.({p:?})"),
        }
    }
}

/// A small factory handing out distinct position/set variables — convenient when building the
/// large generated formulae of the checker.
#[derive(Default)]
pub struct VarFactory {
    next_pos: u32,
    next_set: u32,
}

impl VarFactory {
    /// Create a factory starting at 0.
    pub fn new() -> VarFactory {
        VarFactory::default()
    }

    /// A fresh position variable.
    pub fn pos(&mut self) -> PosVar {
        let v = PosVar(self.next_pos);
        self.next_pos += 1;
        v
    }

    /// A fresh set variable.
    pub fn set(&mut self) -> SetVar {
        let v = SetVar(self.next_set);
        self.next_set += 1;
        v
    }

    /// Several fresh position variables.
    pub fn pos_many(&mut self, n: usize) -> Vec<PosVar> {
        (0..n).map(|_| self.pos()).collect()
    }

    /// Several fresh set variables.
    pub fn set_many(&mut self, n: usize) -> Vec<SetVar> {
        (0..n).map(|_| self.set()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> PosVar {
        PosVar(i)
    }
    fn set(i: u32) -> SetVar {
        SetVar(i)
    }

    #[test]
    fn free_vars_and_sentences() {
        let phi = MsoNw::exists_pos(
            x(0),
            MsoNw::Less(x(0), x(1)).and(MsoNw::is_in(x(0), set(0))),
        );
        assert_eq!(
            phi.free_vars(),
            BTreeSet::from([MsoVar::Pos(x(1)), MsoVar::Set(set(0))])
        );
        assert!(!phi.is_sentence());

        let sentence = MsoNw::exists_set(
            set(0),
            MsoNw::forall_pos(x(1), MsoNw::exists_pos(x(0), phi.clone())),
        );
        assert!(sentence.is_sentence());
        assert_eq!(sentence.quantifier_depth(), 4);
    }

    #[test]
    fn size_counts_nodes() {
        // And + Less + Not + True = 4 nodes
        let phi = MsoNw::Less(x(0), x(1)).and(MsoNw::True.not());
        assert_eq!(phi.size(), 4);
    }

    #[test]
    fn conj_disj_empty() {
        assert_eq!(MsoNw::conj(vec![]), MsoNw::True);
        assert_eq!(MsoNw::disj(vec![]), MsoNw::false_());
    }

    #[test]
    fn var_factory_produces_distinct_variables() {
        let mut f = VarFactory::new();
        let a = f.pos();
        let b = f.pos();
        let s1 = f.set();
        let s2 = f.set();
        assert_ne!(a, b);
        assert_ne!(s1, s2);
        assert_eq!(f.pos_many(3).len(), 3);
    }

    #[test]
    fn debug_rendering() {
        let phi = MsoNw::Matched(x(0), x(1)).implies(MsoNw::Letter(LetterId(2), x(1)));
        let text = format!("{phi:?}");
        assert!(text.contains('⊿'));
        assert!(text.contains("ℓ2"));
    }
}
