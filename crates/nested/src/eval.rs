//! Direct (reference) evaluation of MSO_NW formulae on concrete nested words.
//!
//! This is the textbook semantics: first-order variables range over positions, second-order
//! variables over sets of positions. Second-order quantification enumerates all `2^n`
//! subsets, so this evaluator is only meant for small words — it serves as the *oracle*
//! against which the VPA compilation ([`crate::compile()`]) is cross-validated in tests.

use crate::mso::{MsoNw, PosVar, SetVar};
use crate::word::NestedWord;
use std::collections::{BTreeMap, BTreeSet};

/// An assignment of the free variables of a formula.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignment {
    /// Values of first-order variables (positions).
    pub pos: BTreeMap<PosVar, usize>,
    /// Values of second-order variables (sets of positions).
    pub sets: BTreeMap<SetVar, BTreeSet<usize>>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Bind a position variable.
    pub fn with_pos(mut self, var: PosVar, value: usize) -> Assignment {
        self.pos.insert(var, value);
        self
    }

    /// Bind a set variable.
    pub fn with_set(mut self, var: SetVar, value: BTreeSet<usize>) -> Assignment {
        self.sets.insert(var, value);
        self
    }
}

/// Evaluate `word, assignment ⊨ formula`.
///
/// # Panics
/// Panics if a free variable of the formula is not bound by the assignment.
pub fn eval(word: &NestedWord, assignment: &Assignment, formula: &MsoNw) -> bool {
    match formula {
        MsoNw::True => true,
        MsoNw::Letter(a, x) => {
            let i = pos(assignment, *x);
            i < word.len() && word.letter(i) == *a
        }
        MsoNw::Less(x, y) => pos(assignment, *x) < pos(assignment, *y),
        MsoNw::PosEq(x, y) => pos(assignment, *x) == pos(assignment, *y),
        MsoNw::Matched(x, y) => word.nesting(pos(assignment, *x), pos(assignment, *y)),
        MsoNw::In(x, set) => {
            let i = pos(assignment, *x);
            assignment
                .sets
                .get(set)
                .unwrap_or_else(|| panic!("unbound set variable {set:?}"))
                .contains(&i)
        }
        MsoNw::Not(p) => !eval(word, assignment, p),
        MsoNw::And(a, b) => eval(word, assignment, a) && eval(word, assignment, b),
        MsoNw::Or(a, b) => eval(word, assignment, a) || eval(word, assignment, b),
        MsoNw::ExistsPos(x, p) => (0..word.len()).any(|i| {
            let mut a = assignment.clone();
            a.pos.insert(*x, i);
            eval(word, &a, p)
        }),
        MsoNw::ForallPos(x, p) => (0..word.len()).all(|i| {
            let mut a = assignment.clone();
            a.pos.insert(*x, i);
            eval(word, &a, p)
        }),
        MsoNw::ExistsSet(x, p) => subsets(word.len()).any(|s| {
            let mut a = assignment.clone();
            a.sets.insert(*x, s);
            eval(word, &a, p)
        }),
        MsoNw::ForallSet(x, p) => subsets(word.len()).all(|s| {
            let mut a = assignment.clone();
            a.sets.insert(*x, s);
            eval(word, &a, p)
        }),
    }
}

/// Evaluate a sentence.
pub fn eval_sentence(word: &NestedWord, formula: &MsoNw) -> bool {
    eval(word, &Assignment::new(), formula)
}

fn pos(assignment: &Assignment, var: PosVar) -> usize {
    *assignment
        .pos
        .get(&var)
        .unwrap_or_else(|| panic!("unbound position variable {var:?}"))
}

fn subsets(n: usize) -> impl Iterator<Item = BTreeSet<usize>> {
    assert!(
        n <= 20,
        "second-order enumeration over {n} positions is infeasible; use the VPA pipeline"
    );
    (0u64..(1u64 << n)).map(move |mask| (0..n).filter(|i| mask & (1 << i) != 0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::mso::VarFactory;

    fn setup() -> (std::sync::Arc<Alphabet>, NestedWord) {
        let mut a = Alphabet::new();
        a.call("<a");
        a.call("<b");
        a.ret("a>");
        a.ret("b>");
        a.internal(".");
        let alphabet = a.into_arc();
        let word = NestedWord::from_names(
            alphabet.clone(),
            &[
                "<a", "<a", "a>", "<b", "<a", "b>", ".", "b>", "<b", "<a", "a>",
            ],
        );
        (alphabet, word)
    }

    #[test]
    fn letter_and_order_atoms() {
        let (alphabet, word) = setup();
        let mut f = VarFactory::new();
        let x = f.pos();
        let call_a = alphabet.lookup("<a").unwrap();

        let a = Assignment::new().with_pos(x, 0);
        assert!(eval(&word, &a, &MsoNw::Letter(call_a, x)));
        let a = Assignment::new().with_pos(x, 3);
        assert!(!eval(&word, &a, &MsoNw::Letter(call_a, x)));

        let y = f.pos();
        let a = Assignment::new().with_pos(x, 2).with_pos(y, 5);
        assert!(eval(&word, &a, &MsoNw::Less(x, y)));
        assert!(!eval(&word, &a, &MsoNw::Less(y, x)));
        assert!(!eval(&word, &a, &MsoNw::PosEq(x, y)));
    }

    #[test]
    fn matching_atom_follows_the_nesting_relation() {
        let (_, word) = setup();
        let x = PosVar(0);
        let y = PosVar(1);
        let phi = MsoNw::Matched(x, y);
        let yes = Assignment::new().with_pos(x, 3).with_pos(y, 7);
        assert!(eval(&word, &yes, &phi));
        let no = Assignment::new().with_pos(x, 0).with_pos(y, 2);
        assert!(!eval(&word, &no, &phi));
    }

    #[test]
    fn example_6_3_formula() {
        // ϕ_{a,b}(x,y): the first ↓a after x and the first ↑b after y are ⊿-related.
        // On Example 6.2, all pairs (i,j) with 2 ≤ i ≤ 4 and 1 ≤ j ≤ 5 (1-indexed) satisfy it.
        let (alphabet, word) = setup();
        let call_a = alphabet.lookup("<a").unwrap();
        let ret_b = alphabet.lookup("b>").unwrap();

        let x = PosVar(0);
        let y = PosVar(1);
        let x1 = PosVar(2);
        let y1 = PosVar(3);
        let z = PosVar(4);

        let phi = MsoNw::exists_pos(
            x1,
            MsoNw::exists_pos(
                y1,
                MsoNw::conj([
                    MsoNw::Letter(call_a, x1),
                    MsoNw::Letter(ret_b, y1),
                    MsoNw::Less(x, x1),
                    MsoNw::Less(y, y1),
                    MsoNw::Matched(x1, y1),
                    MsoNw::forall_pos(
                        z,
                        MsoNw::conj([
                            MsoNw::Less(x, z)
                                .and(MsoNw::Less(z, x1))
                                .implies(MsoNw::Letter(call_a, z).not()),
                            MsoNw::Less(y, z)
                                .and(MsoNw::Less(z, y1))
                                .implies(MsoNw::Letter(ret_b, z).not()),
                        ]),
                    ),
                ]),
            ),
        );

        // paper's positions are 1-indexed; ours are 0-indexed
        for i in 1..=3usize {
            for j in 0..=4usize {
                let a = Assignment::new().with_pos(x, i).with_pos(y, j);
                assert!(eval(&word, &a, &phi), "expected ϕ to hold at ({i},{j})");
            }
        }
        // a pair outside the range fails: x = 4 (0-indexed) means the first ↓a after x is
        // position 9, which is matched to position 10 — an ↑a, not ↑b.
        let a = Assignment::new().with_pos(x, 4).with_pos(y, 0);
        assert!(!eval(&word, &a, &phi));
    }

    #[test]
    fn second_order_quantification() {
        let (_, word) = setup();
        let mut f = VarFactory::new();
        let set = f.set();
        let x = f.pos();
        // there is a set containing every call position and no return position
        let call_or_not = MsoNw::forall_pos(
            x,
            MsoNw::is_in(x, set).iff(MsoNw::letter_among(
                word.alphabet()
                    .letters_of_kind(crate::alphabet::LetterKind::Call)
                    .collect::<Vec<_>>(),
                x,
            )),
        );
        let phi = MsoNw::exists_set(set, call_or_not);
        // use a short prefix to keep the subset enumeration small
        let prefix = word.prefix(6);
        assert!(eval_sentence(&prefix, &phi));
    }

    #[test]
    fn succ_first_last_macros() {
        let (_, word) = setup();
        let x = PosVar(0);
        let y = PosVar(1);
        let z = PosVar(2);
        let a = Assignment::new().with_pos(x, 3).with_pos(y, 4);
        assert!(eval(&word, &a, &MsoNw::succ(x, y, z)));
        let a = Assignment::new().with_pos(x, 3).with_pos(y, 5);
        assert!(!eval(&word, &a, &MsoNw::succ(x, y, z)));

        let a = Assignment::new().with_pos(x, 0);
        assert!(eval(&word, &a, &MsoNw::first(x, z)));
        let a = Assignment::new().with_pos(x, word.len() - 1);
        assert!(eval(&word, &a, &MsoNw::last(x, z)));
    }

    #[test]
    #[should_panic(expected = "unbound position variable")]
    fn unbound_variable_panics() {
        let (_, word) = setup();
        eval(
            &word,
            &Assignment::new(),
            &MsoNw::Less(PosVar(0), PosVar(1)),
        );
    }
}
