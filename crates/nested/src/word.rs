//! Finite nested words (Section 6.2 of the paper).

use crate::alphabet::{Alphabet, LetterId, LetterKind};
use std::fmt;
use std::sync::Arc;

/// A finite nested word: a word over a visible alphabet together with its (uniquely
/// determined) nesting relation `⊿`.
///
/// Pending (unmatched) calls and returns are allowed, as in Alur–Madhusudan and as required
/// by the paper's encoding (unmatched pushes represent the values still alive in the current
/// active domain, cf. Remark 6.1).
#[derive(Clone, PartialEq, Eq)]
pub struct NestedWord {
    alphabet: Arc<Alphabet>,
    letters: Vec<LetterId>,
    /// `matching[i] = Some(j)` iff positions `i` and `j` are related by `⊿` (in either
    /// direction); `None` for internal letters and pending calls/returns.
    matching: Vec<Option<usize>>,
}

impl NestedWord {
    /// Build a nested word from a letter sequence; the nesting relation is computed by stack
    /// matching (it is unique, cf. Section 6.2).
    pub fn new(alphabet: Arc<Alphabet>, letters: Vec<LetterId>) -> NestedWord {
        let mut matching = vec![None; letters.len()];
        let mut stack: Vec<usize> = Vec::new();
        for (i, &letter) in letters.iter().enumerate() {
            match alphabet.kind(letter) {
                LetterKind::Call => stack.push(i),
                LetterKind::Return => {
                    if let Some(j) = stack.pop() {
                        matching[i] = Some(j);
                        matching[j] = Some(i);
                    }
                }
                LetterKind::Internal => {}
            }
        }
        NestedWord {
            alphabet,
            letters,
            matching,
        }
    }

    /// Build from letter names (convenience for tests and examples).
    ///
    /// # Panics
    /// Panics if a name is unknown.
    pub fn from_names(alphabet: Arc<Alphabet>, names: &[&str]) -> NestedWord {
        let letters = names
            .iter()
            .map(|n| {
                alphabet
                    .lookup(n)
                    .unwrap_or_else(|| panic!("unknown letter {n}"))
            })
            .collect();
        NestedWord::new(alphabet, letters)
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// Whether the word is empty.
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// The letter at `position`.
    pub fn letter(&self, position: usize) -> LetterId {
        self.letters[position]
    }

    /// The letters.
    pub fn letters(&self) -> &[LetterId] {
        &self.letters
    }

    /// The kind of the letter at `position`.
    pub fn kind(&self, position: usize) -> LetterKind {
        self.alphabet.kind(self.letters[position])
    }

    /// Whether `i ⊿ j` (with `i` the call and `j` the return).
    pub fn nesting(&self, i: usize, j: usize) -> bool {
        i < j && self.matching[i] == Some(j) && self.kind(i) == LetterKind::Call
    }

    /// The matching partner of `position`, if any.
    pub fn matching(&self, position: usize) -> Option<usize> {
        self.matching[position]
    }

    /// All nesting edges `(call, return)`.
    pub fn nesting_edges(&self) -> Vec<(usize, usize)> {
        (0..self.len())
            .filter(|&i| self.kind(i) == LetterKind::Call)
            .filter_map(|i| self.matching[i].map(|j| (i, j)))
            .collect()
    }

    /// Pending (unmatched) call positions, in order.
    pub fn pending_calls(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.kind(i) == LetterKind::Call && self.matching[i].is_none())
            .collect()
    }

    /// Pending (unmatched) return positions, in order.
    pub fn pending_returns(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.kind(i) == LetterKind::Return && self.matching[i].is_none())
            .collect()
    }

    /// Pending calls strictly before `position` (i.e. unmatched *within the prefix up to but
    /// excluding `position`*, even if matched later). This is exactly the quantity Remark 6.1
    /// relates to `|adom(I_j)|`.
    pub fn pending_calls_in_prefix(&self, position: usize) -> Vec<usize> {
        let mut stack = Vec::new();
        for i in 0..position.min(self.len()) {
            match self.kind(i) {
                LetterKind::Call => stack.push(i),
                LetterKind::Return => {
                    stack.pop();
                }
                LetterKind::Internal => {}
            }
        }
        stack
    }

    /// The prefix of the first `len` positions (nesting recomputed).
    pub fn prefix(&self, len: usize) -> NestedWord {
        NestedWord::new(
            self.alphabet.clone(),
            self.letters[..len.min(self.len())].to_vec(),
        )
    }

    /// Check the well-formedness conditions of the nesting relation from Section 6.2 — these
    /// hold by construction, so this is used as a sanity oracle in property tests.
    pub fn check_nesting_laws(&self) -> bool {
        let edges = self.nesting_edges();
        // order preservation and vertex-disjointness
        for &(i, j) in &edges {
            if i >= j {
                return false;
            }
        }
        for &(i, j) in &edges {
            for &(k, l) in &edges {
                if (i, j) != (k, l) {
                    let set = std::collections::BTreeSet::from([i, j, k, l]);
                    if set.len() != 4 {
                        return false;
                    }
                    // no crossing: not i < k < j < l
                    if i < k && k < j && j < l {
                        return false;
                    }
                }
            }
        }
        // a call strictly inside an edge must be matched (inside it), same for returns
        for &(i, j) in &edges {
            for p in i + 1..j {
                match self.kind(p) {
                    LetterKind::Call | LetterKind::Return => match self.matching[p] {
                        Some(q) => {
                            if q <= i || q >= j {
                                return false;
                            }
                        }
                        None => return false,
                    },
                    LetterKind::Internal => {}
                }
            }
        }
        // all pending returns precede all pending calls
        let pending_ret = self.pending_returns();
        let pending_call = self.pending_calls();
        if let (Some(&last_ret), Some(&first_call)) = (pending_ret.last(), pending_call.first()) {
            if last_ret > first_call {
                return false;
            }
        }
        true
    }
}

impl fmt::Debug for NestedWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self
            .letters
            .iter()
            .map(|&l| self.alphabet.name(l))
            .collect();
        write!(f, "{}", names.join(" "))
    }
}

impl fmt::Display for NestedWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_alphabet() -> Arc<Alphabet> {
        let mut a = Alphabet::new();
        a.call("<a");
        a.call("<b");
        a.ret("a>");
        a.ret("b>");
        a.internal(".");
        a.into_arc()
    }

    /// The nested word of Example 6.2:
    /// ↓a ↓a ↑a ↓b ↓a ↑b • ↑b ↓b ↓a ↑a  (positions 1..11 in the paper, 0..10 here).
    fn example_6_2() -> NestedWord {
        NestedWord::from_names(
            example_alphabet(),
            &[
                "<a", "<a", "a>", "<b", "<a", "b>", ".", "b>", "<b", "<a", "a>",
            ],
        )
    }

    #[test]
    fn example_6_2_nesting_edges() {
        let w = example_6_2();
        assert_eq!(w.len(), 11);
        // matching computed by the stack discipline:
        // pos1(↓a) ⊿ pos2(↑a); pos4(↓a) ⊿ pos5(↑b); pos3(↓b) ⊿ pos7(↑b); pos9(↓a) ⊿ pos10(↑a)
        assert!(w.nesting(1, 2));
        assert!(w.nesting(4, 5));
        assert!(w.nesting(3, 7));
        assert!(w.nesting(9, 10));
        assert_eq!(w.nesting_edges().len(), 4);
        // position 0 is a pending call, position 8 is a pending call
        assert_eq!(w.pending_calls(), vec![0, 8]);
        assert!(w.pending_returns().is_empty());
        assert!(!w.nesting(0, 2));
        assert!(w.check_nesting_laws());
    }

    #[test]
    fn pending_returns_are_supported() {
        let a = example_alphabet();
        // a>  a>  <a : two pending returns then a pending call
        let w = NestedWord::from_names(a, &["a>", "a>", "<a"]);
        assert_eq!(w.pending_returns(), vec![0, 1]);
        assert_eq!(w.pending_calls(), vec![2]);
        assert!(w.check_nesting_laws());
    }

    #[test]
    fn pending_calls_in_prefix_matches_remark_6_1() {
        let w = example_6_2();
        // before position 3, calls at 0,1 with 1 matched at 2 → only 0 pending
        assert_eq!(w.pending_calls_in_prefix(3), vec![0]);
        // before position 8: 0 pending (3,4 matched at 7,5)
        assert_eq!(w.pending_calls_in_prefix(8), vec![0]);
        // before position 11 (whole word): 0 and 8 pending
        assert_eq!(w.pending_calls_in_prefix(11), vec![0, 8]);
    }

    #[test]
    fn prefixes_recompute_matching() {
        let w = example_6_2();
        let p = w.prefix(4);
        assert_eq!(p.len(), 4);
        // in the prefix, position 3 (<b) is now pending
        assert_eq!(p.pending_calls(), vec![0, 3]);
        assert!(p.check_nesting_laws());
    }

    #[test]
    fn internal_letters_have_no_matching() {
        let w = example_6_2();
        assert_eq!(w.kind(6), LetterKind::Internal);
        assert_eq!(w.matching(6), None);
    }

    #[test]
    fn empty_word() {
        let w = NestedWord::new(example_alphabet(), vec![]);
        assert!(w.is_empty());
        assert!(w.check_nesting_laws());
        assert!(w.nesting_edges().is_empty());
    }
}
