//! # rdms-db — relational substrate for database-manipulating systems
//!
//! This crate implements the database layer of the paper *"Recency-Bounded Verification of
//! Dynamic Database-Driven Systems"* (PODS 2016), namely everything defined in its Section 2
//! ("Preliminaries") and Appendix A:
//!
//! * a countably infinite **data domain** of standard names ([`DataValue`]),
//! * **relational schemas** ([`Schema`]) mapping relation names to arities, including nullary
//!   relations (propositions),
//! * **database instances** ([`Instance`]) with the `+` / `−` instance algebra and the
//!   **active domain** operation,
//! * **FOL(R)** queries with equality ([`Query`]), their active-domain semantics
//!   ([`eval`]/[`mod@answers`]) and a small concrete syntax ([`parser`]),
//! * **substitutions** ([`Substitution`]) and **variable patterns** ([`Pattern`]) — database
//!   instances over variables, used as the `Del` / `Add` components of DMS actions
//!   (`Substitute(I, σ)` in the paper).
//!
//! The crate is deliberately self-contained: the DMS model (`rdms-core`), the logic
//! (`rdms-logic`) and the checker (`rdms-checker`) are all built on top of it.
//!
//! ## Example
//!
//! ```
//! use rdms_db::{Schema, Instance, DataValue, Query, RelName, Var, answers};
//!
//! let mut schema = Schema::new();
//! let r = schema.add_relation("R", 1);
//! let q = schema.add_relation("Q", 1);
//!
//! let mut inst = Instance::new();
//! inst.insert(r, vec![DataValue(1)]);
//! inst.insert(r, vec![DataValue(2)]);
//! inst.insert(q, vec![DataValue(2)]);
//!
//! // exists u. R(u) & !Q(u)
//! let u = Var::new("u");
//! let query = Query::exists(u, Query::atom(r, [u]).and(Query::atom(q, [u]).not()));
//! assert!(rdms_db::eval::holds(&inst, &Default::default(), &query).unwrap());
//!
//! // the Active(u) query of Example 2.1 characterises the active domain
//! let active = rdms_db::query::active_query(&schema, u);
//! let ans = answers(&inst, &active).unwrap();
//! assert_eq!(ans.len(), 2);
//! ```

pub mod answers;
pub mod error;
pub mod eval;
pub mod heap;
pub mod instance;
pub mod metrics;
pub mod parser;
pub mod pattern;
pub mod query;
pub(crate) mod rows;
pub mod schema;
pub mod substitution;
pub mod symbol;
pub mod term;
pub mod value;

pub use answers::{answers, answers_with_constants, answers_within};
pub use error::DbError;
pub use heap::HeapSize;
pub use instance::Instance;
pub use pattern::Pattern;
pub use query::Query;
pub use schema::{RelName, Schema};
pub use substitution::Substitution;
pub use symbol::Sym;
pub use term::{Term, Var};
pub use value::DataValue;
