//! Data values: elements of the countably infinite domain `∆` of standard names.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A data value, i.e. an element of the countably infinite data domain `∆`.
///
/// The paper treats `∆` as a set of uninterpreted standard names `{e₁, e₂, …}`; the only
/// operation available on values is equality. We realise `∆` as the natural numbers. The
/// canonical-run machinery of `rdms-core` relies on the total order `e_i < e_j ⇔ i < j`,
/// exactly as Section 6.1 of the paper does when defining canonical runs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DataValue(pub u64);

impl DataValue {
    /// The `i`-th standard name `e_i` (1-based, mirroring the paper's `e₁, e₂, …`).
    pub fn e(i: u64) -> DataValue {
        DataValue(i)
    }

    /// Raw index of this value.
    pub fn index(&self) -> u64 {
        self.0
    }
}

impl fmt::Debug for DataValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for DataValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u64> for DataValue {
    fn from(v: u64) -> Self {
        DataValue(v)
    }
}

/// A tuple of data values — the payload of a fact `R(e₁, …, e_a)`.
pub type Tuple = Vec<DataValue>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_index() {
        assert!(DataValue::e(1) < DataValue::e(2));
        assert_eq!(DataValue::e(7), DataValue(7));
        assert_eq!(DataValue::e(7).index(), 7);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(format!("{}", DataValue::e(3)), "e3");
        assert_eq!(format!("{:?}", DataValue::e(3)), "e3");
    }

    #[test]
    fn from_u64() {
        let v: DataValue = 9u64.into();
        assert_eq!(v, DataValue::e(9));
    }
}
