//! A small concrete syntax for FOL(R) queries.
//!
//! Grammar (precedence from weakest to strongest binding):
//!
//! ```text
//! query   := or ( "=>" or )*                    -- implication, right-associative
//! or      := and ( "|" and )*
//! and     := unary ( "&" unary )*
//! unary   := "!" unary
//!          | ("exists" | "forall") var ("," var)* "." unary
//!          | primary
//! primary := "true" | "false" | "(" query ")"
//!          | IDENT "(" term ("," term)* ")"     -- relational atom
//!          | IDENT "(" ")"  | IDENT             -- proposition
//!          | term "=" term                      -- equality
//! term    := IDENT                              -- variable
//!          | "$" NUMBER                         -- constant data value  (e.g. $3 is e₃)
//! ```
//!
//! Examples: `exists u. R(u) & !Q(u)`, `p & forall u. C1(u) => u = $1`.

use crate::error::DbError;
use crate::query::Query;
use crate::schema::RelName;
use crate::term::{Term, Var};
use crate::value::DataValue;

/// Parse a query from its concrete syntax.
pub fn parse_query(input: &str) -> Result<Query, DbError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let q = parser.parse_implies()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.error("unexpected trailing input"));
    }
    Ok(q)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Const(u64),
    LParen,
    RParen,
    Comma,
    Dot,
    Bang,
    Amp,
    Pipe,
    Eq,
    Implies,
    True,
    False,
    Exists,
    Forall,
}

struct SpannedTok {
    tok: Tok,
    offset: usize,
}

fn tokenize(input: &str) -> Result<Vec<SpannedTok>, DbError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(SpannedTok {
                    tok: Tok::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(SpannedTok {
                    tok: Tok::RParen,
                    offset: i,
                });
                i += 1;
            }
            ',' => {
                tokens.push(SpannedTok {
                    tok: Tok::Comma,
                    offset: i,
                });
                i += 1;
            }
            '.' => {
                tokens.push(SpannedTok {
                    tok: Tok::Dot,
                    offset: i,
                });
                i += 1;
            }
            '!' => {
                tokens.push(SpannedTok {
                    tok: Tok::Bang,
                    offset: i,
                });
                i += 1;
            }
            '&' => {
                tokens.push(SpannedTok {
                    tok: Tok::Amp,
                    offset: i,
                });
                i += 1;
            }
            '|' => {
                tokens.push(SpannedTok {
                    tok: Tok::Pipe,
                    offset: i,
                });
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(SpannedTok {
                        tok: Tok::Implies,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedTok {
                        tok: Tok::Eq,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(DbError::Parse {
                        position: i,
                        message: "expected digits after '$'".into(),
                    });
                }
                let n: u64 = input[start..j].parse().map_err(|_| DbError::Parse {
                    position: i,
                    message: "constant out of range".into(),
                })?;
                tokens.push(SpannedTok {
                    tok: Tok::Const(n),
                    offset: i,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &input[start..j];
                let tok = match word {
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "exists" => Tok::Exists,
                    "forall" => Tok::Forall,
                    _ => Tok::Ident(word.to_owned()),
                };
                tokens.push(SpannedTok { tok, offset: start });
                i = j;
            }
            _ => {
                return Err(DbError::Parse {
                    position: i,
                    message: format!("unexpected character '{c}'"),
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: &str) -> DbError {
        DbError::Parse {
            position: self
                .tokens
                .get(self.pos.min(self.tokens.len().saturating_sub(1)))
                .map(|t| t.offset)
                .unwrap_or(0),
            message: message.to_owned(),
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), DbError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            _ => Err(self.error(&format!("expected {what}"))),
        }
    }

    fn parse_implies(&mut self) -> Result<Query, DbError> {
        let lhs = self.parse_or()?;
        if self.peek() == Some(&Tok::Implies) {
            self.next();
            let rhs = self.parse_implies()?;
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Query, DbError> {
        let mut q = self.parse_and()?;
        while self.peek() == Some(&Tok::Pipe) {
            self.next();
            let rhs = self.parse_and()?;
            q = q.or(rhs);
        }
        Ok(q)
    }

    fn parse_and(&mut self) -> Result<Query, DbError> {
        let mut q = self.parse_unary()?;
        while self.peek() == Some(&Tok::Amp) {
            self.next();
            let rhs = self.parse_unary()?;
            q = q.and(rhs);
        }
        Ok(q)
    }

    fn parse_unary(&mut self) -> Result<Query, DbError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.next();
                Ok(self.parse_unary()?.not())
            }
            Some(Tok::Exists) | Some(Tok::Forall) => {
                let is_exists = self.peek() == Some(&Tok::Exists);
                self.next();
                let mut vars = vec![self.parse_var()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.next();
                    vars.push(self.parse_var()?);
                }
                self.expect(Tok::Dot, "'.' after quantified variables")?;
                let body = self.parse_unary()?;
                Ok(if is_exists {
                    Query::exists_many(vars, body)
                } else {
                    Query::forall_many(vars, body)
                })
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_var(&mut self) -> Result<Var, DbError> {
        match self.next() {
            Some(Tok::Ident(name)) => Ok(Var::new(&name)),
            _ => Err(self.error("expected a variable name")),
        }
    }

    fn parse_primary(&mut self) -> Result<Query, DbError> {
        match self.next() {
            Some(Tok::True) => Ok(Query::True),
            Some(Tok::False) => Ok(Query::false_()),
            Some(Tok::LParen) => {
                let q = self.parse_implies()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(q)
            }
            Some(Tok::Const(n)) => {
                // a constant can only start an equality
                self.expect(Tok::Eq, "'=' after constant")?;
                let rhs = self.parse_term()?;
                Ok(Query::Eq(Term::Value(DataValue(n)), rhs))
            }
            Some(Tok::Ident(name)) => match self.peek() {
                Some(Tok::LParen) => {
                    self.next();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        args.push(self.parse_term()?);
                        while self.peek() == Some(&Tok::Comma) {
                            self.next();
                            args.push(self.parse_term()?);
                        }
                    }
                    self.expect(Tok::RParen, "')'")?;
                    Ok(Query::Atom(RelName::new(&name), args))
                }
                Some(Tok::Eq) => {
                    self.next();
                    let rhs = self.parse_term()?;
                    Ok(Query::Eq(Term::Var(Var::new(&name)), rhs))
                }
                _ => Ok(Query::prop(RelName::new(&name))),
            },
            _ => Err(self.error("expected a query")),
        }
    }

    fn parse_term(&mut self) -> Result<Term, DbError> {
        match self.next() {
            Some(Tok::Ident(name)) => Ok(Term::Var(Var::new(&name))),
            Some(Tok::Const(n)) => Ok(Term::Value(DataValue(n))),
            _ => Err(self.error("expected a term (variable or $constant)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;

    fn r(name: &str) -> RelName {
        RelName::new(name)
    }
    fn v(name: &str) -> Var {
        Var::new(name)
    }

    #[test]
    fn parse_atoms_and_propositions() {
        assert_eq!(parse_query("p").unwrap(), Query::prop(r("p")));
        assert_eq!(parse_query("p()").unwrap(), Query::prop(r("p")));
        assert_eq!(
            parse_query("R(u, w)").unwrap(),
            Query::atom(r("R"), [v("u"), v("w")])
        );
    }

    #[test]
    fn parse_connectives_with_precedence() {
        // & binds tighter than |, which binds tighter than =>
        let q = parse_query("p & q | s").unwrap();
        assert_eq!(
            q,
            Query::prop(r("p"))
                .and(Query::prop(r("q")))
                .or(Query::prop(r("s")))
        );

        let q = parse_query("p => q | s").unwrap();
        assert_eq!(
            q,
            Query::prop(r("p")).implies(Query::prop(r("q")).or(Query::prop(r("s"))))
        );
    }

    #[test]
    fn parse_quantifiers() {
        let q = parse_query("exists u. R(u) & !Q(u)").unwrap();
        // quantifier body is a unary, so `exists u.` scopes over `R(u)` only unless parenthesised
        assert_eq!(
            q,
            Query::exists(v("u"), Query::atom(r("R"), [v("u")]))
                .and(Query::atom(r("Q"), [v("u")]).not())
        );

        let q = parse_query("exists u. (R(u) & !Q(u))").unwrap();
        assert_eq!(
            q,
            Query::exists(
                v("u"),
                Query::atom(r("R"), [v("u")]).and(Query::atom(r("Q"), [v("u")]).not())
            )
        );

        let q = parse_query("forall u, w. (S(u, w))").unwrap();
        assert_eq!(
            q,
            Query::forall_many([v("u"), v("w")], Query::atom(r("S"), [v("u"), v("w")]))
        );
    }

    #[test]
    fn parse_equality_and_constants() {
        assert_eq!(parse_query("u = w").unwrap(), Query::eq(v("u"), v("w")));
        assert_eq!(
            parse_query("u = $3").unwrap(),
            Query::eq(v("u"), DataValue::e(3))
        );
        assert_eq!(
            parse_query("$2 = u").unwrap(),
            Query::eq(DataValue::e(2), v("u"))
        );
    }

    #[test]
    fn parse_true_false() {
        assert_eq!(parse_query("true").unwrap(), Query::True);
        assert_eq!(parse_query("false").unwrap(), Query::false_());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_query("R(u").is_err());
        assert!(parse_query("exists . R(u)").is_err());
        assert!(parse_query("R(u) extra junk +").is_err());
        assert!(parse_query("$x").is_err());
        assert!(parse_query("").is_err());
    }

    #[test]
    fn round_trip_display_parse() {
        let inputs = [
            "exists u. (R(u) & !(Q(u)))",
            "(p & q)",
            "forall u. (C1(u) => u = $1)",
        ];
        for input in inputs {
            let q1 = parse_query(input).unwrap();
            let q2 = parse_query(&q1.to_string()).unwrap();
            assert_eq!(q1, q2, "display/parse round trip for {input}");
        }
    }
}
