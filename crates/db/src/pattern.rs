//! Variable patterns: database instances over variables (and constants).
//!
//! The `Del` and `Add` components of a DMS action are "database instances over the
//! variables" (`DB-Inst-Set(R, ⃗u)` and `DB-Inst-Set(R, ⃗u ⊎ ⃗v)` in the paper). A [`Pattern`]
//! is exactly that: a finite set of facts whose arguments are [`Term`]s. Applying a
//! substitution (`Substitute(I, σ)` in the paper) yields a concrete [`Instance`].

use crate::error::DbError;
use crate::instance::Instance;
use crate::schema::{RelName, Schema};
use crate::substitution::Substitution;
use crate::term::{Term, Var};
use crate::value::DataValue;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A database instance over variables: a set of facts `R(t₁,…,t_a)` whose arguments are
/// variables or constant values.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pattern {
    facts: BTreeMap<RelName, BTreeSet<Vec<Term>>>,
}

impl Pattern {
    /// The empty pattern.
    pub fn new() -> Pattern {
        Pattern::default()
    }

    /// Insert a fact.
    pub fn insert<T: Into<Term>, I: IntoIterator<Item = T>>(&mut self, rel: RelName, args: I) {
        self.facts
            .entry(rel)
            .or_default()
            .insert(args.into_iter().map(Into::into).collect());
    }

    /// Build a pattern from facts.
    pub fn from_facts<I, T, A>(facts: I) -> Pattern
    where
        I: IntoIterator<Item = (RelName, A)>,
        A: IntoIterator<Item = T>,
        T: Into<Term>,
    {
        let mut p = Pattern::new();
        for (rel, args) in facts {
            p.insert(rel, args);
        }
        p
    }

    /// A pattern consisting of a single proposition.
    pub fn proposition(rel: RelName) -> Pattern {
        let mut p = Pattern::new();
        p.insert(rel, Vec::<Term>::new());
        p
    }

    /// Iterate over all facts.
    pub fn facts(&self) -> impl Iterator<Item = (RelName, &Vec<Term>)> + '_ {
        self.facts
            .iter()
            .flat_map(|(&rel, tuples)| tuples.iter().map(move |t| (rel, t)))
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.values().map(|s| s.len()).sum()
    }

    /// Whether the pattern contains no facts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a specific fact is present.
    pub fn contains(&self, rel: RelName, args: &[Term]) -> bool {
        self.facts
            .get(&rel)
            .map(|s| s.contains(args))
            .unwrap_or(false)
    }

    /// All variables occurring in the pattern — its "active domain" of variables
    /// (`⃗v ⊆ adom(Add)` in the paper is a constraint on this set).
    pub fn variables(&self) -> BTreeSet<Var> {
        self.facts()
            .flat_map(|(_, args)| args.iter().filter_map(Term::as_var))
            .collect()
    }

    /// All constant values occurring in the pattern.
    pub fn constants(&self) -> BTreeSet<DataValue> {
        self.facts()
            .flat_map(|(_, args)| args.iter().filter_map(Term::as_value))
            .collect()
    }

    /// All relation names used.
    pub fn relations(&self) -> BTreeSet<RelName> {
        self.facts.keys().copied().collect()
    }

    /// The paper's `Substitute(I, σ)`: replace every variable occurrence by its value.
    ///
    /// Every variable of the pattern must be bound by `σ`; otherwise an error is returned.
    pub fn substitute(&self, subst: &Substitution) -> Result<Instance, DbError> {
        let mut inst = Instance::new();
        self.substitute_into(subst, |rel, tuple| {
            inst.insert(rel, tuple);
        })?;
        Ok(inst)
    }

    /// Stream `Substitute(I, σ)` fact by fact into `apply`, without materialising an
    /// [`Instance`]. The action hot path applies a del/add pattern pair directly onto one
    /// clone of the source instance this way, instead of building two throwaway instances
    /// and running whole-map set operations over them.
    pub fn substitute_into(
        &self,
        subst: &Substitution,
        mut apply: impl FnMut(RelName, Vec<DataValue>),
    ) -> Result<(), DbError> {
        for (rel, args) in self.facts() {
            let tuple: Vec<DataValue> = args
                .iter()
                .map(|t| match t {
                    Term::Value(v) => Ok(*v),
                    Term::Var(v) => subst.get(*v).ok_or(DbError::UnboundVariable(*v)),
                })
                .collect::<Result<_, _>>()?;
            apply(rel, tuple);
        }
        Ok(())
    }

    /// Rewrite the pattern by mapping every term through `f` (used by the transformations of
    /// Appendix F).
    pub fn map_terms<F: Fn(Term) -> Term>(&self, f: F) -> Pattern {
        let mut p = Pattern::new();
        for (rel, args) in self.facts() {
            p.insert(rel, args.iter().map(|&t| f(t)));
        }
        p
    }

    /// Merge another pattern into this one.
    pub fn union(&self, other: &Pattern) -> Pattern {
        let mut p = self.clone();
        for (rel, args) in other.facts() {
            p.insert(rel, args.iter().copied());
        }
        p
    }

    /// Validate arities against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<(), DbError> {
        for (rel, args) in self.facts() {
            schema.check_arity(rel, args.len())?;
        }
        Ok(())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (rel, args) in self.facts() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            if args.is_empty() {
                write!(f, "{rel}")?;
            } else {
                let parts: Vec<String> = args.iter().map(|t| t.to_string()).collect();
                write!(f, "{rel}({})", parts.join(","))?;
            }
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str) -> RelName {
        RelName::new(name)
    }
    fn v(name: &str) -> Var {
        Var::new(name)
    }
    fn e(i: u64) -> DataValue {
        DataValue::e(i)
    }

    #[test]
    fn build_and_inspect() {
        let p = Pattern::from_facts([
            (r("R"), vec![Term::Var(v("u")), Term::Var(v("w"))]),
            (r("Q"), vec![Term::Var(v("u"))]),
            (r("p"), vec![]),
        ]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.variables(), BTreeSet::from([v("u"), v("w")]));
        assert_eq!(p.relations(), BTreeSet::from([r("R"), r("Q"), r("p")]));
        assert!(p.contains(r("Q"), &[Term::Var(v("u"))]));
        assert!(!p.is_empty());
        assert!(Pattern::new().is_empty());
    }

    #[test]
    fn substitute_produces_concrete_instance() {
        let p = Pattern::from_facts([
            (r("R"), vec![Term::Var(v("u")), Term::Value(e(9))]),
            (r("p"), vec![]),
        ]);
        let s = Substitution::from_pairs([(v("u"), e(1))]);
        let inst = p.substitute(&s).unwrap();
        assert!(inst.contains(r("R"), &[e(1), e(9)]));
        assert!(inst.proposition(r("p")));
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn substitute_requires_all_variables_bound() {
        let p = Pattern::from_facts([(r("R"), vec![Term::Var(v("u"))])]);
        let err = p.substitute(&Substitution::empty()).unwrap_err();
        assert!(matches!(err, DbError::UnboundVariable(_)));
    }

    #[test]
    fn substitution_can_collapse_facts() {
        // R(u) and R(w) collapse to one fact when σ(u) = σ(w)
        let p = Pattern::from_facts([
            (r("R"), vec![Term::Var(v("u"))]),
            (r("R"), vec![Term::Var(v("w"))]),
        ]);
        let s = Substitution::from_pairs([(v("u"), e(5)), (v("w"), e(5))]);
        let inst = p.substitute(&s).unwrap();
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn proposition_constructor_and_union() {
        let p = Pattern::proposition(r("lock"));
        let q = Pattern::from_facts([(r("R"), vec![Term::Var(v("u"))])]);
        let u = p.union(&q);
        assert_eq!(u.len(), 2);
        assert!(u.contains(r("lock"), &[]));
    }

    #[test]
    fn map_terms_renames_variables() {
        let p = Pattern::from_facts([(r("R"), vec![Term::Var(v("u"))])]);
        let q = p.map_terms(|t| match t {
            Term::Var(x) if x == v("u") => Term::Var(v("z")),
            other => other,
        });
        assert!(q.contains(r("R"), &[Term::Var(v("z"))]));
    }

    #[test]
    fn validate_against_schema() {
        let schema = Schema::with_relations(&[("R", 2)]);
        let good = Pattern::from_facts([(r("R"), vec![Term::Var(v("u")), Term::Var(v("w"))])]);
        assert!(good.validate(&schema).is_ok());
        let bad = Pattern::from_facts([(r("R"), vec![Term::Var(v("u"))])]);
        assert!(bad.validate(&schema).is_err());
    }

    #[test]
    fn constants_are_reported() {
        let p = Pattern::from_facts([(r("R"), vec![Term::Value(e(3)), Term::Var(v("u"))])]);
        assert_eq!(p.constants(), BTreeSet::from([e(3)]));
    }
}
