//! Process-wide counters for the copy-on-write instance representation and the lazy
//! relation indexes.
//!
//! [`crate::Instance`] shares relation storage between clones (`Arc` per relation) and only
//! materialises a private copy of a relation on first write. These counters record how often
//! each case occurs, plus how often query evaluation could answer a probe from an
//! already-built index. The checking engines snapshot the counters around a search and
//! report the deltas in their statistics.
//!
//! The counters are global (relaxed atomics), so concurrent searches see each other's
//! traffic; treat per-search deltas as approximate whenever several searches run at once.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of per-counter shards. Each thread is pinned to one shard (round-robin), so the
/// hot-loop increments issued by concurrent search workers land on different cache lines
/// instead of all contending on a single atomic.
const SHARDS: usize = 8;

/// A cache-line-padded counter cell, so neighbouring shards do not false-share.
#[repr(align(64))]
struct Shard(AtomicU64);

type Counter = [Shard; SHARDS];

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_COUNTER: Counter = [const { Shard(AtomicU64::new(0)) }; SHARDS];

/// Relation handles shared by reference on an instance clone (one per relation per clone).
static RELATIONS_SHARED: Counter = ZERO_COUNTER;
/// Relations deep-copied because a shared handle was written to (clone-on-first-write).
static RELATIONS_MATERIALIZED: Counter = ZERO_COUNTER;
/// Probes answered through a per-relation index (first-column, per-column values, or the
/// canonical-fragment cache).
static INDEX_HITS: Counter = ZERO_COUNTER;
/// Probes that had to build (or rebuild) the index or cache entry first.
static INDEX_BUILDS: Counter = ZERO_COUNTER;

/// The calling thread's shard index, assigned round-robin on first use.
fn shard() -> usize {
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|cell| {
        let mut index = cell.get();
        if index == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            index = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            cell.set(index);
        }
        index
    })
}

fn total(counter: &Counter) -> u64 {
    counter
        .iter()
        .map(|shard| shard.0.load(Ordering::Relaxed))
        .sum()
}

pub(crate) fn count_shared(n: u64) {
    RELATIONS_SHARED[shard()].0.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn count_materialized() {
    RELATIONS_MATERIALIZED[shard()]
        .0
        .fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_index_hit() {
    INDEX_HITS[shard()].0.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_index_build() {
    INDEX_BUILDS[shard()].0.fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time reading of the sharing/index counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Relation handles shared by reference on instance clones.
    pub relations_shared: u64,
    /// Relations deep-copied on first write to a shared handle.
    pub relations_materialized: u64,
    /// Index probes answered from an already-built index or cache.
    pub index_hits: u64,
    /// Index probes that had to build the index or cache entry first.
    pub index_builds: u64,
}

impl MetricsSnapshot {
    /// The counter increments between `earlier` and `self` (saturating, in case another
    /// thread raced the two readings).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            relations_shared: self
                .relations_shared
                .saturating_sub(earlier.relations_shared),
            relations_materialized: self
                .relations_materialized
                .saturating_sub(earlier.relations_materialized),
            index_hits: self.index_hits.saturating_sub(earlier.index_hits),
            index_builds: self.index_builds.saturating_sub(earlier.index_builds),
        }
    }

    /// Total index probes (hits + builds).
    pub fn index_probes(&self) -> u64 {
        self.index_hits + self.index_builds
    }

    /// Fraction of index probes answered from an already-built index (`0` when no probe
    /// happened).
    pub fn index_hit_rate(&self) -> f64 {
        let probes = self.index_probes();
        if probes == 0 {
            0.0
        } else {
            self.index_hits as f64 / probes as f64
        }
    }
}

/// Read the current counter values (summing every thread shard).
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        relations_shared: total(&RELATIONS_SHARED),
        relations_materialized: total(&RELATIONS_MATERIALIZED),
        index_hits: total(&INDEX_HITS),
        index_builds: total(&INDEX_BUILDS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_saturating_and_rates_bounded() {
        let a = MetricsSnapshot {
            relations_shared: 10,
            relations_materialized: 2,
            index_hits: 30,
            index_builds: 10,
        };
        let b = MetricsSnapshot {
            relations_shared: 4,
            relations_materialized: 5,
            index_hits: 10,
            index_builds: 10,
        };
        let d = a.since(&b);
        assert_eq!(d.relations_shared, 6);
        assert_eq!(d.relations_materialized, 0); // saturates instead of wrapping
        assert_eq!(d.index_probes(), 20);
        assert!((d.index_hit_rate() - 1.0).abs() < 1e-9);
        assert_eq!(MetricsSnapshot::default().index_hit_rate(), 0.0);
    }

    #[test]
    fn counters_move_forward() {
        let before = snapshot();
        count_shared(3);
        count_materialized();
        count_index_hit();
        count_index_build();
        let delta = snapshot().since(&before);
        // other tests may run concurrently, so only lower-bound the deltas
        assert!(delta.relations_shared >= 3);
        assert!(delta.relations_materialized >= 1);
        assert!(delta.index_hits >= 1);
        assert!(delta.index_builds >= 1);
    }
}
