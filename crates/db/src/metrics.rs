//! Counters for the copy-on-write instance representation and the lazy relation indexes.
//!
//! [`crate::Instance`] shares relation storage between clones (`Arc` per relation) and only
//! materialises a private copy of a relation on first write. These counters record how often
//! each case occurs, plus how often query evaluation could answer a probe from an
//! already-built index.
//!
//! Two accounting levels exist:
//!
//! * **global** (relaxed atomics, process-wide): [`snapshot`] reads them; deltas between two
//!   snapshots are approximate whenever several searches run at once;
//! * **scoped** ([`SearchCounters`] + [`record_into`]): a consumer that wants *exact*
//!   per-search figures allocates a [`SearchCounters`] and enters a recording scope on every
//!   thread working for that search. All counter traffic issued by a thread inside a scope
//!   is additionally tallied into the scope's counters (buffered thread-locally, flushed
//!   when the scope guard drops), so concurrent unrelated searches never pollute each
//!   other's numbers. The checking engines report these exact figures in their statistics.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of per-counter shards. Each thread is pinned to one shard (round-robin), so the
/// hot-loop increments issued by concurrent search workers land on different cache lines
/// instead of all contending on a single atomic.
const SHARDS: usize = 8;

/// A cache-line-padded counter cell, so neighbouring shards do not false-share.
#[repr(align(64))]
struct Shard(AtomicU64);

type Counter = [Shard; SHARDS];

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_COUNTER: Counter = [const { Shard(AtomicU64::new(0)) }; SHARDS];

/// Relation handles shared by reference on an instance clone (one per relation per clone).
static RELATIONS_SHARED: Counter = ZERO_COUNTER;
/// Relations deep-copied because a shared handle was written to (clone-on-first-write).
static RELATIONS_MATERIALIZED: Counter = ZERO_COUNTER;
/// Probes answered through a per-relation index (first-column, per-column values, or the
/// canonical-fragment cache).
static INDEX_HITS: Counter = ZERO_COUNTER;
/// Probes that had to build (or rebuild) the index or cache entry first.
static INDEX_BUILDS: Counter = ZERO_COUNTER;

/// The calling thread's shard index, assigned round-robin on first use.
fn shard() -> usize {
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|cell| {
        let mut index = cell.get();
        if index == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            index = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            cell.set(index);
        }
        index
    })
}

fn total(counter: &Counter) -> u64 {
    counter
        .iter()
        .map(|shard| shard.0.load(Ordering::Relaxed))
        .sum()
}

/// The four counter kinds, used to index the scoped tallies.
const SHARED: usize = 0;
const MATERIALIZED: usize = 1;
const HITS: usize = 2;
const BUILDS: usize = 3;

/// Exact per-search counters. Allocate one per logical search, share it (`Arc`) with every
/// worker thread of that search, and have each worker hold a [`record_into`] guard while it
/// works; [`SearchCounters::snapshot`] then returns figures that count exactly the traffic
/// of this search, regardless of what other searches do concurrently.
#[derive(Debug, Default)]
pub struct SearchCounters {
    counts: [AtomicU64; 4],
}

impl SearchCounters {
    /// Fresh counters, all zero.
    pub fn new() -> SearchCounters {
        SearchCounters::default()
    }

    /// The current totals. Exact once every recording scope targeting these counters has
    /// been dropped (worker threads flush their buffered tallies on scope exit).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            relations_shared: self.counts[SHARED].load(Ordering::Relaxed),
            relations_materialized: self.counts[MATERIALIZED].load(Ordering::Relaxed),
            index_hits: self.counts[HITS].load(Ordering::Relaxed),
            index_builds: self.counts[BUILDS].load(Ordering::Relaxed),
        }
    }
}

/// One thread's buffered contribution to a [`SearchCounters`]: plain cells while the scope
/// is live (no atomic traffic in the hot loop), flushed on drop.
struct LocalTally {
    target: Arc<SearchCounters>,
    counts: [Cell<u64>; 4],
}

thread_local! {
    /// The recording scopes active on this thread, innermost last. Counter traffic is
    /// tallied into every active scope, so a search nested inside another (an engine
    /// re-checking inside a hit predicate, say) is counted by both.
    static ACTIVE_SCOPES: RefCell<Vec<Rc<LocalTally>>> = const { RefCell::new(Vec::new()) };
}

/// Guard returned by [`record_into`]; dropping it flushes this thread's buffered tallies
/// into the target [`SearchCounters`] and ends the scope.
pub struct MetricsScope {
    tally: Rc<LocalTally>,
}

/// Start recording this thread's counter traffic into `counters` (in addition to the global
/// counters) until the returned guard drops.
pub fn record_into(counters: &Arc<SearchCounters>) -> MetricsScope {
    let tally = Rc::new(LocalTally {
        target: Arc::clone(counters),
        counts: Default::default(),
    });
    ACTIVE_SCOPES.with(|scopes| scopes.borrow_mut().push(Rc::clone(&tally)));
    MetricsScope { tally }
}

impl Drop for MetricsScope {
    fn drop(&mut self) {
        ACTIVE_SCOPES.with(|scopes| {
            let mut scopes = scopes.borrow_mut();
            if let Some(at) = scopes.iter().rposition(|t| Rc::ptr_eq(t, &self.tally)) {
                scopes.remove(at);
            }
        });
        for (kind, cell) in self.tally.counts.iter().enumerate() {
            let n = cell.get();
            if n > 0 {
                self.tally.target.counts[kind].fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

/// Tally `n` into every recording scope active on this thread.
fn scoped_add(kind: usize, n: u64) {
    ACTIVE_SCOPES.with(|scopes| {
        for tally in scopes.borrow().iter() {
            let cell = &tally.counts[kind];
            cell.set(cell.get() + n);
        }
    });
}

pub(crate) fn count_shared(n: u64) {
    RELATIONS_SHARED[shard()].0.fetch_add(n, Ordering::Relaxed);
    scoped_add(SHARED, n);
}

pub(crate) fn count_materialized() {
    RELATIONS_MATERIALIZED[shard()]
        .0
        .fetch_add(1, Ordering::Relaxed);
    scoped_add(MATERIALIZED, 1);
}

pub(crate) fn count_index_hit() {
    INDEX_HITS[shard()].0.fetch_add(1, Ordering::Relaxed);
    scoped_add(HITS, 1);
}

pub(crate) fn count_index_build() {
    INDEX_BUILDS[shard()].0.fetch_add(1, Ordering::Relaxed);
    scoped_add(BUILDS, 1);
}

/// A point-in-time reading of the sharing/index counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Relation handles shared by reference on instance clones.
    pub relations_shared: u64,
    /// Relations deep-copied on first write to a shared handle.
    pub relations_materialized: u64,
    /// Index probes answered from an already-built index or cache.
    pub index_hits: u64,
    /// Index probes that had to build the index or cache entry first.
    pub index_builds: u64,
}

impl MetricsSnapshot {
    /// The counter increments between `earlier` and `self` (saturating, in case another
    /// thread raced the two readings).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            relations_shared: self
                .relations_shared
                .saturating_sub(earlier.relations_shared),
            relations_materialized: self
                .relations_materialized
                .saturating_sub(earlier.relations_materialized),
            index_hits: self.index_hits.saturating_sub(earlier.index_hits),
            index_builds: self.index_builds.saturating_sub(earlier.index_builds),
        }
    }

    /// Total index probes (hits + builds).
    pub fn index_probes(&self) -> u64 {
        self.index_hits + self.index_builds
    }

    /// Fraction of index probes answered from an already-built index (`0` when no probe
    /// happened).
    pub fn index_hit_rate(&self) -> f64 {
        let probes = self.index_probes();
        if probes == 0 {
            0.0
        } else {
            self.index_hits as f64 / probes as f64
        }
    }
}

/// Read the current counter values (summing every thread shard).
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        relations_shared: total(&RELATIONS_SHARED),
        relations_materialized: total(&RELATIONS_MATERIALIZED),
        index_hits: total(&INDEX_HITS),
        index_builds: total(&INDEX_BUILDS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_saturating_and_rates_bounded() {
        let a = MetricsSnapshot {
            relations_shared: 10,
            relations_materialized: 2,
            index_hits: 30,
            index_builds: 10,
        };
        let b = MetricsSnapshot {
            relations_shared: 4,
            relations_materialized: 5,
            index_hits: 10,
            index_builds: 10,
        };
        let d = a.since(&b);
        assert_eq!(d.relations_shared, 6);
        assert_eq!(d.relations_materialized, 0); // saturates instead of wrapping
        assert_eq!(d.index_probes(), 20);
        assert!((d.index_hit_rate() - 1.0).abs() < 1e-9);
        assert_eq!(MetricsSnapshot::default().index_hit_rate(), 0.0);
    }

    #[test]
    fn counters_move_forward() {
        let before = snapshot();
        count_shared(3);
        count_materialized();
        count_index_hit();
        count_index_build();
        let delta = snapshot().since(&before);
        // other tests may run concurrently, so only lower-bound the deltas
        assert!(delta.relations_shared >= 3);
        assert!(delta.relations_materialized >= 1);
        assert!(delta.index_hits >= 1);
        assert!(delta.index_builds >= 1);
    }

    #[test]
    fn scoped_counters_are_exact_and_flushed_on_drop() {
        let mine = Arc::new(SearchCounters::new());
        {
            let _scope = record_into(&mine);
            count_shared(5);
            count_index_hit();
            // buffered: nothing flushed while the scope is live
            assert_eq!(mine.snapshot(), MetricsSnapshot::default());
        }
        let after = mine.snapshot();
        assert_eq!(after.relations_shared, 5);
        assert_eq!(after.index_hits, 1);
        assert_eq!(after.relations_materialized, 0);

        // traffic outside the scope is not attributed
        count_shared(100);
        assert_eq!(mine.snapshot(), after);
    }

    #[test]
    fn scoped_counters_ignore_traffic_of_other_threads() {
        let mine = Arc::new(SearchCounters::new());
        let noisy = std::thread::spawn(|| {
            for _ in 0..1_000 {
                count_shared(1);
                count_materialized();
            }
        });
        {
            let _scope = record_into(&mine);
            count_shared(2);
        }
        noisy.join().unwrap();
        let got = mine.snapshot();
        assert_eq!(got.relations_shared, 2, "only this thread's scoped traffic");
        assert_eq!(got.relations_materialized, 0);
    }

    #[test]
    fn nested_scopes_both_record() {
        let outer = Arc::new(SearchCounters::new());
        let inner = Arc::new(SearchCounters::new());
        {
            let _o = record_into(&outer);
            count_index_build();
            {
                let _i = record_into(&inner);
                count_index_hit();
            }
            count_index_build();
        }
        assert_eq!(inner.snapshot().index_hits, 1);
        assert_eq!(inner.snapshot().index_builds, 0);
        assert_eq!(outer.snapshot().index_hits, 1);
        assert_eq!(outer.snapshot().index_builds, 2);
    }
}
