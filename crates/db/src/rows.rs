//! Sorted-row answer sets: the intermediate representation of [`crate::answers`].
//!
//! A [`Rows`] value is a set of substitutions that all bind exactly the same variables —
//! the *column signature* — stored as one flat `Vec<DataValue>` in row-major order, with
//! the rows sorted lexicographically and deduplicated. Every node of the query evaluator
//! produces rows over `Free-Vars(node)`, so instead of a `BTreeSet<Substitution>` (one
//! tree map allocation per row per node) the evaluator moves flat vectors around:
//!
//! * union / difference are linear merges of two sorted runs,
//! * membership is a binary search,
//! * the natural join hash-partitions on the shared columns and emits straight into the
//!   output's flat buffer,
//! * building from unsorted matches is one sort + dedup pass.
//!
//! Because the signature is kept **sorted by variable**, comparing two rows column by
//! column is exactly the ordering `BTreeMap<Var, DataValue>` gives equal-domain
//! substitutions — so [`Rows::substitutions`] yields answers in precisely the order the
//! previous `BTreeSet<Substitution>` representation iterated them (pinned by the model
//! tests; the explorer's legacy successor order depends on it).

use crate::error::DbError;
use crate::substitution::Substitution;
use crate::term::{Term, Var};
use crate::value::DataValue;
use std::cmp::Ordering;
use std::collections::BTreeSet;

/// A set of equal-domain substitutions as a flat sorted table. See the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Rows {
    /// The column signature, sorted ascending and distinct.
    vars: Vec<Var>,
    /// Number of rows (needed explicitly: a zero-column table still distinguishes the
    /// empty set from the singleton `{ε}`).
    len: usize,
    /// Row-major cell storage: `len × vars.len()` values, rows sorted lexicographically
    /// and distinct.
    data: Vec<DataValue>,
}

impl Rows {
    /// The empty set of rows over the given (sorted, distinct) signature.
    pub fn empty(vars: Vec<Var>) -> Rows {
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "signature not sorted");
        Rows {
            vars,
            len: 0,
            data: Vec::new(),
        }
    }

    /// The singleton `{ε}`: one row over no columns (a satisfied boolean query).
    pub fn unit() -> Rows {
        Rows {
            vars: Vec::new(),
            len: 1,
            data: Vec::new(),
        }
    }

    /// Build from possibly unsorted, possibly duplicated row data (`data.len()` must be a
    /// multiple of the signature width): one sort + dedup pass restores the invariant.
    ///
    /// The signature must be non-empty — a flat buffer of zero-column rows cannot carry a
    /// row count, so zero-column tables are built with [`Rows::unit`] / [`Rows::empty`].
    pub fn from_unsorted(vars: Vec<Var>, data: Vec<DataValue>) -> Rows {
        let width = vars.len();
        assert!(width > 0, "zero-column tables are unit() or empty()");
        debug_assert_eq!(data.len() % width, 0, "ragged row data");
        if data.len() <= width {
            // zero or one row is already sorted and distinct (the typical action guard:
            // tiny relations, few answers)
            return Rows {
                len: data.len() / width,
                vars,
                data,
            };
        }
        let mut rows: Vec<&[DataValue]> = data.chunks_exact(width).collect();
        rows.sort_unstable();
        rows.dedup();
        let mut packed = Vec::with_capacity(rows.len() * width);
        for row in &rows {
            packed.extend_from_slice(row);
        }
        Rows {
            len: packed.len() / width,
            vars,
            data: packed,
        }
    }

    /// Build from row data already sorted and deduplicated (callers that emit in order).
    pub fn from_sorted(vars: Vec<Var>, data: Vec<DataValue>) -> Rows {
        let width = vars.len();
        // a zero-column data buffer carries no row count: treat any content as one ε row
        let len = data
            .len()
            .checked_div(width)
            .unwrap_or(usize::from(!data.is_empty()));
        let rows = Rows { vars, len, data };
        debug_assert!(
            rows.iter().zip(rows.iter().skip(1)).all(|(a, b)| a < b),
            "rows not sorted/deduplicated"
        );
        rows
    }

    /// The column signature (sorted ascending).
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.vars.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether this is the singleton `{ε}` (the identity of the natural join).
    pub fn is_unit(&self) -> bool {
        self.width() == 0 && self.len == 1
    }

    /// The `i`-th row.
    #[cfg(test)]
    pub fn row(&self, i: usize) -> &[DataValue] {
        &self.data[i * self.width()..(i + 1) * self.width()]
    }

    /// Iterate over the rows in ascending lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &[DataValue]> + '_ {
        let width = self.width();
        // `chunks_exact(0)` panics; a zero-column table has `len` copies of the empty row
        (0..self.len).map(move |i| &self.data[i * width..i * width + width])
    }

    /// Binary-search membership of a full-width row.
    #[cfg(test)]
    pub fn contains_row(&self, row: &[DataValue]) -> bool {
        debug_assert_eq!(row.len(), self.width());
        if self.width() == 0 {
            return self.len > 0;
        }
        self.binary_search(row).is_ok()
    }

    #[cfg(test)]
    fn binary_search(&self, row: &[DataValue]) -> Result<usize, usize> {
        let width = self.width();
        let mut lo = 0usize;
        let mut hi = self.len;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.data[mid * width..mid * width + width].cmp(row) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// The union of two row sets over the **same** signature: a linear merge.
    pub fn union(&self, other: &Rows) -> Rows {
        debug_assert_eq!(self.vars, other.vars);
        if self.width() == 0 {
            return if self.len + other.len > 0 {
                Rows::unit()
            } else {
                Rows::empty(Vec::new())
            };
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        let mut left = self.iter().peekable();
        let mut right = other.iter().peekable();
        loop {
            match (left.peek(), right.peek()) {
                (Some(&l), Some(&r)) => match l.cmp(r) {
                    Ordering::Less => {
                        data.extend_from_slice(l);
                        left.next();
                    }
                    Ordering::Greater => {
                        data.extend_from_slice(r);
                        right.next();
                    }
                    Ordering::Equal => {
                        data.extend_from_slice(l);
                        left.next();
                        right.next();
                    }
                },
                (Some(&l), None) => {
                    data.extend_from_slice(l);
                    left.next();
                }
                (None, Some(&r)) => {
                    data.extend_from_slice(r);
                    right.next();
                }
                (None, None) => break,
            }
        }
        Rows::from_sorted(self.vars.clone(), data)
    }

    /// The rows of `self` not in `other` (same signature): a linear merge.
    pub fn difference(&self, other: &Rows) -> Rows {
        debug_assert_eq!(self.vars, other.vars);
        if self.width() == 0 {
            return if self.len > 0 && other.len == 0 {
                Rows::unit()
            } else {
                Rows::empty(Vec::new())
            };
        }
        let mut data = Vec::with_capacity(self.data.len());
        let mut right = other.iter().peekable();
        'rows: for l in self.iter() {
            while let Some(&r) = right.peek() {
                match r.cmp(l) {
                    Ordering::Less => {
                        right.next();
                    }
                    Ordering::Equal => continue 'rows,
                    Ordering::Greater => break,
                }
            }
            data.extend_from_slice(l);
        }
        Rows::from_sorted(self.vars.clone(), data)
    }

    /// Project onto `keep ⊆ vars` (existential quantification drops the bound column),
    /// re-sorting and deduplicating the surviving columns.
    pub fn project(&self, keep: &[Var]) -> Rows {
        debug_assert!(keep.windows(2).all(|w| w[0] < w[1]));
        if keep.is_empty() {
            // every row projects to ε
            return if self.is_empty() {
                Rows::empty(Vec::new())
            } else {
                Rows::unit()
            };
        }
        let positions: Vec<usize> = keep
            .iter()
            .map(|v| {
                self.vars
                    .binary_search(v)
                    .expect("projection variable must be a column")
            })
            .collect();
        if positions.len() == self.width() {
            return self.clone();
        }
        let mut data = Vec::with_capacity(self.len * positions.len());
        for row in self.iter() {
            data.extend(positions.iter().map(|&p| row[p]));
        }
        Rows::from_unsorted(keep.to_vec(), data)
    }

    /// The natural join `self ⋈ other`: rows agreeing on the shared columns, merged over
    /// the union signature. Small products are joined pairwise; larger ones hash-partition
    /// `other` on the shared columns and probe per left row — O(|L| + |R| + output).
    /// Consumes both sides so the identity cases move instead of cloning.
    pub fn join(self, other: Rows) -> Rows {
        // identity shortcuts: `{ε}` (a satisfied boolean conjunct — action guards are
        // typically `proposition ∧ query`) joins to the other side unchanged
        if self.is_unit() {
            return other;
        }
        if other.is_unit() {
            return self;
        }
        let vars = merge_vars(&self.vars, &other.vars);
        if self.is_empty() || other.is_empty() {
            return Rows::empty(vars);
        }
        // for every output column: take it from self (negative index) or from other
        enum Source {
            Left(usize),
            Right(usize),
        }
        let sources: Vec<Source> = vars
            .iter()
            .map(|v| match self.vars.binary_search(v) {
                Ok(i) => Source::Left(i),
                Err(_) => Source::Right(other.vars.binary_search(v).expect("merged var")),
            })
            .collect();
        let shared: Vec<(usize, usize)> = self
            .vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| other.vars.binary_search(v).ok().map(|j| (i, j)))
            .collect();
        let mut data = Vec::new();
        let mut emit = |l: &[DataValue], r: &[DataValue]| {
            data.extend(sources.iter().map(|s| match s {
                Source::Left(i) => l[*i],
                Source::Right(j) => r[*j],
            }));
        };
        // tiny products (typical action guards) are faster pairwise than through a table
        if shared.is_empty() || self.len.saturating_mul(other.len) <= 64 {
            for l in self.iter() {
                for r in other.iter() {
                    if shared.iter().all(|&(i, j)| l[i] == r[j]) {
                        emit(l, r);
                    }
                }
            }
        } else {
            let mut by_key: std::collections::HashMap<Vec<DataValue>, Vec<&[DataValue]>> =
                std::collections::HashMap::new();
            for r in other.iter() {
                let key: Vec<DataValue> = shared.iter().map(|&(_, j)| r[j]).collect();
                by_key.entry(key).or_default().push(r);
            }
            for l in self.iter() {
                let key: Vec<DataValue> = shared.iter().map(|&(i, _)| l[i]).collect();
                if let Some(matches) = by_key.get(&key) {
                    for r in matches {
                        emit(l, r);
                    }
                }
            }
        }
        Rows::from_unsorted(vars, data)
    }

    /// Extend every row over the columns in `to ⊇ vars` by enumerating `universe` for the
    /// missing columns (cylindrification, for disjunction). Fails like [`Rows::full`] when
    /// the extension space overflows.
    pub fn cylindrify(self, to: &[Var], universe: &BTreeSet<DataValue>) -> Result<Rows, DbError> {
        debug_assert!(to.windows(2).all(|w| w[0] < w[1]));
        if to == self.vars.as_slice() {
            return Ok(self);
        }
        if self.is_empty() {
            // nothing to extend — and this restores the exact signature on empties that
            // carry a truncated one (see the `eval_set` signature invariant)
            return Ok(Rows::empty(to.to_vec()));
        }
        let missing: Vec<Var> = to
            .iter()
            .copied()
            .filter(|v| self.vars.binary_search(v).is_err())
            .collect();
        let full = Rows::full(universe, &missing)?;
        Ok(self.join(full))
    }

    /// All `|universe|^k` rows over the given (sorted, distinct) signature, in order.
    ///
    /// Refuses with [`DbError::AnswerSpaceOverflow`] when the row count (or the cell
    /// count) does not fit a `usize` — an unchecked multiply would wrap in release
    /// builds and make the complement/∀ evaluations silently drop answers.
    pub fn full(universe: &BTreeSet<DataValue>, vars: &[Var]) -> Result<Rows, DbError> {
        if vars.is_empty() {
            return Ok(Rows::unit());
        }
        let uni: Vec<DataValue> = universe.iter().copied().collect();
        if uni.is_empty() {
            return Ok(Rows::empty(vars.to_vec()));
        }
        let width = vars.len();
        let overflow = || DbError::AnswerSpaceOverflow {
            variables: width,
            universe: uni.len(),
        };
        let count = uni
            .len()
            .checked_pow(u32::try_from(width).map_err(|_| overflow())?)
            .ok_or_else(overflow)?;
        let cells = count.checked_mul(width).ok_or_else(overflow)?;
        let mut data = Vec::with_capacity(cells);
        let mut odometer = vec![0usize; width];
        for _ in 0..count {
            data.extend(odometer.iter().map(|&i| uni[i]));
            // increment least-significant-last, so rows come out in lexicographic order
            for digit in (0..width).rev() {
                odometer[digit] += 1;
                if odometer[digit] < uni.len() {
                    break;
                }
                odometer[digit] = 0;
            }
        }
        Ok(Rows::from_sorted(vars.to_vec(), data))
    }

    /// The rows as substitutions, in row order — identical to the iteration order of the
    /// `BTreeSet<Substitution>` this representation replaced (see the module docs).
    pub fn substitutions(&self) -> Vec<Substitution> {
        self.iter()
            .map(|row| Substitution::from_pairs(self.vars.iter().copied().zip(row.iter().copied())))
            .collect()
    }
}

impl crate::heap::HeapSize for Rows {
    /// Two flat buffers: the signature and the row-major cell storage, charged at
    /// capacity. No per-row overhead — that flatness is the point of the representation.
    fn heap_size(&self) -> usize {
        self.vars.capacity() * std::mem::size_of::<Var>()
            + self.data.capacity() * std::mem::size_of::<DataValue>()
    }
}

/// Merge two sorted signatures into their sorted union.
pub(crate) fn merge_vars(a: &[Var], b: &[Var]) -> Vec<Var> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                out.push(x);
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                out.push(x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    out
}

/// Match one tuple against an atom's term list over the atom's (sorted) signature,
/// appending the bound values in signature order to `out` on success. Returns `false` on
/// arity or constant mismatch, or when a repeated variable meets two different values
/// (nothing is appended then).
pub(crate) fn unify_tuple_into(
    vars: &[Var],
    terms: &[Term],
    tuple: &[DataValue],
    out: &mut Vec<DataValue>,
) -> bool {
    if tuple.len() != terms.len() {
        return false;
    }
    debug_assert!(vars.len() <= 64, "atom arity bounds the signature width");
    let base = out.len();
    out.resize(base + vars.len(), DataValue(0));
    // which columns are bound so far, as a bitmask (arities are tiny; no per-call buffer)
    let mut bound = 0u64;
    for (term, &value) in terms.iter().zip(tuple.iter()) {
        match term {
            Term::Value(c) => {
                if *c != value {
                    out.truncate(base);
                    return false;
                }
            }
            Term::Var(v) => {
                let col = vars.binary_search(v).expect("atom variable is a column");
                if bound & (1 << col) != 0 && out[base + col] != value {
                    out.truncate(base);
                    return false;
                }
                bound |= 1 << col;
                out[base + col] = value;
            }
        }
    }
    debug_assert_eq!(
        bound.count_ones() as usize,
        vars.len(),
        "every column bound by the atom"
    );
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Var {
        Var::new(name)
    }
    fn e(i: u64) -> DataValue {
        DataValue::e(i)
    }

    fn rows(vars: &[Var], rows: &[&[u64]]) -> Rows {
        let data = rows.iter().flat_map(|r| r.iter().map(|&i| e(i))).collect();
        Rows::from_unsorted(vars.to_vec(), data)
    }

    #[test]
    fn build_sorts_and_dedups() {
        let u = v("u");
        let w = v("w");
        let t = rows(&[u, w], &[&[2, 1], &[1, 1], &[2, 1], &[1, 2]]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.row(0), &[e(1), e(1)]);
        assert_eq!(t.row(1), &[e(1), e(2)]);
        assert_eq!(t.row(2), &[e(2), e(1)]);
        assert!(t.contains_row(&[e(2), e(1)]));
        assert!(!t.contains_row(&[e(2), e(2)]));
    }

    #[test]
    fn zero_column_tables_distinguish_empty_from_unit() {
        let empty = Rows::empty(Vec::new());
        let unit = Rows::unit();
        assert!(empty.is_empty());
        assert!(unit.is_unit());
        assert_ne!(empty, unit);
        assert_eq!(unit.substitutions(), vec![Substitution::empty()]);
        assert!(empty.substitutions().is_empty());
        // projecting away every column collapses to ε-rows without losing the count
        let t = rows(&[v("u")], &[&[1], &[2]]);
        assert!(t.project(&[]).is_unit());
        assert!(Rows::empty(vec![v("u")]).project(&[]).is_empty());
    }

    #[test]
    fn union_and_difference_are_set_operations() {
        let u = v("u");
        let a = rows(&[u], &[&[1], &[3], &[5]]);
        let b = rows(&[u], &[&[2], &[3], &[4]]);
        let both = a.union(&b);
        assert_eq!(
            both.iter().map(|r| r[0]).collect::<Vec<_>>(),
            vec![e(1), e(2), e(3), e(4), e(5)]
        );
        let only_a = a.difference(&b);
        assert_eq!(
            only_a.iter().map(|r| r[0]).collect::<Vec<_>>(),
            vec![e(1), e(5)]
        );
    }

    #[test]
    fn join_merges_on_shared_columns() {
        let (x, y, z) = (v("x"), v("y"), v("z"));
        let left = rows(&[x, y], &[&[1, 2], &[3, 4]]);
        let right = rows(&[y, z], &[&[2, 9], &[2, 8], &[5, 7]]);
        let joined = left.clone().join(right.clone());
        assert_eq!(joined.vars(), &[x, y, z]);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined.row(0), &[e(1), e(2), e(8)]);
        assert_eq!(joined.row(1), &[e(1), e(2), e(9)]);
        // the unit is the identity
        assert_eq!(Rows::unit().join(left.clone()), left);
        assert_eq!(left.clone().join(Rows::unit()), left);
        // joining with an empty side is empty over the union signature
        let nothing = left.clone().join(Rows::empty(vec![z]));
        assert!(nothing.is_empty());
        assert_eq!(nothing.vars(), &[x, y, z]);
    }

    #[test]
    fn hash_and_pairwise_joins_agree() {
        let (x, y, z) = (v("x"), v("y"), v("z"));
        // > 64 pairs forces the hash path; compare against the pairwise result
        let left_rows: Vec<Vec<u64>> = (0..12).map(|i| vec![i, i % 3]).collect();
        let right_rows: Vec<Vec<u64>> = (0..12).map(|i| vec![i % 3, 100 + i]).collect();
        let left = rows(
            &[x, y],
            &left_rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>(),
        );
        let right = rows(
            &[y, z],
            &right_rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>(),
        );
        let joined = left.clone().join(right.clone());
        let mut expected = Vec::new();
        for l in left.iter() {
            for r in right.iter() {
                if l[1] == r[0] {
                    expected.extend_from_slice(&[l[0], l[1], r[1]]);
                }
            }
        }
        assert_eq!(joined, Rows::from_unsorted(vec![x, y, z], expected));
    }

    #[test]
    fn full_enumerates_in_order_and_projection_drops_columns() {
        let (x, y) = (v("x"), v("y"));
        let universe = BTreeSet::from([e(1), e(2), e(3)]);
        let all = Rows::full(&universe, &[x, y]).unwrap();
        assert_eq!(all.len(), 9);
        assert_eq!(all.row(0), &[e(1), e(1)]);
        assert_eq!(all.row(8), &[e(3), e(3)]);
        let firsts = all.project(&[x]);
        assert_eq!(firsts.len(), 3);
        assert_eq!(firsts.vars(), &[x]);
        // cylindrifying back re-creates the full table
        assert_eq!(firsts.cylindrify(&[x, y], &universe).unwrap(), all);
    }

    #[test]
    fn infeasible_enumerations_are_refused_not_truncated() {
        // 2^70 rows overflows any usize: `full` must error out instead of wrapping the
        // count in release builds and silently answering from a truncated table
        let universe = BTreeSet::from([e(1), e(2)]);
        let vars: Vec<Var> = (0..70).map(|i| Var::numbered("x", i)).collect();
        let err = Rows::full(&universe, &vars).unwrap_err();
        assert!(matches!(err, DbError::AnswerSpaceOverflow { .. }));
        assert!(err.to_string().contains("2^70"));
    }

    #[test]
    fn substitutions_come_out_in_btreeset_order() {
        let (x, y) = (v("x"), v("y"));
        let t = rows(&[x, y], &[&[2, 1], &[1, 2], &[1, 1]]);
        let subs = t.substitutions();
        let via_set: Vec<Substitution> = subs
            .iter()
            .cloned()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        assert_eq!(subs, via_set, "row order must equal BTreeSet order");
    }

    #[test]
    fn unify_tuple_respects_constants_and_repeated_variables() {
        let u = v("u");
        let terms = [Term::Var(u), Term::Value(e(7)), Term::Var(u)];
        let mut out = Vec::new();
        assert!(unify_tuple_into(
            &[u],
            &terms,
            &[e(3), e(7), e(3)],
            &mut out
        ));
        assert_eq!(out, vec![e(3)]);
        // repeated variable with two different values
        assert!(!unify_tuple_into(
            &[u],
            &terms,
            &[e(3), e(7), e(4)],
            &mut out
        ));
        // constant mismatch
        assert!(!unify_tuple_into(
            &[u],
            &terms,
            &[e(3), e(8), e(3)],
            &mut out
        ));
        // arity mismatch
        assert!(!unify_tuple_into(&[u], &terms, &[e(3), e(7)], &mut out));
        assert_eq!(out, vec![e(3)], "failed unifications must not append");
    }
}
