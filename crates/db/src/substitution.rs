//! Substitutions: finite maps from data variables to data values.

use crate::term::{Term, Var};
use crate::value::DataValue;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A substitution `σ : V → ∆` assigning data values to a finite set of data variables.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Substitution {
    map: BTreeMap<Var, DataValue>,
}

impl Substitution {
    /// The empty substitution `ϵ`.
    pub fn empty() -> Substitution {
        Substitution::default()
    }

    /// Build a substitution from pairs.
    pub fn from_pairs<I: IntoIterator<Item = (Var, DataValue)>>(pairs: I) -> Substitution {
        Substitution {
            map: pairs.into_iter().collect(),
        }
    }

    /// Bind `var ↦ value`, returning the previous binding if any.
    pub fn bind(&mut self, var: Var, value: DataValue) -> Option<DataValue> {
        self.map.insert(var, value)
    }

    /// A copy of this substitution extended with `var ↦ value`.
    pub fn extended(&self, var: Var, value: DataValue) -> Substitution {
        let mut s = self.clone();
        s.bind(var, value);
        s
    }

    /// Look up a variable.
    pub fn get(&self, var: Var) -> Option<DataValue> {
        self.map.get(&var).copied()
    }

    /// Whether `var` is bound.
    pub fn binds(&self, var: Var) -> bool {
        self.map.contains_key(&var)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is bound (the empty substitution `ϵ`).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The domain of the substitution.
    pub fn domain(&self) -> impl Iterator<Item = Var> + '_ {
        self.map.keys().copied()
    }

    /// The image of the substitution.
    pub fn image(&self) -> BTreeSet<DataValue> {
        self.map.values().copied().collect()
    }

    /// Iterate over `(var, value)` bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, DataValue)> + '_ {
        self.map.iter().map(|(&v, &d)| (v, d))
    }

    /// The restriction `σ|_{V'}` of this substitution to the variables in `vars`.
    pub fn restrict<'a, I: IntoIterator<Item = &'a Var>>(&self, vars: I) -> Substitution {
        let keep: BTreeSet<Var> = vars.into_iter().copied().collect();
        Substitution {
            map: self
                .map
                .iter()
                .filter(|(v, _)| keep.contains(v))
                .map(|(&v, &d)| (v, d))
                .collect(),
        }
    }

    /// Whether the substitution is injective on its whole domain.
    pub fn is_injective(&self) -> bool {
        self.image().len() == self.map.len()
    }

    /// Whether the restriction to `vars` is injective (the paper requires `σ|_{⃗v}` to be
    /// injective on the fresh-input variables).
    pub fn is_injective_on<'a, I: IntoIterator<Item = &'a Var>>(&self, vars: I) -> bool {
        let mut seen = BTreeSet::new();
        for v in vars {
            match self.get(*v) {
                Some(d) => {
                    if !seen.insert(d) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }

    /// Apply the substitution to a term, leaving unbound variables untouched.
    pub fn apply_term(&self, term: Term) -> Term {
        match term {
            Term::Var(v) => match self.get(v) {
                Some(d) => Term::Value(d),
                None => Term::Var(v),
            },
            Term::Value(_) => term,
        }
    }

    /// Merge two substitutions; `other` wins on conflicts.
    pub fn merged(&self, other: &Substitution) -> Substitution {
        let mut map = self.map.clone();
        for (v, d) in other.iter() {
            map.insert(v, d);
        }
        Substitution { map }
    }

    /// Whether two substitutions agree on every variable bound by both.
    pub fn compatible(&self, other: &Substitution) -> bool {
        self.iter()
            .all(|(v, d)| other.get(v).map(|d2| d2 == d).unwrap_or(true))
    }
}

impl fmt::Debug for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let entries: Vec<String> = self.iter().map(|(v, d)| format!("{v}↦{d}")).collect();
        write!(f, "{{{}}}", entries.join(", "))
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl FromIterator<(Var, DataValue)> for Substitution {
    fn from_iter<T: IntoIterator<Item = (Var, DataValue)>>(iter: T) -> Self {
        Substitution::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Var {
        Var::new(name)
    }

    #[test]
    fn bind_get_restrict() {
        let mut s = Substitution::empty();
        assert!(s.is_empty());
        s.bind(v("u"), DataValue::e(1));
        s.bind(v("w"), DataValue::e(2));
        assert_eq!(s.get(v("u")), Some(DataValue::e(1)));
        assert_eq!(s.get(v("z")), None);
        assert_eq!(s.len(), 2);

        let r = s.restrict(&[v("u")]);
        assert_eq!(r.len(), 1);
        assert!(r.binds(v("u")));
        assert!(!r.binds(v("w")));
    }

    #[test]
    fn injectivity() {
        let s = Substitution::from_pairs([
            (v("a"), DataValue::e(1)),
            (v("b"), DataValue::e(1)),
            (v("c"), DataValue::e(2)),
        ]);
        assert!(!s.is_injective());
        assert!(s.is_injective_on(&[v("a"), v("c")]));
        assert!(!s.is_injective_on(&[v("a"), v("b")]));
        // unbound variable makes injectivity-on fail
        assert!(!s.is_injective_on(&[v("a"), v("zz")]));
    }

    #[test]
    fn apply_term_and_merge() {
        let s = Substitution::from_pairs([(v("u"), DataValue::e(4))]);
        assert_eq!(
            s.apply_term(Term::Var(v("u"))),
            Term::Value(DataValue::e(4))
        );
        assert_eq!(s.apply_term(Term::Var(v("x"))), Term::Var(v("x")));
        assert_eq!(
            s.apply_term(Term::Value(DataValue::e(9))),
            Term::Value(DataValue::e(9))
        );

        let t = Substitution::from_pairs([(v("u"), DataValue::e(5)), (v("w"), DataValue::e(6))]);
        let m = s.merged(&t);
        assert_eq!(m.get(v("u")), Some(DataValue::e(5)));
        assert_eq!(m.get(v("w")), Some(DataValue::e(6)));
    }

    #[test]
    fn compatibility() {
        let s = Substitution::from_pairs([(v("u"), DataValue::e(1))]);
        let t = Substitution::from_pairs([(v("u"), DataValue::e(1)), (v("w"), DataValue::e(2))]);
        let u2 = Substitution::from_pairs([(v("u"), DataValue::e(3))]);
        assert!(s.compatible(&t));
        assert!(!u2.compatible(&s));
    }

    #[test]
    fn extended_does_not_mutate_original() {
        let s = Substitution::empty();
        let s2 = s.extended(v("u"), DataValue::e(1));
        assert!(s.is_empty());
        assert_eq!(s2.len(), 1);
    }

    #[test]
    fn image_and_domain() {
        let s = Substitution::from_pairs([(v("a"), DataValue::e(1)), (v("b"), DataValue::e(1))]);
        assert_eq!(s.image().len(), 1);
        assert_eq!(s.domain().count(), 2);
    }
}
