//! Database instances over a schema and the data domain.

use crate::metrics;
use crate::schema::{RelName, Schema};
use crate::value::{DataValue, Tuple};
use parking_lot::Mutex;
use serde::ser::SerializeStruct;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// One column's hash index: the value at that column → the tuples carrying it there.
type ColumnIndex = HashMap<DataValue, Vec<Tuple>>;

/// The shared storage of one relation: its tuple set plus lazily-built caches.
///
/// A `Relation` is immutable once shared (the instance clones it on first write — see
/// [`Instance`]), so every cache is computed at most once per storage node and is reused by
/// all instances sharing the node:
///
/// * `values` — the sorted distinct data values occurring anywhere in the relation (the
///   relation's contribution to `adom`),
/// * `columns` — the sorted distinct values per column position,
/// * `indexes` — per-column hash indexes from a column's value to the tuples carrying it
///   there, each built independently on first probe of that column,
/// * `content_hash` — a hash of the tuple set, making instance hashing O(#relations),
/// * `canon` — the most recent canonical relabelling of this relation (keyed by where the
///   relation's values map), so that a relation untouched between a configuration and its
///   successor is not re-canonicalised when both are interned.
struct Relation {
    tuples: BTreeSet<Tuple>,
    values: OnceLock<Vec<DataValue>>,
    columns: OnceLock<Vec<Vec<DataValue>>>,
    /// Outer cell: one slot per column position (sized to the widest tuple on first use).
    /// Inner cells: the column's hash index, built only when that column is probed.
    indexes: OnceLock<Vec<OnceLock<ColumnIndex>>>,
    content_hash: OnceLock<u64>,
    canon: Mutex<Option<(Vec<DataValue>, Arc<Relation>)>>,
}

impl Relation {
    fn from_tuples(tuples: BTreeSet<Tuple>) -> Relation {
        Relation {
            tuples,
            values: OnceLock::new(),
            columns: OnceLock::new(),
            indexes: OnceLock::new(),
            content_hash: OnceLock::new(),
            canon: Mutex::new(None),
        }
    }

    fn singleton(tuple: Tuple) -> Relation {
        Relation::from_tuples(BTreeSet::from([tuple]))
    }

    /// Sorted distinct values occurring anywhere in the relation.
    fn values(&self) -> &[DataValue] {
        if let Some(values) = self.values.get() {
            metrics::count_index_hit();
            return values;
        }
        metrics::count_index_build();
        self.values.get_or_init(|| {
            let set: BTreeSet<DataValue> = self.tuples.iter().flatten().copied().collect();
            set.into_iter().collect()
        })
    }

    /// Sorted distinct values at column `col` (empty when no tuple is that wide).
    fn column_values(&self, col: usize) -> &[DataValue] {
        if let Some(columns) = self.columns.get() {
            metrics::count_index_hit();
            return columns.get(col).map(Vec::as_slice).unwrap_or(&[]);
        }
        metrics::count_index_build();
        let columns = self.columns.get_or_init(|| {
            let width = self.tuples.iter().map(Vec::len).max().unwrap_or(0);
            (0..width)
                .map(|c| {
                    let set: BTreeSet<DataValue> = self
                        .tuples
                        .iter()
                        .filter_map(|t| t.get(c))
                        .copied()
                        .collect();
                    set.into_iter().collect()
                })
                .collect()
        });
        columns.get(col).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The tuples whose component at position `col` is `value`. Relations too small to
    /// amortise an index are answered by a filtered scan; larger ones build the column's
    /// hash index once (per shared storage node, per column) and probe it.
    fn with_value_at(&self, col: usize, value: DataValue) -> WithValueAt<'_> {
        if let Some(slots) = self.indexes.get() {
            if let Some(Some(index)) = slots.get(col).map(OnceLock::get) {
                metrics::count_index_hit();
                return WithValueAt::Indexed(
                    index.get(&value).map(Vec::as_slice).unwrap_or(&[]).iter(),
                );
            }
        }
        if self.tuples.len() < COLUMN_INDEX_MIN_TUPLES {
            return WithValueAt::Scan {
                tuples: self.tuples.iter(),
                col,
                value,
            };
        }
        let slots = self.indexes.get_or_init(|| {
            let width = self.tuples.iter().map(Vec::len).max().unwrap_or(0);
            (0..width).map(|_| OnceLock::new()).collect()
        });
        let Some(slot) = slots.get(col) else {
            // no tuple is wide enough for this column: nothing can match
            return WithValueAt::Indexed([].iter());
        };
        if slot.get().is_some() {
            metrics::count_index_hit();
        } else {
            metrics::count_index_build();
        }
        let index = slot.get_or_init(|| {
            let mut index: ColumnIndex = HashMap::new();
            // BTreeSet iteration keeps each bucket sorted, so probes are deterministic
            for tuple in &self.tuples {
                if let Some(&at) = tuple.get(col) {
                    index.entry(at).or_default().push(tuple.clone());
                }
            }
            index
        });
        WithValueAt::Indexed(index.get(&value).map(Vec::as_slice).unwrap_or(&[]).iter())
    }

    /// A hash of the tuple set, cached on the shared storage. Equal tuple sets produce equal
    /// hashes (same iteration order, same hasher), which is what [`Instance`]'s `Hash` needs.
    fn content_hash(&self) -> u64 {
        *self.content_hash.get_or_init(|| {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            hasher.write_usize(self.tuples.len());
            for tuple in &self.tuples {
                tuple.hash(&mut hasher);
            }
            hasher.finish()
        })
    }

    /// This relation with every value `v` replaced by `mapping[v]` (identity outside the
    /// mapping), reusing the cached relabelling when the relevant part of the mapping is
    /// unchanged — the incremental step of canonical-key computation.
    fn map_values_cached(
        self: &Arc<Relation>,
        mapping: &BTreeMap<DataValue, DataValue>,
    ) -> Arc<Relation> {
        let values = self.values();
        // Fast path: the mapping is the identity on every value of this relation.
        if values
            .iter()
            .all(|v| mapping.get(v).is_none_or(|target| target == v))
        {
            metrics::count_index_hit();
            return Arc::clone(self);
        }
        let targets: Vec<DataValue> = values
            .iter()
            .map(|v| mapping.get(v).copied().unwrap_or(*v))
            .collect();
        {
            let cache = self.canon.lock();
            if let Some((cached_targets, mapped)) = cache.as_ref() {
                if *cached_targets == targets {
                    metrics::count_index_hit();
                    return Arc::clone(mapped);
                }
            }
        }
        metrics::count_index_build();
        let mapped: BTreeSet<Tuple> = self
            .tuples
            .iter()
            .map(|tuple| {
                tuple
                    .iter()
                    .map(|v| mapping.get(v).copied().unwrap_or(*v))
                    .collect()
            })
            .collect();
        let mapped = Arc::new(Relation::from_tuples(mapped));
        *self.canon.lock() = Some((targets, Arc::clone(&mapped)));
        mapped
    }
}

impl Relation {
    /// Drop every lazy cache (requires exclusive access). Must precede any mutation of
    /// `tuples` — see [`make_mut`].
    fn reset_caches(&mut self) {
        self.values = OnceLock::new();
        self.columns = OnceLock::new();
        self.indexes = OnceLock::new();
        self.content_hash = OnceLock::new();
        *self.canon.get_mut() = None;
    }
}

impl Clone for Relation {
    /// Cloning drops the caches: the only reason the instance deep-copies a relation is an
    /// impending mutation, after which they would be stale anyway.
    fn clone(&self) -> Relation {
        Relation::from_tuples(self.tuples.clone())
    }
}

/// Minimum tuple count before [`Relation::with_value_at`] builds a column's hash index;
/// below this a filtered scan is cheaper than constructing (and allocating) the index for
/// few probes.
const COLUMN_INDEX_MIN_TUPLES: usize = 16;

/// Iterator over a relation's tuples with a fixed component at one column (see
/// [`Relation::with_value_at`]).
enum WithValueAt<'a> {
    Indexed(std::slice::Iter<'a, Tuple>),
    Scan {
        tuples: std::collections::btree_set::Iter<'a, Tuple>,
        col: usize,
        value: DataValue,
    },
}

impl<'a> Iterator for WithValueAt<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        match self {
            WithValueAt::Indexed(iter) => iter.next(),
            WithValueAt::Scan { tuples, col, value } => {
                tuples.find(|tuple| tuple.get(*col) == Some(value))
            }
        }
    }
}

/// A database instance `I ∈ DB-Inst-Set(R, ∆)`: for every relation name a finite set of
/// tuples over the data domain.
///
/// The representation is deliberately deterministic (`BTreeMap` of sorted tuple sets):
/// instances are hashed and compared when the checker deduplicates configurations modulo
/// isomorphism, and tests rely on stable iteration order.
///
/// # Copy-on-write sharing
///
/// Each relation's tuple set lives behind an [`Arc`]: cloning an instance shares every
/// relation with the original, and a mutation deep-copies only the relation it touches
/// (clone-on-first-write). A successor configuration produced by an action that updates 1 of
/// N relations therefore shares the other N−1 with its parent — together with their
/// lazily-built caches (active-domain values, per-column values, a first-column hash index,
/// a content hash, and the latest canonical relabelling). The sharing is observable only
/// through performance and through [`Instance::shared_relations`]; the value semantics is
/// exactly that of a plain `BTreeMap<RelName, BTreeSet<Tuple>>` (checked by property tests).
///
/// Following the paper:
/// * `I₁ + I₂` is relation-wise union ([`Instance::union`]),
/// * `I₁ − I₂` is relation-wise set difference ([`Instance::difference`]),
/// * `adom(I)` is the set of values occurring in some fact ([`Instance::active_domain`]),
/// * a nullary relation (proposition) `p` is *true* in `I` iff `p() ∈ I`
///   ([`Instance::proposition`]).
#[derive(Default)]
pub struct Instance {
    /// Invariant: no entry maps to an empty tuple set (mirrors the pre-COW representation,
    /// which dropped a relation's entry when its last tuple was removed).
    relations: BTreeMap<RelName, Arc<Relation>>,
}

/// Grant mutable access to `arc`'s relation ahead of a mutation: deep-copy unless this
/// instance is the sole owner, and — either way — drop the lazy caches, which describe the
/// pre-mutation tuple set. (The shared path gets fresh caches from `Relation::clone`; the
/// sole-owner path mutates in place and must reset them explicitly, or stale
/// values/index/hash data would survive the write.)
fn make_mut(arc: &mut Arc<Relation>) -> &mut Relation {
    if Arc::strong_count(arc) > 1 {
        metrics::count_materialized();
    }
    let data = Arc::make_mut(arc);
    data.reset_caches();
    data
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Insert the fact `rel(tuple…)`. Returns `true` if the fact was not already present.
    pub fn insert(&mut self, rel: RelName, tuple: Tuple) -> bool {
        match self.relations.entry(rel) {
            Entry::Vacant(entry) => {
                entry.insert(Arc::new(Relation::singleton(tuple)));
                true
            }
            Entry::Occupied(mut entry) => {
                if entry.get().tuples.contains(&tuple) {
                    return false; // no-op inserts never materialise a shared relation
                }
                make_mut(entry.get_mut()).tuples.insert(tuple)
            }
        }
    }

    /// Insert a fact, checking the tuple's arity against `schema`.
    pub fn insert_checked(
        &mut self,
        schema: &Schema,
        rel: RelName,
        tuple: Tuple,
    ) -> Result<bool, crate::DbError> {
        schema.check_arity(rel, tuple.len())?;
        Ok(self.insert(rel, tuple))
    }

    /// Remove the fact `rel(tuple…)`. Returns `true` if it was present.
    pub fn remove(&mut self, rel: RelName, tuple: &[DataValue]) -> bool {
        let Entry::Occupied(mut entry) = self.relations.entry(rel) else {
            return false;
        };
        if !entry.get().tuples.contains(tuple) {
            return false; // no-op removals never materialise a shared relation
        }
        if entry.get().tuples.len() == 1 {
            // removing the last tuple drops the relation entry entirely
            entry.remove();
            return true;
        }
        make_mut(entry.get_mut()).tuples.remove(tuple)
    }

    /// Set the truth value of a proposition (nullary relation).
    pub fn set_proposition(&mut self, rel: RelName, value: bool) {
        if value {
            self.insert(rel, vec![]);
        } else {
            self.remove(rel, &[]);
        }
    }

    /// Whether the proposition `rel` is true (`rel() ∈ I`).
    pub fn proposition(&self, rel: RelName) -> bool {
        self.contains(rel, &[])
    }

    /// Whether the fact `rel(tuple…)` is present.
    pub fn contains(&self, rel: RelName, tuple: &[DataValue]) -> bool {
        self.relations
            .get(&rel)
            .map(|data| data.tuples.contains(tuple))
            .unwrap_or(false)
    }

    /// The tuples of relation `rel` (empty iterator if the relation has no tuples).
    pub fn relation(&self, rel: RelName) -> impl Iterator<Item = &Tuple> + '_ {
        self.relations
            .get(&rel)
            .into_iter()
            .flat_map(|data| data.tuples.iter())
    }

    /// The tuples of `rel` whose **first** component is `value` — shorthand for
    /// [`Self::relation_with_value_at`] at column 0.
    pub fn relation_with_first(
        &self,
        rel: RelName,
        value: DataValue,
    ) -> impl Iterator<Item = &Tuple> + '_ {
        self.relation_with_value_at(rel, 0, value)
    }

    /// The tuples of `rel` whose component at position `col` is `value`, answered through a
    /// lazily built (and `Arc`-shared) per-column hash index. Query evaluation uses this to
    /// answer atoms with a bound term at **any** position by index probe instead of scanning
    /// the whole relation.
    pub fn relation_with_value_at(
        &self,
        rel: RelName,
        col: usize,
        value: DataValue,
    ) -> impl Iterator<Item = &Tuple> + '_ {
        self.relations
            .get(&rel)
            .map(|data| data.with_value_at(col, value))
            .into_iter()
            .flatten()
    }

    /// The sorted distinct values occurring at column `col` of `rel` (cached on the shared
    /// relation storage). Quantifier evaluation uses this to restrict a bound variable's
    /// range to the values that can actually satisfy an atom.
    pub fn column_values(&self, rel: RelName, col: usize) -> &[DataValue] {
        self.relations
            .get(&rel)
            .map(|data| data.column_values(col))
            .unwrap_or(&[])
    }

    /// The sorted distinct values occurring anywhere in `rel` (cached on the shared storage).
    pub fn relation_values(&self, rel: RelName) -> &[DataValue] {
        self.relations
            .get(&rel)
            .map(|data| data.values())
            .unwrap_or(&[])
    }

    /// The number of tuples in relation `rel`.
    pub fn relation_size(&self, rel: RelName) -> usize {
        self.relations
            .get(&rel)
            .map(|data| data.tuples.len())
            .unwrap_or(0)
    }

    /// Iterate over all facts as `(relation, tuple)` pairs, deterministically.
    pub fn facts(&self) -> impl Iterator<Item = (RelName, &Tuple)> + '_ {
        self.relations
            .iter()
            .flat_map(|(&rel, data)| data.tuples.iter().map(move |t| (rel, t)))
    }

    /// The relation names that have at least one tuple in this instance.
    pub fn populated_relations(&self) -> impl Iterator<Item = RelName> + '_ {
        self.relations.keys().copied()
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.relations.values().map(|data| data.tuples.len()).sum()
    }

    /// Whether the instance contains no facts.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The active domain `adom(I)`: every data value occurring in some fact.
    ///
    /// Uses a relation's cached value vector when one has already been built, but does not
    /// *force* the caches: on a freshly materialised relation that is queried once, a direct
    /// fact scan is cheaper than building the cache it would never reuse.
    pub fn active_domain(&self) -> BTreeSet<DataValue> {
        let mut adom = BTreeSet::new();
        for data in self.relations.values() {
            match data.values.get() {
                Some(values) => adom.extend(values.iter().copied()),
                None => {
                    for tuple in &data.tuples {
                        adom.extend(tuple.iter().copied());
                    }
                }
            }
        }
        adom
    }

    /// Whether `value ∈ adom(I)`, i.e. the value occurs in some fact (the paper's
    /// `Active(u)` query of Example 2.1 characterises exactly this set).
    pub fn is_active(&self, value: DataValue) -> bool {
        self.relations
            .values()
            .any(|data| data.values().binary_search(&value).is_ok())
    }

    /// The largest value in `adom(I)`, if any — answered without materialising the whole
    /// active domain (and without forcing the per-relation caches).
    pub fn max_value(&self) -> Option<DataValue> {
        self.relations
            .values()
            .filter_map(|data| match data.values.get() {
                Some(values) => values.last().copied(),
                None => data.tuples.iter().flatten().max().copied(),
            })
            .max()
    }

    /// How many relations of `self` share their storage with `other` (i.e. point at the
    /// same `Arc` node). Diagnostic for the copy-on-write representation.
    pub fn shared_relations(&self, other: &Instance) -> usize {
        self.relations
            .iter()
            .filter(|(rel, data)| {
                other
                    .relations
                    .get(rel)
                    .is_some_and(|theirs| Arc::ptr_eq(data, theirs))
            })
            .count()
    }

    /// Relation-wise union `I₁ + I₂`. Relations absent from `self` are shared with `other`
    /// rather than copied; relations whose tuples are already all present stay shared with
    /// `self`.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut result = self.clone();
        for (&rel, data) in &other.relations {
            match result.relations.entry(rel) {
                Entry::Vacant(entry) => {
                    entry.insert(Arc::clone(data));
                }
                Entry::Occupied(mut entry) => {
                    if Arc::ptr_eq(entry.get(), data) {
                        continue;
                    }
                    let missing: Vec<Tuple> = data
                        .tuples
                        .difference(&entry.get().tuples)
                        .cloned()
                        .collect();
                    if missing.is_empty() {
                        continue;
                    }
                    let target = make_mut(entry.get_mut());
                    target.tuples.extend(missing);
                }
            }
        }
        result
    }

    /// Relation-wise difference `I₁ − I₂`. Relations with no tuple to remove stay shared
    /// with `self`.
    pub fn difference(&self, other: &Instance) -> Instance {
        let mut result = self.clone();
        for (&rel, data) in &other.relations {
            let Entry::Occupied(mut entry) = result.relations.entry(rel) else {
                continue;
            };
            let present: Vec<&Tuple> = data
                .tuples
                .iter()
                .filter(|t| entry.get().tuples.contains(*t))
                .collect();
            if present.is_empty() {
                continue;
            }
            if present.len() == entry.get().tuples.len() {
                entry.remove();
                continue;
            }
            let present: Vec<Tuple> = present.into_iter().cloned().collect();
            let target = make_mut(entry.get_mut());
            for tuple in &present {
                target.tuples.remove(tuple);
            }
        }
        result
    }

    /// Apply the paper's action update `I' = (I − Del) + Add` in one step.
    pub fn apply_update(&self, del: &Instance, add: &Instance) -> Instance {
        self.difference(del).union(add)
    }

    /// Build an instance from a list of facts.
    pub fn from_facts<I>(facts: I) -> Instance
    where
        I: IntoIterator<Item = (RelName, Tuple)>,
    {
        let mut inst = Instance::new();
        for (rel, tuple) in facts {
            inst.insert(rel, tuple);
        }
        inst
    }

    fn from_relation_sets(relations: BTreeMap<RelName, BTreeSet<Tuple>>) -> Instance {
        Instance {
            relations: relations
                .into_iter()
                .filter(|(_, tuples)| !tuples.is_empty())
                .map(|(rel, tuples)| (rel, Arc::new(Relation::from_tuples(tuples))))
                .collect(),
        }
    }

    /// Rename every data value through `f` (used for isomorphism checks and canonicalisation).
    pub fn map_values<F: Fn(DataValue) -> DataValue>(&self, f: F) -> Instance {
        let mut inst = Instance::new();
        for (rel, tuple) in self.facts() {
            inst.insert(rel, tuple.iter().map(|&v| f(v)).collect());
        }
        inst
    }

    /// Rename every value through `mapping` (identity outside it), **reusing shared
    /// storage**: a relation whose values the mapping leaves fixed is shared as-is, and a
    /// relation relabelled the same way as on the previous call reuses its cached
    /// relabelling. This is the incremental step behind canonical configuration keys — a
    /// successor that touched 1 of N relations re-canonicalises at most that one relation
    /// (plus any whose value *ranks* shifted).
    pub fn map_values_shared(&self, mapping: &BTreeMap<DataValue, DataValue>) -> Instance {
        Instance {
            relations: self
                .relations
                .iter()
                .map(|(&rel, data)| (rel, data.map_values_cached(mapping)))
                .collect(),
        }
    }

    /// Check every fact's arity against `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<(), crate::DbError> {
        for (rel, tuple) in self.facts() {
            schema.check_arity(rel, tuple.len())?;
        }
        Ok(())
    }
}

impl crate::heap::HeapSize for Relation {
    /// Charges the primary tuple storage only: the lazy caches (values, columns, indexes,
    /// content hash, canonical relabelling) are reconstructible, bounded by that storage,
    /// and dropped on mutation — see the estimation contract in [`crate::heap`].
    fn heap_size(&self) -> usize {
        crate::heap::btree_set_of_tuples(&self.tuples)
    }
}

impl crate::heap::HeapSize for Instance {
    /// Per relation entry: the map overhead, the `Arc` header, and the relation's tuple
    /// storage. Shared relations are charged to every holding instance (upper bound).
    fn heap_size(&self) -> usize {
        use crate::heap::{ARC_HEADER, BTREE_ENTRY_OVERHEAD};
        self.relations
            .values()
            .map(|data| {
                BTREE_ENTRY_OVERHEAD
                    + std::mem::size_of::<(RelName, Arc<Relation>)>()
                    + ARC_HEADER
                    + std::mem::size_of::<Relation>()
                    + data.as_ref().heap_size()
            })
            .sum()
    }
}

impl Clone for Instance {
    fn clone(&self) -> Instance {
        metrics::count_shared(self.relations.len() as u64);
        Instance {
            relations: self.relations.clone(),
        }
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Instance) -> bool {
        if self.relations.len() != other.relations.len() {
            return false;
        }
        self.relations
            .iter()
            .zip(other.relations.iter())
            .all(|((rel_a, a), (rel_b, b))| {
                rel_a == rel_b && (Arc::ptr_eq(a, b) || a.tuples == b.tuples)
            })
    }
}

impl Eq for Instance {}

impl PartialOrd for Instance {
    fn partial_cmp(&self, other: &Instance) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Instance {
    /// Lexicographic over `(relation, tuple set)` pairs — identical to the ordering of the
    /// pre-COW `BTreeMap<RelName, BTreeSet<Tuple>>` representation.
    fn cmp(&self, other: &Instance) -> std::cmp::Ordering {
        self.relations
            .iter()
            .map(|(&rel, data)| (rel, &data.tuples))
            .cmp(
                other
                    .relations
                    .iter()
                    .map(|(&rel, data)| (rel, &data.tuples)),
            )
    }
}

impl Hash for Instance {
    /// Hashes the cached per-relation content hashes, so re-hashing an instance whose
    /// relations are shared with an already-hashed one is O(#relations), not O(#facts).
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.relations.len());
        for (rel, data) in &self.relations {
            rel.hash(state);
            state.write_u64(data.content_hash());
        }
    }
}

impl Serialize for Instance {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // same wire shape as the old derived impl: a struct with a "relations" map
        let relations: BTreeMap<RelName, &BTreeSet<Tuple>> = self
            .relations
            .iter()
            .map(|(&rel, data)| (rel, &data.tuples))
            .collect();
        let mut state = serializer.serialize_struct("Instance", 1)?;
        state.serialize_field("relations", &relations)?;
        state.end()
    }
}

impl<'de> Deserialize<'de> for Instance {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error;
        let value = deserializer.into_value()?;
        let entries = value
            .as_map()
            .ok_or_else(|| D::Error::custom("expected a map for struct Instance"))?;
        let relations = entries
            .iter()
            .find(|(key, _)| key == "relations")
            .map(|(_, v)| v.clone())
            .ok_or_else(|| D::Error::custom("missing field `relations`"))?;
        let relations = BTreeMap::<RelName, BTreeSet<Tuple>>::deserialize(relations)
            .map_err(D::Error::custom)?;
        // empty tuple sets are normalised away (the in-memory invariant)
        Ok(Instance::from_relation_sets(relations))
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (rel, data) in &self.relations {
            for tuple in &data.tuples {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                if tuple.is_empty() {
                    write!(f, "{rel}")?;
                } else {
                    let args: Vec<String> = tuple.iter().map(|v| v.to_string()).collect();
                    write!(f, "{rel}({})", args.join(","))?;
                }
            }
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str) -> RelName {
        RelName::new(name)
    }

    fn e(i: u64) -> DataValue {
        DataValue::e(i)
    }

    #[test]
    fn insert_remove_contains() {
        let mut i = Instance::new();
        assert!(i.is_empty());
        assert!(i.insert(r("R"), vec![e(1), e(2)]));
        assert!(!i.insert(r("R"), vec![e(1), e(2)]));
        assert!(i.contains(r("R"), &[e(1), e(2)]));
        assert!(!i.contains(r("R"), &[e(2), e(1)]));
        assert_eq!(i.len(), 1);
        assert!(i.remove(r("R"), &[e(1), e(2)]));
        assert!(!i.remove(r("R"), &[e(1), e(2)]));
        assert!(i.is_empty());
        // removing the last tuple drops the relation entry entirely
        assert_eq!(i.populated_relations().count(), 0);
    }

    #[test]
    fn propositions() {
        let mut i = Instance::new();
        assert!(!i.proposition(r("p")));
        i.set_proposition(r("p"), true);
        assert!(i.proposition(r("p")));
        assert_eq!(i.len(), 1);
        // a proposition contributes nothing to the active domain
        assert!(i.active_domain().is_empty());
        i.set_proposition(r("p"), false);
        assert!(!i.proposition(r("p")));
        assert!(i.is_empty());
    }

    #[test]
    fn active_domain() {
        let i = Instance::from_facts([
            (r("R"), vec![e(1), e(2)]),
            (r("Q"), vec![e(2)]),
            (r("p"), vec![]),
        ]);
        let adom = i.active_domain();
        assert_eq!(adom, BTreeSet::from([e(1), e(2)]));
        assert!(i.is_active(e(1)));
        assert!(!i.is_active(e(3)));
    }

    #[test]
    fn union_and_difference_follow_the_paper() {
        let i1 = Instance::from_facts([(r("R"), vec![e(1)]), (r("R"), vec![e(2)])]);
        let i2 = Instance::from_facts([(r("R"), vec![e(2)]), (r("Q"), vec![e(3)])]);

        let u = i1.union(&i2);
        assert_eq!(u.len(), 3);
        assert!(u.contains(r("R"), &[e(1)]));
        assert!(u.contains(r("R"), &[e(2)]));
        assert!(u.contains(r("Q"), &[e(3)]));

        let d = i1.difference(&i2);
        assert_eq!(d.len(), 1);
        assert!(d.contains(r("R"), &[e(1)]));
        assert!(!d.contains(r("R"), &[e(2)]));

        // difference with something not present is a no-op
        let d2 = i1.difference(&Instance::from_facts([(r("Z"), vec![e(9)])]));
        assert_eq!(d2, i1);
    }

    #[test]
    fn apply_update_add_wins_over_del() {
        // The paper defines I' = (I − Del) + Add, so a fact both deleted and added survives.
        let i = Instance::from_facts([(r("R"), vec![e(1)])]);
        let del = Instance::from_facts([(r("R"), vec![e(1)])]);
        let add = Instance::from_facts([(r("R"), vec![e(1)])]);
        let next = i.apply_update(&del, &add);
        assert!(next.contains(r("R"), &[e(1)]));
    }

    #[test]
    fn relation_iteration_and_size() {
        let i = Instance::from_facts([
            (r("R"), vec![e(1)]),
            (r("R"), vec![e(2)]),
            (r("Q"), vec![e(3)]),
        ]);
        assert_eq!(i.relation_size(r("R")), 2);
        assert_eq!(i.relation_size(r("Z")), 0);
        assert_eq!(i.relation(r("R")).count(), 2);
        assert_eq!(i.facts().count(), 3);
    }

    #[test]
    fn map_values_renames() {
        let i = Instance::from_facts([(r("R"), vec![e(1), e(2)])]);
        let j = i.map_values(|v| DataValue(v.0 + 10));
        assert!(j.contains(r("R"), &[e(11), e(12)]));
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn validate_against_schema() {
        let schema = Schema::with_relations(&[("R", 2), ("p", 0)]);
        let ok = Instance::from_facts([(r("R"), vec![e(1), e(2)]), (r("p"), vec![])]);
        assert!(ok.validate(&schema).is_ok());

        let bad_arity = Instance::from_facts([(r("R"), vec![e(1)])]);
        assert!(bad_arity.validate(&schema).is_err());

        let unknown = Instance::from_facts([(r("S"), vec![e(1)])]);
        assert!(unknown.validate(&schema).is_err());
    }

    #[test]
    fn display_is_compact() {
        let i = Instance::from_facts([(r("R"), vec![e(1)]), (r("p"), vec![])]);
        let s = format!("{i}");
        assert!(s.contains("R(e1)"));
        assert!(s.contains('p'));
    }

    #[test]
    fn insert_checked_respects_schema() {
        let schema = Schema::with_relations(&[("R", 1)]);
        let mut i = Instance::new();
        assert!(i.insert_checked(&schema, r("R"), vec![e(1)]).is_ok());
        assert!(i.insert_checked(&schema, r("R"), vec![e(1), e(2)]).is_err());
        assert!(i.insert_checked(&schema, r("Nope"), vec![e(1)]).is_err());
    }

    // -------------------------------------------------------------------------------------
    // copy-on-write representation
    // -------------------------------------------------------------------------------------

    #[test]
    fn clones_share_storage_until_written() {
        let mut i = Instance::from_facts([
            (r("A"), vec![e(1)]),
            (r("B"), vec![e(2)]),
            (r("C"), vec![e(3)]),
        ]);
        let snapshot = i.clone();
        assert_eq!(i.shared_relations(&snapshot), 3);

        // writing one relation materialises only that one
        i.insert(r("B"), vec![e(9)]);
        assert_eq!(i.shared_relations(&snapshot), 2);
        assert!(snapshot.contains(r("B"), &[e(2)]));
        assert!(!snapshot.contains(r("B"), &[e(9)]));
        assert!(i.contains(r("B"), &[e(2)]));

        // no-op writes keep sharing intact
        let again = i.clone();
        i.insert(r("A"), vec![e(1)]);
        i.remove(r("C"), &[e(99)]);
        assert_eq!(i.shared_relations(&again), 3);
    }

    #[test]
    fn union_and_difference_share_untouched_relations() {
        let base = Instance::from_facts([(r("A"), vec![e(1)]), (r("B"), vec![e(2)])]);
        let add = Instance::from_facts([(r("C"), vec![e(3)])]);
        let u = base.union(&add);
        assert_eq!(u.shared_relations(&base), 2);
        assert_eq!(u.shared_relations(&add), 1);

        let del = Instance::from_facts([(r("B"), vec![e(2)])]);
        let d = base.difference(&del);
        assert_eq!(d.shared_relations(&base), 1);
        assert!(!d.contains(r("B"), &[e(2)]));
    }

    #[test]
    fn equality_hash_and_ordering_ignore_sharing() {
        use std::collections::hash_map::DefaultHasher;
        let a = Instance::from_facts([(r("R"), vec![e(1)]), (r("Q"), vec![e(2)])]);
        let b = a.clone(); // shares storage
        let c = Instance::from_facts([(r("Q"), vec![e(2)]), (r("R"), vec![e(1)])]); // rebuilt
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.cmp(&c), std::cmp::Ordering::Equal);
        let hash = |i: &Instance| {
            let mut h = DefaultHasher::new();
            i.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        assert_eq!(hash(&a), hash(&c));

        let d = Instance::from_facts([(r("R"), vec![e(1)])]);
        assert_ne!(a, d);
        // ordering is total and antisymmetric, exactly as the value representation's
        assert_ne!(a.cmp(&d), std::cmp::Ordering::Equal);
        assert_eq!(a.cmp(&d), d.cmp(&a).reverse());
    }

    #[test]
    fn mutating_a_sole_owner_resets_warm_caches() {
        use std::collections::hash_map::DefaultHasher;
        // warm every cache on an unshared relation, then mutate in place: the caches must
        // be rebuilt, not served stale (regression test — Arc::make_mut does not clone for
        // a sole owner, so the reset must be explicit)
        let mut i = Instance::from_facts([(r("R"), vec![e(1), e(5)])]);
        assert!(i.is_active(e(1))); // warms `values`
        assert_eq!(i.column_values(r("R"), 0), &[e(1)]); // warms `columns`
        assert_eq!(i.relation_with_first(r("R"), e(1)).count(), 1);
        let hash = |inst: &Instance| {
            let mut h = DefaultHasher::new();
            inst.hash(&mut h);
            h.finish()
        };
        let _ = hash(&i); // warms `content_hash`

        i.insert(r("R"), vec![e(2), e(6)]);
        assert!(i.is_active(e(2)));
        assert_eq!(i.column_values(r("R"), 0), &[e(1), e(2)]);
        assert_eq!(i.relation_values(r("R")), &[e(1), e(2), e(5), e(6)]);
        assert_eq!(i.max_value(), Some(e(6)));
        let rebuilt =
            Instance::from_facts([(r("R"), vec![e(1), e(5)]), (r("R"), vec![e(2), e(6)])]);
        assert_eq!(
            hash(&i),
            hash(&rebuilt),
            "content hash must track the mutation"
        );

        i.remove(r("R"), &[e(1), e(5)]);
        assert!(!i.is_active(e(1)));
        assert_eq!(i.column_values(r("R"), 0), &[e(2)]);
        let rebuilt = Instance::from_facts([(r("R"), vec![e(2), e(6)])]);
        assert_eq!(hash(&i), hash(&rebuilt));
    }

    #[test]
    fn first_column_index_and_column_values() {
        let i = Instance::from_facts([
            (r("S"), vec![e(1), e(2)]),
            (r("S"), vec![e(1), e(3)]),
            (r("S"), vec![e(2), e(3)]),
        ]);
        let hits: Vec<&Tuple> = i.relation_with_first(r("S"), e(1)).collect();
        assert_eq!(hits, vec![&vec![e(1), e(2)], &vec![e(1), e(3)]]);
        assert_eq!(i.relation_with_first(r("S"), e(9)).count(), 0);
        assert_eq!(i.relation_with_first(r("Zzz"), e(1)).count(), 0);

        assert_eq!(i.column_values(r("S"), 0), &[e(1), e(2)]);
        assert_eq!(i.column_values(r("S"), 1), &[e(2), e(3)]);
        assert!(i.column_values(r("S"), 2).is_empty());
        assert_eq!(i.relation_values(r("S")), &[e(1), e(2), e(3)]);
    }

    #[test]
    fn non_first_column_index_probes_agree_with_scans() {
        // small relation (scan path) and large relation (indexed path) must answer column
        // probes identically
        let mut small = Instance::new();
        small.insert(r("S"), vec![e(1), e(7)]);
        small.insert(r("S"), vec![e(2), e(7)]);
        small.insert(r("S"), vec![e(3), e(8)]);
        let hits: Vec<&Tuple> = small.relation_with_value_at(r("S"), 1, e(7)).collect();
        assert_eq!(hits, vec![&vec![e(1), e(7)], &vec![e(2), e(7)]]);
        assert_eq!(small.relation_with_value_at(r("S"), 1, e(9)).count(), 0);
        assert_eq!(small.relation_with_value_at(r("S"), 5, e(7)).count(), 0);
        assert_eq!(small.relation_with_value_at(r("Zzz"), 1, e(7)).count(), 0);

        let mut large = Instance::new();
        for i in 0..40u64 {
            large.insert(r("T"), vec![e(i), e(i % 4), e(100 + i)]);
        }
        for col in 0..3 {
            for probe in [e(0), e(2), e(17), e(105), e(999)] {
                let indexed: Vec<&Tuple> =
                    large.relation_with_value_at(r("T"), col, probe).collect();
                let scanned: Vec<&Tuple> = large
                    .relation(r("T"))
                    .filter(|t| t.get(col) == Some(&probe))
                    .collect();
                assert_eq!(indexed, scanned, "col {col} probe {probe}");
            }
        }
        // a probe past every tuple's width finds nothing (and must not panic)
        assert_eq!(large.relation_with_value_at(r("T"), 3, e(0)).count(), 0);
    }

    #[test]
    fn column_indexes_track_mutation() {
        let mut i = Instance::new();
        for k in 0..20u64 {
            i.insert(r("R"), vec![e(k), e(k % 2)]);
        }
        assert_eq!(i.relation_with_value_at(r("R"), 1, e(0)).count(), 10);
        i.insert(r("R"), vec![e(100), e(0)]);
        assert_eq!(i.relation_with_value_at(r("R"), 1, e(0)).count(), 11);
        i.remove(r("R"), &[e(100), e(0)]);
        assert_eq!(i.relation_with_value_at(r("R"), 1, e(0)).count(), 10);
    }

    #[test]
    fn map_values_shared_agrees_with_map_values() {
        let i = Instance::from_facts([
            (r("R"), vec![e(1), e(2)]),
            (r("Q"), vec![e(3)]),
            (r("p"), vec![]),
        ]);
        let mapping = BTreeMap::from([(e(1), e(10)), (e(2), e(20))]);
        let shared = i.map_values_shared(&mapping);
        let scratch = i.map_values(|v| mapping.get(&v).copied().unwrap_or(v));
        assert_eq!(shared, scratch);
        // Q and p are untouched by the mapping: their storage is shared with the original
        assert_eq!(shared.shared_relations(&i), 2);
        // a second identical mapping reuses the cached relabelling of R
        let again = i.map_values_shared(&mapping);
        assert_eq!(again, scratch);
        assert_eq!(again.shared_relations(&shared), 3);
    }

    #[test]
    fn serde_round_trip_preserves_facts() {
        let i = Instance::from_facts([
            (r("R"), vec![e(1), e(2)]),
            (r("Q"), vec![e(3)]),
            (r("p"), vec![]),
        ]);
        let value = serde::value::to_value(&i).unwrap();
        let back = Instance::deserialize(value).unwrap();
        assert_eq!(back, i);
    }
}
