//! Database instances over a schema and the data domain.

use crate::schema::{RelName, Schema};
use crate::value::{DataValue, Tuple};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A database instance `I ∈ DB-Inst-Set(R, ∆)`: for every relation name a finite set of
/// tuples over the data domain.
///
/// The representation is deliberately deterministic (`BTreeMap` / `BTreeSet`): instances are
/// hashed and compared when the checker deduplicates configurations modulo isomorphism, and
/// tests rely on stable iteration order.
///
/// Following the paper:
/// * `I₁ + I₂` is relation-wise union ([`Instance::union`]),
/// * `I₁ − I₂` is relation-wise set difference ([`Instance::difference`]),
/// * `adom(I)` is the set of values occurring in some fact ([`Instance::active_domain`]),
/// * a nullary relation (proposition) `p` is *true* in `I` iff `p() ∈ I`
///   ([`Instance::proposition`]).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Instance {
    relations: BTreeMap<RelName, BTreeSet<Tuple>>,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Insert the fact `rel(tuple…)`. Returns `true` if the fact was not already present.
    pub fn insert(&mut self, rel: RelName, tuple: Tuple) -> bool {
        self.relations.entry(rel).or_default().insert(tuple)
    }

    /// Insert a fact, checking the tuple's arity against `schema`.
    pub fn insert_checked(
        &mut self,
        schema: &Schema,
        rel: RelName,
        tuple: Tuple,
    ) -> Result<bool, crate::DbError> {
        schema.check_arity(rel, tuple.len())?;
        Ok(self.insert(rel, tuple))
    }

    /// Remove the fact `rel(tuple…)`. Returns `true` if it was present.
    pub fn remove(&mut self, rel: RelName, tuple: &[DataValue]) -> bool {
        let mut emptied = false;
        let removed = match self.relations.get_mut(&rel) {
            Some(set) => {
                let r = set.remove(tuple);
                emptied = set.is_empty();
                r
            }
            None => false,
        };
        if emptied {
            self.relations.remove(&rel);
        }
        removed
    }

    /// Whether the fact `rel(tuple…)` is present.
    pub fn contains(&self, rel: RelName, tuple: &[DataValue]) -> bool {
        self.relations
            .get(&rel)
            .map(|set| set.contains(tuple))
            .unwrap_or(false)
    }

    /// Set the truth value of a proposition (nullary relation).
    pub fn set_proposition(&mut self, rel: RelName, value: bool) {
        if value {
            self.insert(rel, vec![]);
        } else {
            self.remove(rel, &[]);
        }
    }

    /// Whether the proposition `rel` is true (`rel() ∈ I`).
    pub fn proposition(&self, rel: RelName) -> bool {
        self.contains(rel, &[])
    }

    /// The tuples of relation `rel` (empty slice view if the relation has no tuples).
    pub fn relation(&self, rel: RelName) -> impl Iterator<Item = &Tuple> + '_ {
        self.relations.get(&rel).into_iter().flatten()
    }

    /// The number of tuples in relation `rel`.
    pub fn relation_size(&self, rel: RelName) -> usize {
        self.relations.get(&rel).map(|s| s.len()).unwrap_or(0)
    }

    /// Iterate over all facts as `(relation, tuple)` pairs, deterministically.
    pub fn facts(&self) -> impl Iterator<Item = (RelName, &Tuple)> + '_ {
        self.relations
            .iter()
            .flat_map(|(&rel, tuples)| tuples.iter().map(move |t| (rel, t)))
    }

    /// The relation names that have at least one tuple in this instance.
    pub fn populated_relations(&self) -> impl Iterator<Item = RelName> + '_ {
        self.relations.keys().copied()
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.relations.values().map(|s| s.len()).sum()
    }

    /// Whether the instance contains no facts.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(|s| s.is_empty())
    }

    /// The active domain `adom(I)`: every data value occurring in some fact.
    pub fn active_domain(&self) -> BTreeSet<DataValue> {
        let mut adom = BTreeSet::new();
        for (_, tuple) in self.facts() {
            adom.extend(tuple.iter().copied());
        }
        adom
    }

    /// Whether `value ∈ adom(I)`, i.e. the value occurs in some fact (the paper's
    /// `Active(u)` query of Example 2.1 characterises exactly this set).
    pub fn is_active(&self, value: DataValue) -> bool {
        self.facts().any(|(_, tuple)| tuple.contains(&value))
    }

    /// Relation-wise union `I₁ + I₂`.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut result = self.clone();
        for (rel, tuple) in other.facts() {
            result.insert(rel, tuple.clone());
        }
        result
    }

    /// Relation-wise difference `I₁ − I₂`.
    pub fn difference(&self, other: &Instance) -> Instance {
        let mut result = self.clone();
        for (rel, tuple) in other.facts() {
            result.remove(rel, tuple);
        }
        result
    }

    /// Apply the paper's action update `I' = (I − Del) + Add` in one step.
    pub fn apply_update(&self, del: &Instance, add: &Instance) -> Instance {
        self.difference(del).union(add)
    }

    /// Build an instance from a list of facts.
    pub fn from_facts<I>(facts: I) -> Instance
    where
        I: IntoIterator<Item = (RelName, Tuple)>,
    {
        let mut inst = Instance::new();
        for (rel, tuple) in facts {
            inst.insert(rel, tuple);
        }
        inst
    }

    /// Rename every data value through `f` (used for isomorphism checks and canonicalisation).
    pub fn map_values<F: Fn(DataValue) -> DataValue>(&self, f: F) -> Instance {
        let mut inst = Instance::new();
        for (rel, tuple) in self.facts() {
            inst.insert(rel, tuple.iter().map(|&v| f(v)).collect());
        }
        inst
    }

    /// Check every fact's arity against `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<(), crate::DbError> {
        for (rel, tuple) in self.facts() {
            schema.check_arity(rel, tuple.len())?;
        }
        Ok(())
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (rel, tuples) in &self.relations {
            for tuple in tuples {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                if tuple.is_empty() {
                    write!(f, "{rel}")?;
                } else {
                    let args: Vec<String> = tuple.iter().map(|v| v.to_string()).collect();
                    write!(f, "{rel}({})", args.join(","))?;
                }
            }
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str) -> RelName {
        RelName::new(name)
    }

    fn e(i: u64) -> DataValue {
        DataValue::e(i)
    }

    #[test]
    fn insert_remove_contains() {
        let mut i = Instance::new();
        assert!(i.is_empty());
        assert!(i.insert(r("R"), vec![e(1), e(2)]));
        assert!(!i.insert(r("R"), vec![e(1), e(2)]));
        assert!(i.contains(r("R"), &[e(1), e(2)]));
        assert!(!i.contains(r("R"), &[e(2), e(1)]));
        assert_eq!(i.len(), 1);
        assert!(i.remove(r("R"), &[e(1), e(2)]));
        assert!(!i.remove(r("R"), &[e(1), e(2)]));
        assert!(i.is_empty());
        // removing the last tuple drops the relation entry entirely
        assert_eq!(i.populated_relations().count(), 0);
    }

    #[test]
    fn propositions() {
        let mut i = Instance::new();
        assert!(!i.proposition(r("p")));
        i.set_proposition(r("p"), true);
        assert!(i.proposition(r("p")));
        assert_eq!(i.len(), 1);
        // a proposition contributes nothing to the active domain
        assert!(i.active_domain().is_empty());
        i.set_proposition(r("p"), false);
        assert!(!i.proposition(r("p")));
        assert!(i.is_empty());
    }

    #[test]
    fn active_domain() {
        let i = Instance::from_facts([
            (r("R"), vec![e(1), e(2)]),
            (r("Q"), vec![e(2)]),
            (r("p"), vec![]),
        ]);
        let adom = i.active_domain();
        assert_eq!(adom, BTreeSet::from([e(1), e(2)]));
        assert!(i.is_active(e(1)));
        assert!(!i.is_active(e(3)));
    }

    #[test]
    fn union_and_difference_follow_the_paper() {
        let i1 = Instance::from_facts([(r("R"), vec![e(1)]), (r("R"), vec![e(2)])]);
        let i2 = Instance::from_facts([(r("R"), vec![e(2)]), (r("Q"), vec![e(3)])]);

        let u = i1.union(&i2);
        assert_eq!(u.len(), 3);
        assert!(u.contains(r("R"), &[e(1)]));
        assert!(u.contains(r("R"), &[e(2)]));
        assert!(u.contains(r("Q"), &[e(3)]));

        let d = i1.difference(&i2);
        assert_eq!(d.len(), 1);
        assert!(d.contains(r("R"), &[e(1)]));
        assert!(!d.contains(r("R"), &[e(2)]));

        // difference with something not present is a no-op
        let d2 = i1.difference(&Instance::from_facts([(r("Z"), vec![e(9)])]));
        assert_eq!(d2, i1);
    }

    #[test]
    fn apply_update_add_wins_over_del() {
        // The paper defines I' = (I − Del) + Add, so a fact both deleted and added survives.
        let i = Instance::from_facts([(r("R"), vec![e(1)])]);
        let del = Instance::from_facts([(r("R"), vec![e(1)])]);
        let add = Instance::from_facts([(r("R"), vec![e(1)])]);
        let next = i.apply_update(&del, &add);
        assert!(next.contains(r("R"), &[e(1)]));
    }

    #[test]
    fn relation_iteration_and_size() {
        let i = Instance::from_facts([
            (r("R"), vec![e(1)]),
            (r("R"), vec![e(2)]),
            (r("Q"), vec![e(3)]),
        ]);
        assert_eq!(i.relation_size(r("R")), 2);
        assert_eq!(i.relation_size(r("Z")), 0);
        assert_eq!(i.relation(r("R")).count(), 2);
        assert_eq!(i.facts().count(), 3);
    }

    #[test]
    fn map_values_renames() {
        let i = Instance::from_facts([(r("R"), vec![e(1), e(2)])]);
        let j = i.map_values(|v| DataValue(v.0 + 10));
        assert!(j.contains(r("R"), &[e(11), e(12)]));
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn validate_against_schema() {
        let schema = Schema::with_relations(&[("R", 2), ("p", 0)]);
        let ok = Instance::from_facts([(r("R"), vec![e(1), e(2)]), (r("p"), vec![])]);
        assert!(ok.validate(&schema).is_ok());

        let bad_arity = Instance::from_facts([(r("R"), vec![e(1)])]);
        assert!(bad_arity.validate(&schema).is_err());

        let unknown = Instance::from_facts([(r("S"), vec![e(1)])]);
        assert!(unknown.validate(&schema).is_err());
    }

    #[test]
    fn display_is_compact() {
        let i = Instance::from_facts([(r("R"), vec![e(1)]), (r("p"), vec![])]);
        let s = format!("{i}");
        assert!(s.contains("R(e1)"));
        assert!(s.contains('p'));
    }

    #[test]
    fn insert_checked_respects_schema() {
        let schema = Schema::with_relations(&[("R", 1)]);
        let mut i = Instance::new();
        assert!(i.insert_checked(&schema, r("R"), vec![e(1)]).is_ok());
        assert!(i.insert_checked(&schema, r("R"), vec![e(1), e(2)]).is_err());
        assert!(i.insert_checked(&schema, r("Nope"), vec![e(1)]).is_err());
    }
}
