//! Variables and terms.

use crate::symbol::Sym;
use crate::value::DataValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A first-order **data variable** (`u, v, u₁, …` in the paper, elements of `Vars_data`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub Sym);

impl Var {
    /// Create (or look up) a variable by name.
    pub fn new(name: &str) -> Var {
        Var(Sym::new(name))
    }

    /// The variable's name.
    pub fn as_str(&self) -> &'static str {
        self.0.as_str()
    }

    /// A family of numbered variables `base0, base1, …` — convenient for generated constructions
    /// (e.g. the bulk-operation compilation of Appendix F.4).
    pub fn numbered(base: &str, i: usize) -> Var {
        Var::new(&format!("{base}{i}"))
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A term: either a data variable or a concrete data value.
///
/// Terms appear as arguments of query atoms and of the `Del` / `Add` patterns of actions.
/// Concrete values in terms are how the *constants* extension of the paper (Appendix F.1) is
/// surfaced; the constant-removal transformation compiles them away.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Term {
    /// A data variable.
    Var(Var),
    /// A constant data value.
    Value(DataValue),
}

impl Term {
    /// The variable inside, if this term is a variable.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Value(_) => None,
        }
    }

    /// The value inside, if this term is a constant.
    pub fn as_value(&self) -> Option<DataValue> {
        match self {
            Term::Var(_) => None,
            Term::Value(v) => Some(*v),
        }
    }

    /// Whether this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            // Constants use the parser's `$N` syntax so that `Query::to_string` round-trips
            // through `parse_query`.
            Term::Value(c) => write!(f, "${}", c.index()),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<DataValue> for Term {
    fn from(v: DataValue) -> Self {
        Term::Value(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_creation_and_display() {
        let u = Var::new("u");
        assert_eq!(u.as_str(), "u");
        assert_eq!(format!("{u}"), "u");
        assert_eq!(Var::numbered("x", 3), Var::new("x3"));
    }

    #[test]
    fn term_projections() {
        let t: Term = Var::new("u").into();
        assert!(t.is_var());
        assert_eq!(t.as_var(), Some(Var::new("u")));
        assert_eq!(t.as_value(), None);

        let c: Term = DataValue::e(5).into();
        assert!(!c.is_var());
        assert_eq!(c.as_value(), Some(DataValue::e(5)));
        assert_eq!(c.as_var(), None);
    }

    #[test]
    fn term_display() {
        assert_eq!(format!("{}", Term::Var(Var::new("v"))), "v");
        assert_eq!(format!("{}", Term::Value(DataValue::e(2))), "$2");
    }
}
