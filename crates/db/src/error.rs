//! Error types for the database substrate.

use crate::schema::RelName;
use crate::term::Var;
use std::fmt;

/// Errors produced when constructing or evaluating database objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A fact or atom used a relation with the wrong number of arguments.
    ArityMismatch {
        relation: RelName,
        expected: usize,
        got: usize,
    },
    /// A relation name was used that is not declared in the schema.
    UnknownRelation(RelName),
    /// A relation name was declared twice with different arities.
    ConflictingArity {
        relation: RelName,
        first: usize,
        second: usize,
    },
    /// A query was evaluated under a substitution that does not bind one of its free variables.
    UnboundVariable(Var),
    /// Answering the query would require enumerating more candidate rows than fit in an
    /// address space (`|universe|^variables` overflows) — the evaluation is refused
    /// rather than silently truncated.
    AnswerSpaceOverflow { variables: usize, universe: usize },
    /// A query string could not be parsed.
    Parse { position: usize, message: String },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for relation {relation}: expected {expected}, got {got}"
            ),
            DbError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            DbError::ConflictingArity {
                relation,
                first,
                second,
            } => write!(
                f,
                "relation {relation} declared with conflicting arities {first} and {second}"
            ),
            DbError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
            DbError::AnswerSpaceOverflow {
                variables,
                universe,
            } => write!(
                f,
                "enumerating {universe}^{variables} candidate rows overflows the answer space"
            ),
            DbError::Parse { position, message } => {
                write!(f, "parse error at offset {position}: {message}")
            }
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelName;

    #[test]
    fn display_messages_are_informative() {
        let e = DbError::ArityMismatch {
            relation: RelName::new("R"),
            expected: 2,
            got: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains('R') && msg.contains('2') && msg.contains('3'));

        let e = DbError::UnknownRelation(RelName::new("Nope"));
        assert!(e.to_string().contains("Nope"));

        let e = DbError::Parse {
            position: 4,
            message: "expected ')'".into(),
        };
        assert!(e.to_string().contains("offset 4"));
    }
}
