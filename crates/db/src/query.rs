//! FOL(R) queries with equality (Section 2 of the paper).
//!
//! ```text
//! Q ::= true | R(u₁,…,u_a) | ¬Q | Q₁ ∧ Q₂ | ∃u.Q | u₁ = u₂
//! ```
//!
//! We additionally keep `∨` and `∀` as first-class nodes (the paper treats them as
//! abbreviations); doing so keeps constructed formulae readable and avoids exponential
//! negation-normal-form blow-ups in generated constructions such as Appendix F.

use crate::schema::{RelName, Schema};
use crate::term::{Term, Var};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A FOL(R) query.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Query {
    /// The trivially true query.
    True,
    /// A relational atom `R(t₁,…,t_a)`.
    Atom(RelName, Vec<Term>),
    /// Equality of two terms `t₁ = t₂`.
    Eq(Term, Term),
    /// Negation `¬Q`.
    Not(Box<Query>),
    /// Conjunction `Q₁ ∧ Q₂`.
    And(Box<Query>, Box<Query>),
    /// Disjunction `Q₁ ∨ Q₂`.
    Or(Box<Query>, Box<Query>),
    /// Existential quantification `∃u.Q` (active-domain semantics).
    Exists(Var, Box<Query>),
    /// Universal quantification `∀u.Q` (active-domain semantics).
    Forall(Var, Box<Query>),
}

impl Query {
    /// The trivially false query `¬true`.
    pub fn false_() -> Query {
        Query::Not(Box::new(Query::True))
    }

    /// Atom constructor.
    pub fn atom<T: Into<Term>, I: IntoIterator<Item = T>>(rel: RelName, args: I) -> Query {
        Query::Atom(rel, args.into_iter().map(Into::into).collect())
    }

    /// A propositional atom `p()`.
    pub fn prop(rel: RelName) -> Query {
        Query::Atom(rel, vec![])
    }

    /// Equality constructor.
    pub fn eq<A: Into<Term>, B: Into<Term>>(a: A, b: B) -> Query {
        Query::Eq(a.into(), b.into())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Query {
        Query::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: Query) -> Query {
        Query::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Query) -> Query {
        Query::Or(Box::new(self), Box::new(other))
    }

    /// Implication `self ⇒ other`, i.e. `¬self ∨ other`.
    pub fn implies(self, other: Query) -> Query {
        self.not().or(other)
    }

    /// Existential quantification.
    pub fn exists(var: Var, body: Query) -> Query {
        Query::Exists(var, Box::new(body))
    }

    /// Existential quantification over several variables (left to right).
    pub fn exists_many<I: IntoIterator<Item = Var>>(vars: I, body: Query) -> Query {
        let vars: Vec<Var> = vars.into_iter().collect();
        vars.into_iter()
            .rev()
            .fold(body, |acc, v| Query::exists(v, acc))
    }

    /// Universal quantification.
    pub fn forall(var: Var, body: Query) -> Query {
        Query::Forall(var, Box::new(body))
    }

    /// Universal quantification over several variables.
    pub fn forall_many<I: IntoIterator<Item = Var>>(vars: I, body: Query) -> Query {
        let vars: Vec<Var> = vars.into_iter().collect();
        vars.into_iter()
            .rev()
            .fold(body, |acc, v| Query::forall(v, acc))
    }

    /// Conjunction of a list of queries (`true` for the empty list).
    pub fn conj<I: IntoIterator<Item = Query>>(queries: I) -> Query {
        let mut iter = queries.into_iter();
        match iter.next() {
            None => Query::True,
            Some(first) => iter.fold(first, Query::and),
        }
    }

    /// Disjunction of a list of queries (`false` for the empty list).
    pub fn disj<I: IntoIterator<Item = Query>>(queries: I) -> Query {
        let mut iter = queries.into_iter();
        match iter.next() {
            None => Query::false_(),
            Some(first) => iter.fold(first, Query::or),
        }
    }

    /// The free variables `Free-Vars(Q)` of this query.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut free = BTreeSet::new();
        self.collect_free(&mut BTreeSet::new(), &mut free);
        free
    }

    fn collect_free(&self, bound: &mut BTreeSet<Var>, free: &mut BTreeSet<Var>) {
        match self {
            Query::True => {}
            Query::Atom(_, terms) => {
                for t in terms {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            free.insert(*v);
                        }
                    }
                }
            }
            Query::Eq(a, b) => {
                for t in [a, b] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            free.insert(*v);
                        }
                    }
                }
            }
            Query::Not(q) => q.collect_free(bound, free),
            Query::And(a, b) | Query::Or(a, b) => {
                a.collect_free(bound, free);
                b.collect_free(bound, free);
            }
            Query::Exists(v, q) | Query::Forall(v, q) => {
                let newly = bound.insert(*v);
                q.collect_free(bound, free);
                if newly {
                    bound.remove(v);
                }
            }
        }
    }

    /// All variables (free and bound) occurring in the query.
    pub fn all_vars(&self) -> BTreeSet<Var> {
        let mut vars = BTreeSet::new();
        self.visit(&mut |q| match q {
            Query::Atom(_, terms) => {
                vars.extend(terms.iter().filter_map(Term::as_var));
            }
            Query::Eq(a, b) => {
                vars.extend([a, b].iter().filter_map(|t| t.as_var()));
            }
            Query::Exists(v, _) | Query::Forall(v, _) => {
                vars.insert(*v);
            }
            _ => {}
        });
        vars
    }

    /// Whether the query is boolean, i.e. has no free variables.
    pub fn is_boolean(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// All relation names mentioned in the query.
    pub fn relations(&self) -> BTreeSet<RelName> {
        let mut rels = BTreeSet::new();
        self.visit(&mut |q| {
            if let Query::Atom(r, _) = q {
                rels.insert(*r);
            }
        });
        rels
    }

    /// All constant data values mentioned in the query (non-empty only when the constants
    /// extension of Appendix F.1 is in use).
    pub fn constants(&self) -> BTreeSet<crate::DataValue> {
        let mut consts = BTreeSet::new();
        self.visit(&mut |q| match q {
            Query::Atom(_, terms) => {
                consts.extend(terms.iter().filter_map(Term::as_value));
            }
            Query::Eq(a, b) => {
                consts.extend([a, b].iter().filter_map(|t| t.as_value()));
            }
            _ => {}
        });
        consts
    }

    /// Visit every subquery (pre-order).
    pub fn visit<F: FnMut(&Query)>(&self, f: &mut F) {
        f(self);
        match self {
            Query::True | Query::Atom(..) | Query::Eq(..) => {}
            Query::Not(q) | Query::Exists(_, q) | Query::Forall(_, q) => q.visit(f),
            Query::And(a, b) | Query::Or(a, b) => {
                a.visit(f);
                b.visit(f);
            }
        }
    }

    /// Number of AST nodes (a cheap size measure used in benchmarks).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Quantifier nesting depth.
    pub fn quantifier_depth(&self) -> usize {
        match self {
            Query::True | Query::Atom(..) | Query::Eq(..) => 0,
            Query::Not(q) => q.quantifier_depth(),
            Query::And(a, b) | Query::Or(a, b) => a.quantifier_depth().max(b.quantifier_depth()),
            Query::Exists(_, q) | Query::Forall(_, q) => 1 + q.quantifier_depth(),
        }
    }

    /// Replace free occurrences of variables by terms (capture is not avoided: callers use
    /// fresh variable names for bound variables, as all generated constructions in this
    /// workspace do).
    pub fn substitute_terms(&self, map: &std::collections::BTreeMap<Var, Term>) -> Query {
        self.substitute_inner(map, &BTreeSet::new())
    }

    fn substitute_inner(
        &self,
        map: &std::collections::BTreeMap<Var, Term>,
        bound: &BTreeSet<Var>,
    ) -> Query {
        let sub_term = |t: &Term, bound: &BTreeSet<Var>| -> Term {
            match t {
                Term::Var(v) if !bound.contains(v) => map.get(v).copied().unwrap_or(*t),
                _ => *t,
            }
        };
        match self {
            Query::True => Query::True,
            Query::Atom(r, terms) => {
                Query::Atom(*r, terms.iter().map(|t| sub_term(t, bound)).collect())
            }
            Query::Eq(a, b) => Query::Eq(sub_term(a, bound), sub_term(b, bound)),
            Query::Not(q) => Query::Not(Box::new(q.substitute_inner(map, bound))),
            Query::And(a, b) => Query::And(
                Box::new(a.substitute_inner(map, bound)),
                Box::new(b.substitute_inner(map, bound)),
            ),
            Query::Or(a, b) => Query::Or(
                Box::new(a.substitute_inner(map, bound)),
                Box::new(b.substitute_inner(map, bound)),
            ),
            Query::Exists(v, q) => {
                let mut bound2 = bound.clone();
                bound2.insert(*v);
                Query::Exists(*v, Box::new(q.substitute_inner(map, &bound2)))
            }
            Query::Forall(v, q) => {
                let mut bound2 = bound.clone();
                bound2.insert(*v);
                Query::Forall(*v, Box::new(q.substitute_inner(map, &bound2)))
            }
        }
    }

    /// Whether the query is a union of conjunctive queries (UCQ): built from atoms, equality,
    /// `∧`, `∨`, `∃` and `true` only — no negation, no universal quantification. This matters
    /// for the undecidability frontier of Theorem 4.1.
    pub fn is_ucq(&self) -> bool {
        match self {
            Query::True | Query::Atom(..) | Query::Eq(..) => true,
            Query::Not(_) | Query::Forall(..) => false,
            Query::And(a, b) | Query::Or(a, b) => a.is_ucq() && b.is_ucq(),
            Query::Exists(_, q) => q.is_ucq(),
        }
    }

    /// Validate every atom's arity against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<(), crate::DbError> {
        let mut result = Ok(());
        self.visit(&mut |q| {
            if result.is_ok() {
                if let Query::Atom(r, terms) = q {
                    result = schema.check_arity(*r, terms.len());
                }
            }
        });
        result
    }
}

/// The `Active(u)` query of Example 2.1: `u` occurs in some tuple of some relation of the
/// schema. `ans(Active(u), I) = {⟨u ↦ e⟩ | e ∈ adom(I)}`.
pub fn active_query(schema: &Schema, u: Var) -> Query {
    let mut disjuncts = Vec::new();
    for (rel, arity) in schema.non_nullary() {
        for j in 0..arity {
            // ∃ u₁…u_{a} (other positions) . R(u₁,…,u,…,u_a) with u at position j
            let mut args: Vec<Term> = Vec::with_capacity(arity);
            let mut bound_vars = Vec::new();
            for k in 0..arity {
                if k == j {
                    args.push(Term::Var(u));
                } else {
                    let vk = Var::new(&format!("__active_{}_{}_{}", rel.as_str(), j, k));
                    bound_vars.push(vk);
                    args.push(Term::Var(vk));
                }
            }
            disjuncts.push(Query::exists_many(bound_vars, Query::Atom(rel, args)));
        }
    }
    Query::disj(disjuncts)
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::True => write!(f, "true"),
            Query::Atom(r, terms) => {
                if terms.is_empty() {
                    write!(f, "{r}")
                } else {
                    let args: Vec<String> = terms.iter().map(|t| t.to_string()).collect();
                    write!(f, "{r}({})", args.join(","))
                }
            }
            Query::Eq(a, b) => write!(f, "{a} = {b}"),
            Query::Not(q) => write!(f, "!({q})"),
            Query::And(a, b) => write!(f, "({a} & {b})"),
            Query::Or(a, b) => write!(f, "({a} | {b})"),
            Query::Exists(v, q) => write!(f, "exists {v}. ({q})"),
            Query::Forall(v, q) => write!(f, "forall {v}. ({q})"),
        }
    }
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataValue;

    fn r(name: &str) -> RelName {
        RelName::new(name)
    }

    fn v(name: &str) -> Var {
        Var::new(name)
    }

    #[test]
    fn free_vars_respect_binders() {
        // exists u. R(u, w)  — free: {w}
        let q = Query::exists(v("u"), Query::atom(r("R"), [v("u"), v("w")]));
        assert_eq!(q.free_vars(), BTreeSet::from([v("w")]));
        assert_eq!(q.all_vars(), BTreeSet::from([v("u"), v("w")]));
        assert!(!q.is_boolean());

        // forall u. exists w. R(u,w) — boolean
        let q2 = Query::forall(
            v("u"),
            Query::exists(v("w"), Query::atom(r("R"), [v("u"), v("w")])),
        );
        assert!(q2.is_boolean());
        assert_eq!(q2.quantifier_depth(), 2);
    }

    #[test]
    fn shadowing_inside_binder() {
        // R(u) & exists u. Q(u): outer occurrence of u is free, inner is bound.
        let q =
            Query::atom(r("R"), [v("u")]).and(Query::exists(v("u"), Query::atom(r("Q"), [v("u")])));
        assert_eq!(q.free_vars(), BTreeSet::from([v("u")]));
    }

    #[test]
    fn conj_disj_of_empty_lists() {
        assert_eq!(Query::conj(vec![]), Query::True);
        assert_eq!(Query::disj(vec![]), Query::false_());
    }

    #[test]
    fn relations_and_constants() {
        let q = Query::atom(r("R"), [Term::Var(v("u")), Term::Value(DataValue::e(7))])
            .and(Query::prop(r("p")));
        assert_eq!(q.relations(), BTreeSet::from([r("R"), r("p")]));
        assert_eq!(q.constants(), BTreeSet::from([DataValue::e(7)]));
    }

    #[test]
    fn ucq_detection() {
        let ucq = Query::exists(
            v("u"),
            Query::atom(r("R"), [v("u")]).or(Query::atom(r("Q"), [v("u")])),
        );
        assert!(ucq.is_ucq());

        let not_ucq = Query::atom(r("R"), [v("u")]).not();
        assert!(!not_ucq.is_ucq());
        let not_ucq2 = Query::forall(v("u"), Query::atom(r("R"), [v("u")]));
        assert!(!not_ucq2.is_ucq());
    }

    #[test]
    fn substitution_respects_binders() {
        let map: std::collections::BTreeMap<Var, Term> = [(v("u"), Term::Value(DataValue::e(3)))]
            .into_iter()
            .collect();
        // R(u) & exists u. Q(u)  → R(e3) & exists u. Q(u)
        let q =
            Query::atom(r("R"), [v("u")]).and(Query::exists(v("u"), Query::atom(r("Q"), [v("u")])));
        let q2 = q.substitute_terms(&map);
        assert_eq!(
            q2,
            Query::atom(r("R"), [Term::Value(DataValue::e(3))])
                .and(Query::exists(v("u"), Query::atom(r("Q"), [v("u")])))
        );
    }

    #[test]
    fn active_query_shape() {
        let schema = Schema::with_relations(&[("p", 0), ("R", 1), ("S", 2)]);
        let q = active_query(&schema, v("u"));
        // one disjunct per (relation, position): 1 (R) + 2 (S) = 3 atoms
        let mut atoms = 0;
        q.visit(&mut |sub| {
            if matches!(sub, Query::Atom(..)) {
                atoms += 1;
            }
        });
        assert_eq!(atoms, 3);
        assert_eq!(q.free_vars(), BTreeSet::from([v("u")]));
        assert!(q.validate(&schema).is_ok());
    }

    #[test]
    fn validation_catches_bad_arity() {
        let schema = Schema::with_relations(&[("R", 2)]);
        let bad = Query::atom(r("R"), [v("u")]);
        assert!(bad.validate(&schema).is_err());
        let unknown = Query::atom(r("Zzz"), [v("u")]);
        assert!(unknown.validate(&schema).is_err());
    }

    #[test]
    fn display_round_trips_visually() {
        let q = Query::exists(
            v("u"),
            Query::atom(r("R"), [v("u")]).and(Query::prop(r("p")).not()),
        );
        let s = format!("{q}");
        assert!(s.contains("exists u."));
        assert!(s.contains("R(u)"));
        assert!(s.contains("!(p)"));
    }

    #[test]
    fn size_counts_nodes() {
        let q = Query::atom(r("R"), [v("u")]).and(Query::True);
        assert_eq!(q.size(), 3);
    }

    #[test]
    fn implies_is_not_or() {
        let p = Query::prop(r("p"));
        let q = Query::prop(r("q"));
        let imp = p.clone().implies(q.clone());
        assert_eq!(imp, p.not().or(q));
    }
}
