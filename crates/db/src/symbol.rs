//! Global string interner producing cheap, `Copy` symbols.
//!
//! Relation names and variable names are interned once and afterwards compared / hashed as
//! `u32`s. The interner is global (process-wide) so that symbols created by different crates
//! of the workspace are interchangeable.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

/// An interned string. Two [`Sym`]s are equal iff the strings they were created from are
/// equal. Ordering is lexicographic on the underlying strings (so that data structures keyed
/// by symbols iterate deterministically and human-sensibly).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

static INTERNER: Mutex<Option<Interner>> = Mutex::new(None);

impl Sym {
    /// Intern `s`, returning its symbol. Idempotent.
    pub fn new(s: &str) -> Sym {
        let mut guard = INTERNER.lock();
        let interner = guard.get_or_insert_with(|| Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        });
        if let Some(&id) = interner.map.get(s) {
            return Sym(id);
        }
        // Interned strings live for the lifetime of the process.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = interner.strings.len() as u32;
        interner.strings.push(leaked);
        interner.map.insert(leaked, id);
        Sym(id)
    }

    /// The string this symbol was interned from.
    pub fn as_str(&self) -> &'static str {
        let guard = INTERNER.lock();
        guard
            .as_ref()
            .and_then(|i| i.strings.get(self.0 as usize).copied())
            .expect("symbol created by Sym::new")
    }

    /// Raw numeric id (stable within a process run only).
    pub fn id(&self) -> u32 {
        self.0
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        Sym::new(s)
    }
}

impl serde::Serialize for Sym {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> serde::Deserialize<'de> for Sym {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Sym::new(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::new("hello");
        let b = Sym::new("hello");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let a = Sym::new("alpha_sym_test");
        let b = Sym::new("beta_sym_test");
        assert_ne!(a, b);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let b = Sym::new("zzz_order");
        let a = Sym::new("aaa_order");
        assert!(a < b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_and_debug() {
        let a = Sym::new("shown");
        assert_eq!(format!("{a}"), "shown");
        assert_eq!(format!("{a:?}"), "shown");
    }

    #[test]
    fn serde_round_trip() {
        let a = Sym::new("roundtrip");
        let json = serde_json_string(&a);
        assert_eq!(json, "\"roundtrip\"");
    }

    fn serde_json_string(sym: &Sym) -> String {
        // Minimal hand-rolled check without pulling serde_json into this crate's deps:
        // serialize through the serde data model using a tiny serializer.
        struct S(String);
        impl serde::Serializer for &mut S {
            type Ok = ();
            type Error = std::fmt::Error;
            type SerializeSeq = serde::ser::Impossible<(), Self::Error>;
            type SerializeTuple = serde::ser::Impossible<(), Self::Error>;
            type SerializeTupleStruct = serde::ser::Impossible<(), Self::Error>;
            type SerializeTupleVariant = serde::ser::Impossible<(), Self::Error>;
            type SerializeMap = serde::ser::Impossible<(), Self::Error>;
            type SerializeStruct = serde::ser::Impossible<(), Self::Error>;
            type SerializeStructVariant = serde::ser::Impossible<(), Self::Error>;
            fn serialize_str(self, v: &str) -> Result<(), Self::Error> {
                self.0 = format!("\"{v}\"");
                Ok(())
            }
            fn serialize_bool(self, _: bool) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_i8(self, _: i8) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_i16(self, _: i16) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_i32(self, _: i32) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_i64(self, _: i64) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_u8(self, _: u8) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_u16(self, _: u16) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_u32(self, _: u32) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_u64(self, _: u64) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_f32(self, _: f32) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_f64(self, _: f64) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_char(self, _: char) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_bytes(self, _: &[u8]) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_none(self) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_some<T: ?Sized + serde::Serialize>(
                self,
                _: &T,
            ) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_unit(self) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_unit_struct(self, _: &'static str) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_unit_variant(
                self,
                _: &'static str,
                _: u32,
                _: &'static str,
            ) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_newtype_struct<T: ?Sized + serde::Serialize>(
                self,
                _: &'static str,
                _: &T,
            ) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_newtype_variant<T: ?Sized + serde::Serialize>(
                self,
                _: &'static str,
                _: u32,
                _: &'static str,
                _: &T,
            ) -> Result<(), Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_seq(self, _: Option<usize>) -> Result<Self::SerializeSeq, Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_tuple(self, _: usize) -> Result<Self::SerializeTuple, Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_tuple_struct(
                self,
                _: &'static str,
                _: usize,
            ) -> Result<Self::SerializeTupleStruct, Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_tuple_variant(
                self,
                _: &'static str,
                _: u32,
                _: &'static str,
                _: usize,
            ) -> Result<Self::SerializeTupleVariant, Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_map(self, _: Option<usize>) -> Result<Self::SerializeMap, Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_struct(
                self,
                _: &'static str,
                _: usize,
            ) -> Result<Self::SerializeStruct, Self::Error> {
                Err(std::fmt::Error)
            }
            fn serialize_struct_variant(
                self,
                _: &'static str,
                _: u32,
                _: &'static str,
                _: usize,
            ) -> Result<Self::SerializeStructVariant, Self::Error> {
                Err(std::fmt::Error)
            }
        }
        let mut s = S(String::new());
        serde::Serialize::serialize(sym, &mut s).unwrap();
        s.0
    }
}
