//! Heap-size estimation: how many bytes of heap a value keeps alive.
//!
//! [`HeapSize`] is the accounting substrate of the resource governor: the checker's
//! seen-set and the canonical-key interner charge every admitted configuration against a
//! byte budget, and the service charges every session against a process-wide one. The
//! numbers are **estimates** — container per-entry overheads are modelled with fixed
//! constants, `Arc`-shared data is charged to every holder (an upper bound, which is the
//! safe direction for a budget), and lazily built caches are excluded (they are
//! reconstructible, bounded by the primary data, and dropped on mutation).
//!
//! The contract: [`heap_size`](HeapSize::heap_size) is the estimated bytes **owned on the
//! heap** by the value, excluding `size_of::<Self>()` (the inline part its owner already
//! accounts for); [`total_size`](HeapSize::total_size) adds that inline part back, which is
//! what per-entry charges of containers want.

use crate::value::{DataValue, Tuple};
use std::mem::size_of;

/// Estimated per-entry bookkeeping of a B-tree map/set beyond the key/value bytes
/// (amortised node headers, parent pointers, vacancy from the branching-factor split).
pub const BTREE_ENTRY_OVERHEAD: usize = 16;

/// Estimated per-entry bookkeeping of a hash map/set beyond the key/value bytes
/// (control bytes plus load-factor vacancy).
pub const HASH_ENTRY_OVERHEAD: usize = 8;

/// Estimated heap bytes of one `Arc` allocation header (strong + weak counts).
pub const ARC_HEADER: usize = 2 * size_of::<usize>();

/// Estimated bytes of heap memory a value keeps alive. See the module docs for the
/// estimation contract.
pub trait HeapSize {
    /// Estimated heap bytes owned by this value, **excluding** its own inline
    /// `size_of::<Self>()` bytes.
    fn heap_size(&self) -> usize;

    /// Inline plus heap bytes: what one occurrence of this value costs its container.
    fn total_size(&self) -> usize
    where
        Self: Sized,
    {
        size_of::<Self>() + self.heap_size()
    }
}

impl HeapSize for DataValue {
    fn heap_size(&self) -> usize {
        0
    }
}

impl HeapSize for u64 {
    fn heap_size(&self) -> usize {
        0
    }
}

impl HeapSize for usize {
    fn heap_size(&self) -> usize {
        0
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    /// The backing buffer at its **capacity** (unused capacity is still live memory),
    /// plus whatever the elements own.
    fn heap_size(&self) -> usize {
        self.capacity() * size_of::<T>() + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

impl HeapSize for String {
    fn heap_size(&self) -> usize {
        self.capacity()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_size(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_size)
    }
}

impl<T: HeapSize> HeapSize for std::sync::Arc<T> {
    /// Charges the full pointee to this handle: shared data is counted once **per
    /// holder**, an upper bound (see the module docs).
    fn heap_size(&self) -> usize {
        ARC_HEADER + size_of::<T>() + T::heap_size(self)
    }
}

/// The heap bytes of a set of tuples stored in a B-tree, charged per entry. `Tuple` is
/// `Vec<DataValue>`, so this is the generic `Vec` impl plus the set's entry overhead.
pub fn btree_set_of_tuples(tuples: &std::collections::BTreeSet<Tuple>) -> usize {
    tuples
        .iter()
        .map(|tuple| tuple.total_size() + BTREE_ENTRY_OVERHEAD)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_own_no_heap() {
        assert_eq!(DataValue(7).heap_size(), 0);
        assert_eq!(DataValue(7).total_size(), size_of::<DataValue>());
        assert_eq!(42u64.heap_size(), 0);
    }

    #[test]
    fn vectors_charge_capacity_not_length() {
        let mut v: Vec<DataValue> = Vec::with_capacity(8);
        v.push(DataValue(1));
        assert_eq!(v.heap_size(), 8 * size_of::<DataValue>());
        // total adds the inline Vec header
        assert_eq!(v.total_size(), size_of::<Vec<DataValue>>() + v.heap_size());
    }

    #[test]
    fn nested_vectors_sum_their_elements() {
        let tuples: Vec<Tuple> = vec![vec![DataValue(1), DataValue(2)], vec![DataValue(3)]];
        let elements: usize = tuples.iter().map(HeapSize::heap_size).sum();
        assert_eq!(
            tuples.heap_size(),
            tuples.capacity() * size_of::<Tuple>() + elements
        );
        assert!(elements >= 3 * size_of::<DataValue>());
    }

    #[test]
    fn instances_grow_monotonically_with_facts() {
        use crate::{Instance, RelName};
        let r = RelName::new("R");
        let mut inst = Instance::new();
        assert_eq!(inst.heap_size(), 0);
        inst.insert(r, vec![DataValue(1)]);
        let one = inst.heap_size();
        assert!(one > 0);
        inst.insert(r, vec![DataValue(2)]);
        let two = inst.heap_size();
        assert!(two > one, "{two} !> {one}");
        // a clone shares every relation but is charged in full (upper bound)
        assert_eq!(inst.clone().heap_size(), two);
    }

    #[test]
    fn arcs_charge_the_pointee_per_holder() {
        let a = std::sync::Arc::new(vec![DataValue(1), DataValue(2)]);
        let b = std::sync::Arc::clone(&a);
        // both handles report the same (full) cost: the estimate is an upper bound
        assert_eq!(a.heap_size(), b.heap_size());
        assert!(a.heap_size() >= ARC_HEADER + size_of::<Vec<DataValue>>());
    }
}
