//! Boolean evaluation of FOL(R) queries under a substitution (Appendix A of the paper).
//!
//! [`holds`] implements the judgement `I, σ ⊨ Q`. Quantifiers range over the **active
//! domain** `adom(I)`, as the paper's semantics prescribes.
//!
//! Two representation-level optimisations keep the semantics intact while avoiding the
//! naive active-domain cross product:
//!
//! * quantified variables are bound on a **binding stack** pushed/popped in place, instead
//!   of cloning the whole substitution per candidate value;
//! * before enumerating `adom(I)` for a quantifier, the evaluator derives a sound
//!   **candidate set** for the bound variable from the query's positive atoms, answered
//!   from the per-column value indexes cached on the instance ([`Instance::column_values`]).
//!   `∃u. R(u,w) ∧ …` only tries the first-column values of `R`; `∀u. Q(u) → …` only tries
//!   values that can refute the implication, i.e. the values of `Q`. Candidate sets are
//!   always subsets of `adom(I)` (they come from the instance's own columns), so the
//!   active-domain semantics is unchanged — checked against full enumeration by property
//!   tests.

use crate::error::DbError;
use crate::instance::Instance;
use crate::query::Query;
use crate::substitution::Substitution;
use crate::term::{Term, Var};
use crate::value::DataValue;

/// Evaluate `I, σ ⊨ Q`.
///
/// `σ` must bind every free variable of `Q`; otherwise an [`DbError::UnboundVariable`] error
/// is returned. Quantified variables range over `adom(I)`.
pub fn holds(instance: &Instance, subst: &Substitution, query: &Query) -> Result<bool, DbError> {
    let adom: Vec<DataValue> = instance.active_domain().into_iter().collect();
    let mut env = Env {
        base: subst,
        stack: Vec::new(),
    };
    eval(instance, &adom, &mut env, query)
}

/// Evaluate a boolean query (no free variables) against an instance.
pub fn holds_boolean(instance: &Instance, query: &Query) -> Result<bool, DbError> {
    holds(instance, &Substitution::empty(), query)
}

/// The evaluation environment: the caller's substitution plus a stack of quantifier
/// bindings (innermost last). Pushing/popping a binding is O(1) and allocation-free after
/// the first few frames, where the previous implementation cloned the substitution for
/// every candidate value of every quantifier.
struct Env<'a> {
    base: &'a Substitution,
    stack: Vec<(Var, DataValue)>,
}

impl Env<'_> {
    fn get(&self, var: Var) -> Option<DataValue> {
        self.stack
            .iter()
            .rev()
            .find(|(v, _)| *v == var)
            .map(|&(_, d)| d)
            .or_else(|| self.base.get(var))
    }
}

fn resolve(env: &Env<'_>, term: &Term) -> Result<DataValue, DbError> {
    match term {
        Term::Value(v) => Ok(*v),
        Term::Var(v) => env.get(*v).ok_or(DbError::UnboundVariable(*v)),
    }
}

fn eval(
    instance: &Instance,
    adom: &[DataValue],
    env: &mut Env<'_>,
    query: &Query,
) -> Result<bool, DbError> {
    match query {
        Query::True => Ok(true),
        Query::Atom(rel, terms) => {
            let tuple: Vec<DataValue> = terms
                .iter()
                .map(|t| resolve(env, t))
                .collect::<Result<_, _>>()?;
            Ok(instance.contains(*rel, &tuple))
        }
        Query::Eq(a, b) => Ok(resolve(env, a)? == resolve(env, b)?),
        Query::Not(q) => Ok(!eval(instance, adom, env, q)?),
        Query::And(a, b) => Ok(eval(instance, adom, env, a)? && eval(instance, adom, env, b)?),
        Query::Or(a, b) => Ok(eval(instance, adom, env, a)? || eval(instance, adom, env, b)?),
        Query::Exists(v, q) => {
            let candidates = satisfaction_candidates(instance, q, *v);
            let domain: &[DataValue] = candidates.as_deref().unwrap_or(adom);
            for &e in domain {
                env.stack.push((*v, e));
                let result = eval(instance, adom, env, q);
                env.stack.pop();
                if result? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Query::Forall(v, q) => {
            // only values that can *refute* the body need to be tried; everything else in
            // adom satisfies it by construction of the candidate set
            let candidates = refutation_candidates(instance, q, *v);
            let domain: &[DataValue] = candidates.as_deref().unwrap_or(adom);
            for &e in domain {
                env.stack.push((*v, e));
                let result = eval(instance, adom, env, q);
                env.stack.pop();
                if !result? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }
}

/// A sound over-approximation of the values `e ∈ adom(I)` for which `query` can hold with
/// `v ↦ e` (under *any* assignment of the other variables), or `None` when the query does
/// not constrain `v` through a positive atom. Always a subset of `adom(I)` and sorted
/// ascending, since every base set is a column of the instance.
fn satisfaction_candidates(instance: &Instance, query: &Query, v: Var) -> Option<Vec<DataValue>> {
    match query {
        Query::Atom(rel, terms) => {
            let col = terms.iter().position(|t| *t == Term::Var(v))?;
            Some(instance.column_values(*rel, col).to_vec())
        }
        // a conjunction constrains v if either conjunct does (intersect when both do)
        Query::And(a, b) => narrow(
            satisfaction_candidates(instance, a, v),
            satisfaction_candidates(instance, b, v),
        ),
        // a disjunction constrains v only if both branches do
        Query::Or(a, b) => Some(merge_union(
            satisfaction_candidates(instance, a, v)?,
            satisfaction_candidates(instance, b, v)?,
        )),
        Query::Not(q) => refutation_candidates(instance, q, v),
        Query::Exists(w, q) | Query::Forall(w, q) if *w != v => {
            satisfaction_candidates(instance, q, v)
        }
        _ => None,
    }
}

/// Dually: a sound over-approximation of the values for which `query` can be *false* with
/// `v ↦ e`, or `None` when unconstrained.
fn refutation_candidates(instance: &Instance, query: &Query, v: Var) -> Option<Vec<DataValue>> {
    match query {
        Query::Not(q) => satisfaction_candidates(instance, q, v),
        // refuting a conjunction = refuting either conjunct
        Query::And(a, b) => Some(merge_union(
            refutation_candidates(instance, a, v)?,
            refutation_candidates(instance, b, v)?,
        )),
        // refuting a disjunction = refuting both branches
        Query::Or(a, b) => narrow(
            refutation_candidates(instance, a, v),
            refutation_candidates(instance, b, v),
        ),
        Query::Exists(w, q) | Query::Forall(w, q) if *w != v => {
            refutation_candidates(instance, q, v)
        }
        _ => None,
    }
}

/// Combine two optional constraints: intersect when both constrain, else keep the one that
/// does.
fn narrow(a: Option<Vec<DataValue>>, b: Option<Vec<DataValue>>) -> Option<Vec<DataValue>> {
    match (a, b) {
        (Some(a), Some(b)) => Some(merge_intersect(a, b)),
        (Some(a), None) => Some(a),
        (None, b) => b,
    }
}

fn merge_intersect(a: Vec<DataValue>, b: Vec<DataValue>) -> Vec<DataValue> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn merge_union(a: Vec<DataValue>, b: Vec<DataValue>) -> Vec<DataValue> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!("loop condition"),
        };
        out.push(next);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelName;
    use crate::term::Var;

    fn r(name: &str) -> RelName {
        RelName::new(name)
    }
    fn v(name: &str) -> Var {
        Var::new(name)
    }
    fn e(i: u64) -> DataValue {
        DataValue::e(i)
    }

    fn sample() -> Instance {
        Instance::from_facts([
            (r("R"), vec![e(1)]),
            (r("R"), vec![e(2)]),
            (r("Q"), vec![e(2)]),
            (r("Q"), vec![e(3)]),
            (r("p"), vec![]),
        ])
    }

    #[test]
    fn atoms_and_propositions() {
        let i = sample();
        assert!(holds_boolean(&i, &Query::prop(r("p"))).unwrap());
        assert!(!holds_boolean(&i, &Query::prop(r("q"))).unwrap());

        let s = Substitution::from_pairs([(v("u"), e(1))]);
        assert!(holds(&i, &s, &Query::atom(r("R"), [v("u")])).unwrap());
        assert!(!holds(&i, &s, &Query::atom(r("Q"), [v("u")])).unwrap());
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let i = sample();
        let err = holds(&i, &Substitution::empty(), &Query::atom(r("R"), [v("u")])).unwrap_err();
        assert!(matches!(err, DbError::UnboundVariable(_)));
    }

    #[test]
    fn equality_and_constants() {
        let i = sample();
        let s = Substitution::from_pairs([(v("u"), e(1)), (v("w"), e(1))]);
        assert!(holds(&i, &s, &Query::eq(v("u"), v("w"))).unwrap());
        assert!(holds(&i, &s, &Query::eq(v("u"), e(1))).unwrap());
        assert!(!holds(&i, &s, &Query::eq(v("u"), e(2))).unwrap());
    }

    #[test]
    fn connectives() {
        let i = sample();
        let s = Substitution::from_pairs([(v("u"), e(2))]);
        let ru = Query::atom(r("R"), [v("u")]);
        let qu = Query::atom(r("Q"), [v("u")]);
        assert!(holds(&i, &s, &ru.clone().and(qu.clone())).unwrap());
        assert!(holds(&i, &s, &ru.clone().or(qu.clone())).unwrap());
        assert!(!holds(&i, &s, &ru.clone().and(qu.clone()).not()).unwrap());
        assert!(holds(&i, &s, &ru.implies(qu)).unwrap());
    }

    #[test]
    fn quantifiers_range_over_active_domain() {
        let i = sample();
        // exists u. R(u) & Q(u)  — true (e2)
        let q = Query::exists(
            v("u"),
            Query::atom(r("R"), [v("u")]).and(Query::atom(r("Q"), [v("u")])),
        );
        assert!(holds_boolean(&i, &q).unwrap());

        // forall u. R(u) | Q(u)  — true: adom = {e1,e2,e3} all in R or Q
        let q = Query::forall(
            v("u"),
            Query::atom(r("R"), [v("u")]).or(Query::atom(r("Q"), [v("u")])),
        );
        assert!(holds_boolean(&i, &q).unwrap());

        // forall u. R(u) — false (e3 only in Q)
        let q = Query::forall(v("u"), Query::atom(r("R"), [v("u")]));
        assert!(!holds_boolean(&i, &q).unwrap());
    }

    #[test]
    fn quantification_over_empty_active_domain() {
        let mut i = Instance::new();
        i.set_proposition(r("p"), true);
        // adom is empty: exists is false, forall is vacuously true
        let ex = Query::exists(v("u"), Query::True);
        let fa = Query::forall(v("u"), Query::false_());
        assert!(!holds_boolean(&i, &ex).unwrap());
        assert!(holds_boolean(&i, &fa).unwrap());
    }

    #[test]
    fn forall_exists_duality() {
        let i = sample();
        let body = Query::atom(r("R"), [v("u")]);
        let forall = Query::forall(v("u"), body.clone());
        let dual = Query::exists(v("u"), body.not()).not();
        assert_eq!(
            holds_boolean(&i, &forall).unwrap(),
            holds_boolean(&i, &dual).unwrap()
        );
    }

    #[test]
    fn active_query_matches_active_domain() {
        let i = sample();
        let schema = crate::Schema::with_relations(&[("p", 0), ("R", 1), ("Q", 1)]);
        let active = crate::query::active_query(&schema, v("u"));
        for val in [1u64, 2, 3] {
            let s = Substitution::from_pairs([(v("u"), e(val))]);
            assert!(holds(&i, &s, &active).unwrap());
        }
        let s = Substitution::from_pairs([(v("u"), e(99))]);
        assert!(!holds(&i, &s, &active).unwrap());
    }

    #[test]
    fn shadowed_quantifier_variables_resolve_innermost_first() {
        let i = sample();
        // exists u. Q(u) & exists u. R(u): inner u shadows outer; both must hold
        let q = Query::exists(
            v("u"),
            Query::atom(r("Q"), [v("u")]).and(Query::exists(v("u"), Query::atom(r("R"), [v("u")]))),
        );
        assert!(holds_boolean(&i, &q).unwrap());
        // exists u. R(u) & (exists u. R(u) & Q(u)) & !Q(u): outer u must be e1
        let q = Query::exists(
            v("u"),
            Query::atom(r("R"), [v("u")])
                .and(Query::exists(
                    v("u"),
                    Query::atom(r("R"), [v("u")]).and(Query::atom(r("Q"), [v("u")])),
                ))
                .and(Query::atom(r("Q"), [v("u")]).not()),
        );
        assert!(holds_boolean(&i, &q).unwrap());
    }

    #[test]
    fn candidate_restriction_agrees_with_full_enumeration() {
        // queries mixing positive/negative atoms, disjunction and nesting, evaluated both
        // ways on an instance where candidate sets genuinely prune
        let i = Instance::from_facts([
            (r("R"), vec![e(1)]),
            (r("R"), vec![e(2)]),
            (r("Q"), vec![e(2)]),
            (r("Q"), vec![e(3)]),
            (r("S"), vec![e(1), e(4)]),
            (r("S"), vec![e(2), e(4)]),
        ]);
        let u = v("u");
        let w = v("w");
        let queries = [
            Query::exists(u, Query::atom(r("R"), [u]).and(Query::atom(r("Q"), [u]))),
            Query::exists(u, Query::atom(r("R"), [u]).or(Query::atom(r("Q"), [u]))),
            Query::forall(
                u,
                Query::atom(r("Q"), [u]).implies(Query::atom(r("R"), [u])),
            ),
            Query::forall(
                u,
                Query::exists(w, Query::atom(r("S"), [w, u]))
                    .implies(Query::atom(r("Q"), [u]).not()),
            ),
            Query::exists(u, Query::atom(r("Q"), [u]).not()),
            Query::forall(
                u,
                Query::atom(r("R"), [u])
                    .not()
                    .or(Query::atom(r("S"), [u, w]).not()),
            ),
        ];
        let s = Substitution::from_pairs([(w, e(4))]);
        for q in queries {
            let fast = holds(&i, &s, &q).unwrap();
            let slow = reference_holds(&i, &s, &q).unwrap();
            assert_eq!(fast, slow, "disagreement on {q}");
        }
    }

    /// The pre-index reference semantics: full active-domain enumeration with substitution
    /// cloning. Kept in tests as the oracle for the candidate-restricted evaluator.
    pub(crate) fn reference_holds(
        instance: &Instance,
        subst: &Substitution,
        query: &Query,
    ) -> Result<bool, DbError> {
        fn resolve(subst: &Substitution, term: &Term) -> Result<DataValue, DbError> {
            match term {
                Term::Value(v) => Ok(*v),
                Term::Var(v) => subst.get(*v).ok_or(DbError::UnboundVariable(*v)),
            }
        }
        fn go(
            instance: &Instance,
            adom: &std::collections::BTreeSet<DataValue>,
            subst: &Substitution,
            query: &Query,
        ) -> Result<bool, DbError> {
            match query {
                Query::True => Ok(true),
                Query::Atom(rel, terms) => {
                    let tuple: Vec<DataValue> = terms
                        .iter()
                        .map(|t| resolve(subst, t))
                        .collect::<Result<_, _>>()?;
                    Ok(instance.contains(*rel, &tuple))
                }
                Query::Eq(a, b) => Ok(resolve(subst, a)? == resolve(subst, b)?),
                Query::Not(q) => Ok(!go(instance, adom, subst, q)?),
                Query::And(a, b) => {
                    Ok(go(instance, adom, subst, a)? && go(instance, adom, subst, b)?)
                }
                Query::Or(a, b) => {
                    Ok(go(instance, adom, subst, a)? || go(instance, adom, subst, b)?)
                }
                Query::Exists(v, q) => {
                    for &e in adom {
                        if go(instance, adom, &subst.extended(*v, e), q)? {
                            return Ok(true);
                        }
                    }
                    Ok(false)
                }
                Query::Forall(v, q) => {
                    for &e in adom {
                        if !go(instance, adom, &subst.extended(*v, e), q)? {
                            return Ok(false);
                        }
                    }
                    Ok(true)
                }
            }
        }
        go(instance, &instance.active_domain(), subst, query)
    }
}
