//! Boolean evaluation of FOL(R) queries under a substitution (Appendix A of the paper).
//!
//! [`holds`] implements the judgement `I, σ ⊨ Q`. Quantifiers range over the **active
//! domain** `adom(I)`, as the paper's semantics prescribes.

use crate::error::DbError;
use crate::instance::Instance;
use crate::query::Query;
use crate::substitution::Substitution;
use crate::term::Term;
use crate::value::DataValue;
use std::collections::BTreeSet;

/// Evaluate `I, σ ⊨ Q`.
///
/// `σ` must bind every free variable of `Q`; otherwise an [`DbError::UnboundVariable`] error
/// is returned. Quantified variables range over `adom(I)`.
pub fn holds(instance: &Instance, subst: &Substitution, query: &Query) -> Result<bool, DbError> {
    let adom = instance.active_domain();
    eval(instance, &adom, subst, query)
}

/// Evaluate a boolean query (no free variables) against an instance.
pub fn holds_boolean(instance: &Instance, query: &Query) -> Result<bool, DbError> {
    holds(instance, &Substitution::empty(), query)
}

fn resolve(subst: &Substitution, term: &Term) -> Result<DataValue, DbError> {
    match term {
        Term::Value(v) => Ok(*v),
        Term::Var(v) => subst.get(*v).ok_or(DbError::UnboundVariable(*v)),
    }
}

fn eval(
    instance: &Instance,
    adom: &BTreeSet<DataValue>,
    subst: &Substitution,
    query: &Query,
) -> Result<bool, DbError> {
    match query {
        Query::True => Ok(true),
        Query::Atom(rel, terms) => {
            let tuple: Vec<DataValue> = terms
                .iter()
                .map(|t| resolve(subst, t))
                .collect::<Result<_, _>>()?;
            Ok(instance.contains(*rel, &tuple))
        }
        Query::Eq(a, b) => Ok(resolve(subst, a)? == resolve(subst, b)?),
        Query::Not(q) => Ok(!eval(instance, adom, subst, q)?),
        Query::And(a, b) => Ok(eval(instance, adom, subst, a)? && eval(instance, adom, subst, b)?),
        Query::Or(a, b) => Ok(eval(instance, adom, subst, a)? || eval(instance, adom, subst, b)?),
        Query::Exists(v, q) => {
            for &e in adom {
                let extended = subst.extended(*v, e);
                if eval(instance, adom, &extended, q)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Query::Forall(v, q) => {
            for &e in adom {
                let extended = subst.extended(*v, e);
                if !eval(instance, adom, &extended, q)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelName;
    use crate::term::Var;

    fn r(name: &str) -> RelName {
        RelName::new(name)
    }
    fn v(name: &str) -> Var {
        Var::new(name)
    }
    fn e(i: u64) -> DataValue {
        DataValue::e(i)
    }

    fn sample() -> Instance {
        Instance::from_facts([
            (r("R"), vec![e(1)]),
            (r("R"), vec![e(2)]),
            (r("Q"), vec![e(2)]),
            (r("Q"), vec![e(3)]),
            (r("p"), vec![]),
        ])
    }

    #[test]
    fn atoms_and_propositions() {
        let i = sample();
        assert!(holds_boolean(&i, &Query::prop(r("p"))).unwrap());
        assert!(!holds_boolean(&i, &Query::prop(r("q"))).unwrap());

        let s = Substitution::from_pairs([(v("u"), e(1))]);
        assert!(holds(&i, &s, &Query::atom(r("R"), [v("u")])).unwrap());
        assert!(!holds(&i, &s, &Query::atom(r("Q"), [v("u")])).unwrap());
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let i = sample();
        let err = holds(&i, &Substitution::empty(), &Query::atom(r("R"), [v("u")])).unwrap_err();
        assert!(matches!(err, DbError::UnboundVariable(_)));
    }

    #[test]
    fn equality_and_constants() {
        let i = sample();
        let s = Substitution::from_pairs([(v("u"), e(1)), (v("w"), e(1))]);
        assert!(holds(&i, &s, &Query::eq(v("u"), v("w"))).unwrap());
        assert!(holds(&i, &s, &Query::eq(v("u"), e(1))).unwrap());
        assert!(!holds(&i, &s, &Query::eq(v("u"), e(2))).unwrap());
    }

    #[test]
    fn connectives() {
        let i = sample();
        let s = Substitution::from_pairs([(v("u"), e(2))]);
        let ru = Query::atom(r("R"), [v("u")]);
        let qu = Query::atom(r("Q"), [v("u")]);
        assert!(holds(&i, &s, &ru.clone().and(qu.clone())).unwrap());
        assert!(holds(&i, &s, &ru.clone().or(qu.clone())).unwrap());
        assert!(!holds(&i, &s, &ru.clone().and(qu.clone()).not()).unwrap());
        assert!(holds(&i, &s, &ru.implies(qu)).unwrap());
    }

    #[test]
    fn quantifiers_range_over_active_domain() {
        let i = sample();
        // exists u. R(u) & Q(u)  — true (e2)
        let q = Query::exists(
            v("u"),
            Query::atom(r("R"), [v("u")]).and(Query::atom(r("Q"), [v("u")])),
        );
        assert!(holds_boolean(&i, &q).unwrap());

        // forall u. R(u) | Q(u)  — true: adom = {e1,e2,e3} all in R or Q
        let q = Query::forall(
            v("u"),
            Query::atom(r("R"), [v("u")]).or(Query::atom(r("Q"), [v("u")])),
        );
        assert!(holds_boolean(&i, &q).unwrap());

        // forall u. R(u) — false (e3 only in Q)
        let q = Query::forall(v("u"), Query::atom(r("R"), [v("u")]));
        assert!(!holds_boolean(&i, &q).unwrap());
    }

    #[test]
    fn quantification_over_empty_active_domain() {
        let mut i = Instance::new();
        i.set_proposition(r("p"), true);
        // adom is empty: exists is false, forall is vacuously true
        let ex = Query::exists(v("u"), Query::True);
        let fa = Query::forall(v("u"), Query::false_());
        assert!(!holds_boolean(&i, &ex).unwrap());
        assert!(holds_boolean(&i, &fa).unwrap());
    }

    #[test]
    fn forall_exists_duality() {
        let i = sample();
        let body = Query::atom(r("R"), [v("u")]);
        let forall = Query::forall(v("u"), body.clone());
        let dual = Query::exists(v("u"), body.not()).not();
        assert_eq!(
            holds_boolean(&i, &forall).unwrap(),
            holds_boolean(&i, &dual).unwrap()
        );
    }

    #[test]
    fn active_query_matches_active_domain() {
        let i = sample();
        let schema = crate::Schema::with_relations(&[("p", 0), ("R", 1), ("Q", 1)]);
        let active = crate::query::active_query(&schema, v("u"));
        for val in [1u64, 2, 3] {
            let s = Substitution::from_pairs([(v("u"), e(val))]);
            assert!(holds(&i, &s, &active).unwrap());
        }
        let s = Substitution::from_pairs([(v("u"), e(99))]);
        assert!(!holds(&i, &s, &active).unwrap());
    }
}
