//! Relational schemas: finite sets of relation names with arities.

use crate::error::DbError;
use crate::symbol::Sym;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The name of a relation `R/a`. Cheap to copy and compare.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelName(pub Sym);

impl RelName {
    /// Create (or look up) a relation name.
    pub fn new(name: &str) -> RelName {
        RelName(Sym::new(name))
    }

    /// The textual name.
    pub fn as_str(&self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Debug for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for RelName {
    fn from(s: &str) -> Self {
        RelName::new(s)
    }
}

/// A relational schema `R = {R₁/a₁, …, R_n/a_n}`.
///
/// Nullary relations (`arity == 0`) are *propositions* in the paper's terminology: in an
/// instance they are either the empty set (false) or the singleton `{R()}` (true).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    arities: BTreeMap<RelName, usize>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Build a schema from `(name, arity)` pairs.
    ///
    /// # Panics
    /// Panics if the same name is given two different arities (use [`Schema::try_add`] for a
    /// fallible variant).
    pub fn with_relations(rels: &[(&str, usize)]) -> Schema {
        let mut s = Schema::new();
        for &(name, arity) in rels {
            s.add_relation(name, arity);
        }
        s
    }

    /// Declare relation `name/arity`, returning its [`RelName`].
    ///
    /// Re-declaring an existing relation with the same arity is a no-op.
    ///
    /// # Panics
    /// Panics if the relation was already declared with a different arity.
    pub fn add_relation(&mut self, name: &str, arity: usize) -> RelName {
        self.try_add(name, arity)
            .expect("conflicting arity for relation")
    }

    /// Fallible version of [`Schema::add_relation`].
    pub fn try_add(&mut self, name: &str, arity: usize) -> Result<RelName, DbError> {
        let rel = RelName::new(name);
        match self.arities.get(&rel) {
            Some(&a) if a != arity => Err(DbError::ConflictingArity {
                relation: rel,
                first: a,
                second: arity,
            }),
            _ => {
                self.arities.insert(rel, arity);
                Ok(rel)
            }
        }
    }

    /// Declare a proposition (nullary relation).
    pub fn add_proposition(&mut self, name: &str) -> RelName {
        self.add_relation(name, 0)
    }

    /// The arity of `rel`, if declared.
    pub fn arity(&self, rel: RelName) -> Option<usize> {
        self.arities.get(&rel).copied()
    }

    /// Whether `rel` is declared in this schema.
    pub fn contains(&self, rel: RelName) -> bool {
        self.arities.contains_key(&rel)
    }

    /// Number of relations (including propositions).
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// Whether the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// Iterate over `(relation, arity)` pairs in deterministic (name) order.
    pub fn relations(&self) -> impl Iterator<Item = (RelName, usize)> + '_ {
        self.arities.iter().map(|(&r, &a)| (r, a))
    }

    /// Relations of non-zero arity.
    pub fn non_nullary(&self) -> impl Iterator<Item = (RelName, usize)> + '_ {
        self.relations().filter(|&(_, a)| a > 0)
    }

    /// Nullary relations (propositions).
    pub fn propositions(&self) -> impl Iterator<Item = RelName> + '_ {
        self.relations().filter(|&(_, a)| a == 0).map(|(r, _)| r)
    }

    /// Maximum arity over all relations (0 for an empty schema).
    pub fn max_arity(&self) -> usize {
        self.arities.values().copied().max().unwrap_or(0)
    }

    /// Merge another schema into this one.
    pub fn merge(&mut self, other: &Schema) -> Result<(), DbError> {
        for (rel, arity) in other.relations() {
            match self.arities.get(&rel) {
                Some(&a) if a != arity => {
                    return Err(DbError::ConflictingArity {
                        relation: rel,
                        first: a,
                        second: arity,
                    })
                }
                _ => {
                    self.arities.insert(rel, arity);
                }
            }
        }
        Ok(())
    }

    /// Check that a fact `rel(args…)` with `n_args` arguments is well-formed for this schema.
    pub fn check_arity(&self, rel: RelName, n_args: usize) -> Result<(), DbError> {
        match self.arity(rel) {
            None => Err(DbError::UnknownRelation(rel)),
            Some(a) if a != n_args => Err(DbError::ArityMismatch {
                relation: rel,
                expected: a,
                got: n_args,
            }),
            Some(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_schema() {
        let mut s = Schema::new();
        let p = s.add_proposition("p");
        let r = s.add_relation("R", 1);
        let succ = s.add_relation("Succ", 2);

        assert_eq!(s.arity(p), Some(0));
        assert_eq!(s.arity(r), Some(1));
        assert_eq!(s.arity(succ), Some(2));
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_arity(), 2);
        assert!(s.contains(r));
        assert!(!s.contains(RelName::new("Missing")));
        assert_eq!(s.propositions().collect::<Vec<_>>(), vec![p]);
        assert_eq!(s.non_nullary().count(), 2);
    }

    #[test]
    fn redeclaration_same_arity_is_noop() {
        let mut s = Schema::new();
        let a = s.add_relation("R", 2);
        let b = s.add_relation("R", 2);
        assert_eq!(a, b);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn conflicting_arity_is_an_error() {
        let mut s = Schema::new();
        s.add_relation("R", 2);
        let err = s.try_add("R", 3).unwrap_err();
        assert!(matches!(err, DbError::ConflictingArity { .. }));
    }

    #[test]
    fn with_relations_constructor() {
        let s = Schema::with_relations(&[("p", 0), ("R", 1), ("Q", 1)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_arity(), 1);
    }

    #[test]
    fn check_arity_errors() {
        let s = Schema::with_relations(&[("R", 2)]);
        assert!(s.check_arity(RelName::new("R"), 2).is_ok());
        assert!(matches!(
            s.check_arity(RelName::new("R"), 1),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_arity(RelName::new("S"), 1),
            Err(DbError::UnknownRelation(_))
        ));
    }

    #[test]
    fn merge_schemas() {
        let mut a = Schema::with_relations(&[("R", 1)]);
        let b = Schema::with_relations(&[("Q", 2), ("R", 1)]);
        a.merge(&b).unwrap();
        assert_eq!(a.len(), 2);

        let c = Schema::with_relations(&[("R", 3)]);
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new();
        assert!(s.is_empty());
        assert_eq!(s.max_arity(), 0);
    }
}
