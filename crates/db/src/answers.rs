//! Answer enumeration: `ans(Q, I)`, the set of substitutions of `Free-Vars(Q)` under which
//! the query holds.
//!
//! The evaluation is a small relational-algebra style engine:
//!
//! * positive atoms are answered by scanning and unifying against the relation's tuples,
//! * conjunction is a natural join,
//! * disjunction, negation and universal quantification fall back to active-domain
//!   enumeration (exactly the semantics of the paper — answers are always drawn from
//!   `adom(I)`),
//! * existential quantification is projection.
//!
//! The result always agrees with per-substitution evaluation via [`crate::eval::holds`];
//! this is checked by property tests.

use crate::error::DbError;
use crate::instance::Instance;
use crate::query::Query;
use crate::substitution::Substitution;
use crate::term::{Term, Var};
use crate::value::DataValue;
use std::collections::{BTreeSet, HashMap};

/// The answers `ans(Q, I)` of `Q` over `I`: all substitutions `σ : Free-Vars(Q) → adom(I)`
/// (plus constants appearing in `Q`, which per Appendix F.1 are allowed to appear in answers
/// when the constants extension is in use) such that `I, σ ⊨ Q`.
///
/// For a boolean query the result is `[ε]` when the query holds and `[]` otherwise, matching
/// the paper's convention.
pub fn answers(instance: &Instance, query: &Query) -> Result<Vec<Substitution>, DbError> {
    answers_within(instance, &instance.active_domain(), query)
}

/// [`answers`] with the active domain supplied by the caller. `adom` **must** equal
/// `instance.active_domain()` — callers evaluating several queries against one instance
/// (the successor enumerations evaluate every action guard) compute it once instead of once
/// per query. When the query names no constants outside `adom`, the set is used as-is
/// (no copy).
pub fn answers_within(
    instance: &Instance,
    adom: &BTreeSet<DataValue>,
    query: &Query,
) -> Result<Vec<Substitution>, DbError> {
    answers_with_constants(instance, adom, &query.constants(), query)
}

/// [`answers_within`] with the query's constants supplied by the caller (callers that
/// evaluate a fixed query repeatedly — action guards — cache the constant set and skip the
/// per-call query walk). `constants` **must** equal `query.constants()`.
///
/// Constants named in the query can be answers to equality atoms even when outside adom;
/// including them in the universe is harmless (they only survive if the query holds) and
/// needed for the constants extension. When every constant already lies in `adom` — in
/// particular for constant-free queries — the set is used as-is (no copy).
pub fn answers_with_constants(
    instance: &Instance,
    adom: &BTreeSet<DataValue>,
    constants: &BTreeSet<DataValue>,
    query: &Query,
) -> Result<Vec<Substitution>, DbError> {
    if constants.iter().all(|c| adom.contains(c)) {
        answers_with_universe(instance, adom, query)
    } else {
        let mut universe = adom.clone();
        universe.extend(constants.iter().copied());
        answers_with_universe(instance, &universe, query)
    }
}

/// The innermost answer enumeration: `universe` must already be `adom(I)` extended with the
/// query's constants.
fn answers_with_universe(
    instance: &Instance,
    universe: &BTreeSet<DataValue>,
    query: &Query,
) -> Result<Vec<Substitution>, DbError> {
    let rows = eval_set(instance, universe, query)?;
    // Every row of eval_set already binds exactly the free variables (the join relies on
    // the same invariant), so no per-row restriction is needed. The free-variable walk is
    // itself debug-only: it allocates per call and release builds only need the rows.
    #[cfg(debug_assertions)]
    {
        let free: Vec<Var> = query.free_vars().into_iter().collect();
        debug_assert!(rows
            .iter()
            .all(|row| row.len() == free.len() && free.iter().all(|&v| row.binds(v))));
    }
    Ok(rows.into_iter().collect())
}

/// Whether the query has at least one answer.
pub fn has_answer(instance: &Instance, query: &Query) -> Result<bool, DbError> {
    Ok(!answers(instance, query)?.is_empty())
}

/// Evaluate to the set of satisfying substitutions over `Free-Vars(query)`.
fn eval_set(
    instance: &Instance,
    universe: &BTreeSet<DataValue>,
    query: &Query,
) -> Result<BTreeSet<Substitution>, DbError> {
    match query {
        Query::True => Ok(BTreeSet::from([Substitution::empty()])),
        Query::Atom(rel, terms) => {
            let mut rows = BTreeSet::new();
            // an atom with constants is answered through a per-column index probe instead
            // of a full scan; with several bound columns the most selective one is chosen
            match probe_column(instance, *rel, terms) {
                Probe::Empty => {}
                Probe::At(col, value) => {
                    for tuple in instance.relation_with_value_at(*rel, col, value) {
                        if let Some(sub) = unify_tuple(terms, tuple) {
                            rows.insert(sub);
                        }
                    }
                }
                Probe::Scan => {
                    for tuple in instance.relation(*rel) {
                        if let Some(sub) = unify_tuple(terms, tuple) {
                            rows.insert(sub);
                        }
                    }
                }
            }
            Ok(rows)
        }
        Query::Eq(a, b) => {
            let mut rows = BTreeSet::new();
            match (a, b) {
                (Term::Value(x), Term::Value(y)) => {
                    if x == y {
                        rows.insert(Substitution::empty());
                    }
                }
                (Term::Var(v), Term::Value(c)) | (Term::Value(c), Term::Var(v)) => {
                    rows.insert(Substitution::from_pairs([(*v, *c)]));
                }
                (Term::Var(v), Term::Var(w)) => {
                    if v == w {
                        for &e in universe {
                            rows.insert(Substitution::from_pairs([(*v, e)]));
                        }
                    } else {
                        for &e in universe {
                            rows.insert(Substitution::from_pairs([(*v, e), (*w, e)]));
                        }
                    }
                }
            }
            Ok(rows)
        }
        Query::And(a, b) => {
            let left = eval_set(instance, universe, a)?;
            if left.is_empty() {
                // a join with the empty side is empty: skip evaluating the other conjunct
                // (action guards are conjunctions headed by a cheap enabling test, so this
                // is the common path for disabled actions)
                return Ok(left);
            }
            let right = eval_set(instance, universe, b)?;
            Ok(join(left, right, &a.free_vars(), &b.free_vars()))
        }
        Query::Or(a, b) => {
            // Cylindrify both sides to the union of free variables before taking the union.
            let free: BTreeSet<Var> = query.free_vars();
            let left = cylindrify(
                eval_set(instance, universe, a)?,
                &a.free_vars(),
                &free,
                universe,
            );
            let right = cylindrify(
                eval_set(instance, universe, b)?,
                &b.free_vars(),
                &free,
                universe,
            );
            Ok(left.union(&right).cloned().collect())
        }
        Query::Not(q) => {
            // Complement within adom^free_vars.
            let free: Vec<Var> = q.free_vars().into_iter().collect();
            let positive = eval_set(instance, universe, q)?;
            let mut rows = BTreeSet::new();
            for cand in enumerate(universe, &free) {
                if !positive.contains(&cand) {
                    rows.insert(cand);
                }
            }
            Ok(rows)
        }
        Query::Exists(v, q) => {
            // If the bound variable does not occur in the body, ∃v.q still requires a witness
            // value for v, so it is false whenever the universe is empty.
            if !q.free_vars().contains(v) && universe.is_empty() {
                return Ok(BTreeSet::new());
            }
            let inner = eval_set(instance, universe, q)?;
            let keep: Vec<Var> = q.free_vars().into_iter().filter(|x| x != v).collect();
            Ok(inner.into_iter().map(|s| s.restrict(keep.iter())).collect())
        }
        Query::Forall(v, q) => {
            // σ is an answer iff for every e in the universe, σ[v↦e] satisfies q.
            if !q.free_vars().contains(v) {
                // v does not occur: ∀v.q ≡ q (over a possibly empty universe the paper's
                // semantics makes ∀ vacuously true, but with no occurrence the body's truth
                // does not depend on v; an empty universe still yields vacuous truth).
                if universe.is_empty() {
                    let free: Vec<Var> = q.free_vars().into_iter().collect();
                    return Ok(enumerate(universe, &free).into_iter().collect());
                }
                return eval_set(instance, universe, q);
            }
            let inner = eval_set(instance, universe, q)?;
            let outer_vars: Vec<Var> = q.free_vars().into_iter().filter(|x| x != v).collect();
            let mut rows = BTreeSet::new();
            for cand in enumerate(universe, &outer_vars) {
                let all = universe
                    .iter()
                    .all(|&e| inner.contains(&cand.extended(*v, e)));
                if all {
                    rows.insert(cand);
                }
            }
            Ok(rows)
        }
    }
}

/// How to answer an atom: provably no match, an index probe at one column, or a full scan.
enum Probe {
    /// Some bound column's constant does not occur in that column at all.
    Empty,
    /// Probe the per-column index (or filtered scan for tiny relations) at this position.
    At(usize, DataValue),
    /// No term is bound: enumerate the relation.
    Scan,
}

/// Select how to answer `rel(terms…)`: among the constant-bound columns, first rule out the
/// atom entirely if any constant is absent from its column's (cached, sorted) value set,
/// then probe the **most selective** column — the one with the most distinct values, i.e.
/// the smallest expected bucket. Unbound atoms fall back to a scan.
fn probe_column(instance: &Instance, rel: crate::RelName, terms: &[Term]) -> Probe {
    let mut best: Option<(usize, DataValue, usize)> = None;
    for (col, term) in terms.iter().enumerate() {
        let Term::Value(c) = term else { continue };
        let column = instance.column_values(rel, col);
        if column.binary_search(c).is_err() {
            return Probe::Empty;
        }
        if best
            .as_ref()
            .is_none_or(|&(_, _, distinct)| column.len() > distinct)
        {
            best = Some((col, *c, column.len()));
        }
    }
    match best {
        Some((col, value, _)) => Probe::At(col, value),
        None => Probe::Scan,
    }
}

/// Match one tuple against an atom's term list, returning the induced bindings (`None` on
/// arity or constant mismatch, or when a repeated variable meets two different values).
fn unify_tuple(terms: &[Term], tuple: &[DataValue]) -> Option<Substitution> {
    if tuple.len() != terms.len() {
        return None;
    }
    let mut sub = Substitution::empty();
    for (term, &value) in terms.iter().zip(tuple.iter()) {
        match term {
            Term::Value(c) => {
                if *c != value {
                    return None;
                }
            }
            Term::Var(v) => match sub.get(*v) {
                Some(prev) if prev != value => return None,
                _ => {
                    sub.bind(*v, value);
                }
            },
        }
    }
    Some(sub)
}

/// The natural join of two row sets (conjunction). Every row of `eval_set(q)` binds exactly
/// `Free-Vars(q)`, so the join can key both sides on the shared variables and probe a hash
/// table — O(|L| + |R| + output) — instead of testing all |L|·|R| pairs for compatibility.
/// Rows that (defensively) miss a shared binding fall back to the pairwise path.
fn join(
    left: BTreeSet<Substitution>,
    right: BTreeSet<Substitution>,
    left_vars: &BTreeSet<Var>,
    right_vars: &BTreeSet<Var>,
) -> BTreeSet<Substitution> {
    // identity shortcuts: a singleton empty row (a satisfied boolean conjunct — action
    // guards are typically `proposition ∧ query`) joins to the other side unchanged
    if left.len() == 1 && left.iter().next().is_some_and(Substitution::is_empty) {
        return right;
    }
    if right.len() == 1 && right.iter().next().is_some_and(Substitution::is_empty) {
        return left;
    }
    let shared: Vec<Var> = left_vars.intersection(right_vars).copied().collect();
    let mut rows = BTreeSet::new();
    // tiny products (typical action guards) are faster pairwise than through a hash table
    if shared.is_empty() || left.len().saturating_mul(right.len()) <= 64 {
        for l in &left {
            for rgt in &right {
                if l.compatible(rgt) {
                    rows.insert(l.merged(rgt));
                }
            }
        }
        return rows;
    }
    let key_of = |row: &Substitution| -> Option<Vec<DataValue>> {
        shared.iter().map(|&v| row.get(v)).collect()
    };
    let mut by_key: HashMap<Vec<DataValue>, Vec<&Substitution>> = HashMap::new();
    let mut unkeyed: Vec<&Substitution> = Vec::new();
    for rgt in &right {
        match key_of(rgt) {
            Some(key) => by_key.entry(key).or_default().push(rgt),
            None => unkeyed.push(rgt),
        }
    }
    for l in &left {
        match key_of(l) {
            Some(key) => {
                if let Some(matches) = by_key.get(&key) {
                    for rgt in matches {
                        // equal keys make the rows agree on every variable bound by both
                        rows.insert(l.merged(rgt));
                    }
                }
                for rgt in &unkeyed {
                    if l.compatible(rgt) {
                        rows.insert(l.merged(rgt));
                    }
                }
            }
            None => {
                for rgt in &right {
                    if l.compatible(rgt) {
                        rows.insert(l.merged(rgt));
                    }
                }
            }
        }
    }
    rows
}

/// Extend every row over `from` to rows over `to ⊇ from` by enumerating the universe for the
/// missing variables.
fn cylindrify(
    rows: BTreeSet<Substitution>,
    from: &BTreeSet<Var>,
    to: &BTreeSet<Var>,
    universe: &BTreeSet<DataValue>,
) -> BTreeSet<Substitution> {
    let missing: Vec<Var> = to.difference(from).copied().collect();
    if missing.is_empty() {
        return rows;
    }
    let mut out = BTreeSet::new();
    for row in rows {
        for extension in enumerate(universe, &missing) {
            out.insert(row.merged(&extension));
        }
    }
    out
}

/// All substitutions of `vars` over `universe`.
fn enumerate(universe: &BTreeSet<DataValue>, vars: &[Var]) -> Vec<Substitution> {
    let mut result = vec![Substitution::empty()];
    for &v in vars {
        let mut next = Vec::with_capacity(result.len() * universe.len().max(1));
        for base in &result {
            for &e in universe {
                next.push(base.extended(v, e));
            }
        }
        result = next;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::holds;
    use crate::schema::RelName;

    fn r(name: &str) -> RelName {
        RelName::new(name)
    }
    fn v(name: &str) -> Var {
        Var::new(name)
    }
    fn e(i: u64) -> DataValue {
        DataValue::e(i)
    }

    fn sample() -> Instance {
        Instance::from_facts([
            (r("R"), vec![e(1)]),
            (r("R"), vec![e(2)]),
            (r("Q"), vec![e(2)]),
            (r("Q"), vec![e(3)]),
            (r("S"), vec![e(1), e(2)]),
            (r("p"), vec![]),
        ])
    }

    #[test]
    fn atom_answers() {
        let i = sample();
        let ans = answers(&i, &Query::atom(r("R"), [v("u")])).unwrap();
        assert_eq!(ans.len(), 2);
        let values: BTreeSet<DataValue> = ans.iter().map(|s| s.get(v("u")).unwrap()).collect();
        assert_eq!(values, BTreeSet::from([e(1), e(2)]));
    }

    #[test]
    fn atom_with_repeated_variable() {
        let mut i = sample();
        i.insert(r("S"), vec![e(3), e(3)]);
        // S(u,u) answers only the diagonal tuple
        let ans = answers(&i, &Query::atom(r("S"), [v("u"), v("u")])).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("u")), Some(e(3)));
    }

    #[test]
    fn atom_with_constant() {
        let i = sample();
        let ans = answers(
            &i,
            &Query::atom(r("S"), [Term::Value(e(1)), Term::Var(v("u"))]),
        )
        .unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("u")), Some(e(2)));
    }

    #[test]
    fn atom_with_constant_in_a_non_first_position() {
        let i = sample();
        // S(u, e2): the constant sits in the second column; answered by a column probe
        let ans = answers(
            &i,
            &Query::atom(r("S"), [Term::Var(v("u")), Term::Value(e(2))]),
        )
        .unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("u")), Some(e(1)));
        // a constant absent from its column rules the atom out without a scan
        let none = answers(
            &i,
            &Query::atom(r("S"), [Term::Var(v("u")), Term::Value(e(9))]),
        )
        .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn multi_column_probe_selection_agrees_with_scans() {
        // a skewed relation: column 0 has 2 distinct values, column 2 has 30 — probe
        // selection must pick the selective column, and the answers must match a scan
        let mut i = Instance::new();
        for k in 0..30u64 {
            i.insert(r("W"), vec![e(k % 2), e(k % 3), e(100 + k)]);
        }
        for (a, c) in [(0u64, 100u64), (1, 101), (0, 129), (1, 999)] {
            let q = Query::atom(
                r("W"),
                [Term::Value(e(a)), Term::Var(v("u")), Term::Value(e(c))],
            );
            let fast: BTreeSet<Substitution> = answers(&i, &q).unwrap().into_iter().collect();
            let slow: BTreeSet<Substitution> = i
                .relation(r("W"))
                .filter(|t| t[0] == e(a) && t[2] == e(c))
                .map(|t| Substitution::from_pairs([(v("u"), t[1])]))
                .collect();
            assert_eq!(fast, slow, "W({a}, u, {c})");
        }
    }

    #[test]
    fn boolean_queries_follow_the_paper_convention() {
        let i = sample();
        let yes = answers(&i, &Query::prop(r("p"))).unwrap();
        assert_eq!(yes, vec![Substitution::empty()]);
        let no = answers(&i, &Query::prop(r("missing"))).unwrap();
        assert!(no.is_empty());
    }

    #[test]
    fn conjunction_is_a_join() {
        let i = sample();
        let q = Query::atom(r("R"), [v("u")]).and(Query::atom(r("Q"), [v("u")]));
        let ans = answers(&i, &q).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("u")), Some(e(2)));
    }

    #[test]
    fn join_over_distinct_variables() {
        let i = sample();
        let q = Query::atom(r("S"), [v("x"), v("y")]).and(Query::atom(r("Q"), [v("y")]));
        let ans = answers(&i, &q).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("x")), Some(e(1)));
        assert_eq!(ans[0].get(v("y")), Some(e(2)));
    }

    #[test]
    fn negation_complements_within_adom() {
        let i = sample();
        // !R(u): adom = {1,2,3}, R = {1,2} → answers {3}
        let ans = answers(&i, &Query::atom(r("R"), [v("u")]).not()).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("u")), Some(e(3)));
    }

    #[test]
    fn disjunction_cylindrifies() {
        let i = sample();
        // R(x) | Q(y): all pairs where x ∈ R or y ∈ Q, over adom²
        let q = Query::atom(r("R"), [v("x")]).or(Query::atom(r("Q"), [v("y")]));
        let ans = answers(&i, &q).unwrap();
        // |adom|² = 9; pairs failing both: x ∈ {3} and y ∈ {1} → 1 → 8 answers
        assert_eq!(ans.len(), 8);
    }

    #[test]
    fn existential_projection() {
        let i = sample();
        let q = Query::exists(v("y"), Query::atom(r("S"), [v("x"), v("y")]));
        let ans = answers(&i, &q).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("x")), Some(e(1)));
        assert!(!ans[0].binds(v("y")));
    }

    #[test]
    fn universal_quantification() {
        let i = Instance::from_facts([
            (r("R"), vec![e(1)]),
            (r("R"), vec![e(2)]),
            (r("S"), vec![e(1), e(1)]),
            (r("S"), vec![e(1), e(2)]),
            (r("S"), vec![e(2), e(1)]),
        ]);
        // forall y. S(x, y): only x = e1 relates to every adom element
        let q = Query::forall(v("y"), Query::atom(r("S"), [v("x"), v("y")]));
        let ans = answers(&i, &q).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("x")), Some(e(1)));
    }

    #[test]
    fn equality_answers() {
        let i = sample();
        let ans = answers(&i, &Query::eq(v("u"), v("w"))).unwrap();
        assert_eq!(ans.len(), 3); // diagonal over adom
        let ans = answers(&i, &Query::eq(v("u"), e(2))).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("u")), Some(e(2)));
    }

    #[test]
    fn answers_agree_with_holds_on_handwritten_queries() {
        let i = sample();
        let queries = vec![
            Query::atom(r("R"), [v("u")]).and(Query::atom(r("Q"), [v("u")]).not()),
            Query::exists(
                v("y"),
                Query::atom(r("S"), [v("x"), v("y")]).and(Query::atom(r("R"), [v("y")])),
            ),
            Query::forall(
                v("y"),
                Query::atom(r("Q"), [v("y")]).implies(Query::atom(r("R"), [v("y")])),
            ),
            Query::atom(r("R"), [v("u")]).or(Query::atom(r("Q"), [v("u")])),
        ];
        for q in queries {
            let free: Vec<Var> = q.free_vars().into_iter().collect();
            let ans: BTreeSet<Substitution> = answers(&i, &q).unwrap().into_iter().collect();
            // check every enumerated candidate against `holds`
            for cand in super::enumerate(&i.active_domain(), &free) {
                let expected = holds(&i, &cand, &q).unwrap();
                assert_eq!(
                    ans.contains(&cand),
                    expected,
                    "query {q} disagreement at {cand:?}"
                );
            }
        }
    }

    #[test]
    fn has_answer_shortcut() {
        let i = sample();
        assert!(has_answer(&i, &Query::atom(r("R"), [v("u")])).unwrap());
        assert!(!has_answer(&i, &Query::atom(r("Zzz"), [v("u")])).unwrap());
    }
}
