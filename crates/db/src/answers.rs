//! Answer enumeration: `ans(Q, I)`, the set of substitutions of `Free-Vars(Q)` under which
//! the query holds.
//!
//! The evaluation is a small relational-algebra style engine over `Rows` — flat sorted
//! tables with one column per free variable of the query node (see the `rows` module for
//! the representation):
//!
//! * positive atoms are answered by index probes or scans, unifying each tuple straight
//!   into the node's flat row buffer,
//! * conjunction is a natural join (hash-partitioned above a small-product cutoff),
//! * disjunction, negation and universal quantification fall back to active-domain
//!   enumeration (exactly the semantics of the paper — answers are always drawn from
//!   `adom(I)`), realised as linear merges of sorted runs,
//! * existential quantification is projection.
//!
//! The result always agrees with per-substitution evaluation via [`crate::eval::holds`],
//! and with the previous `BTreeSet<Substitution>`-per-node evaluator **including the
//! answer order**; both are checked by property tests.

use crate::error::DbError;
use crate::instance::Instance;
use crate::query::Query;
use crate::rows::{merge_vars, unify_tuple_into, Rows};
use crate::substitution::Substitution;
use crate::term::{Term, Var};
use crate::value::DataValue;
use std::collections::BTreeSet;

/// The answers `ans(Q, I)` of `Q` over `I`: all substitutions `σ : Free-Vars(Q) → adom(I)`
/// (plus constants appearing in `Q`, which per Appendix F.1 are allowed to appear in answers
/// when the constants extension is in use) such that `I, σ ⊨ Q`.
///
/// For a boolean query the result is `[ε]` when the query holds and `[]` otherwise, matching
/// the paper's convention.
pub fn answers(instance: &Instance, query: &Query) -> Result<Vec<Substitution>, DbError> {
    answers_within(instance, &instance.active_domain(), query)
}

/// [`answers`] with the active domain supplied by the caller. `adom` **must** equal
/// `instance.active_domain()` — callers evaluating several queries against one instance
/// (the successor enumerations evaluate every action guard) compute it once instead of once
/// per query. When the query names no constants outside `adom`, the set is used as-is
/// (no copy).
pub fn answers_within(
    instance: &Instance,
    adom: &BTreeSet<DataValue>,
    query: &Query,
) -> Result<Vec<Substitution>, DbError> {
    answers_with_constants(instance, adom, &query.constants(), query)
}

/// [`answers_within`] with the query's constants supplied by the caller (callers that
/// evaluate a fixed query repeatedly — action guards — cache the constant set and skip the
/// per-call query walk). `constants` **must** equal `query.constants()`.
///
/// Constants named in the query can be answers to equality atoms even when outside adom;
/// including them in the universe is harmless (they only survive if the query holds) and
/// needed for the constants extension. When every constant already lies in `adom` — in
/// particular for constant-free queries — the set is used as-is (no copy).
pub fn answers_with_constants(
    instance: &Instance,
    adom: &BTreeSet<DataValue>,
    constants: &BTreeSet<DataValue>,
    query: &Query,
) -> Result<Vec<Substitution>, DbError> {
    if constants.iter().all(|c| adom.contains(c)) {
        answers_with_universe(instance, adom, query)
    } else {
        let mut universe = adom.clone();
        universe.extend(constants.iter().copied());
        answers_with_universe(instance, &universe, query)
    }
}

/// The innermost answer enumeration: `universe` must already be `adom(I)` extended with the
/// query's constants.
fn answers_with_universe(
    instance: &Instance,
    universe: &BTreeSet<DataValue>,
    query: &Query,
) -> Result<Vec<Substitution>, DbError> {
    let rows = eval_set(instance, universe, query)?;
    // Every non-empty node produces rows over exactly its free variables (the join relies
    // on the same invariant; empties may carry a truncated signature), so no per-row
    // restriction is needed. The free-variable walk is debug-only: it allocates per call
    // and release builds only need the rows.
    #[cfg(debug_assertions)]
    {
        let free: Vec<Var> = query.free_vars().into_iter().collect();
        if rows.is_empty() {
            debug_assert!(rows.vars().iter().all(|v| free.contains(v)));
        } else {
            debug_assert_eq!(rows.vars(), free.as_slice());
        }
    }
    Ok(rows.substitutions())
}

/// Whether the query has at least one answer.
pub fn has_answer(instance: &Instance, query: &Query) -> Result<bool, DbError> {
    Ok(!answers(instance, query)?.is_empty())
}

/// Evaluate to the sorted row set over `Free-Vars(query)`.
///
/// Signature invariant: a **non-empty** result's columns are exactly `Free-Vars(query)`;
/// an **empty** result may carry only a *subset* (the conjunction's short-circuit skips the
/// un-evaluated conjunct's variable walk — the hot path for disabled action guards). Every
/// consumer that derives a signature from a child therefore either tolerates truncated
/// empties (join, projection, cylindrification: empty in, empty out) or recomputes the
/// exact free variables when the child is empty (negation, universal quantification).
fn eval_set(
    instance: &Instance,
    universe: &BTreeSet<DataValue>,
    query: &Query,
) -> Result<Rows, DbError> {
    match query {
        Query::True => Ok(Rows::unit()),
        Query::Atom(rel, terms) => {
            let mut vars: Vec<Var> = terms.iter().filter_map(Term::as_var).collect();
            vars.sort_unstable();
            vars.dedup();
            if vars.is_empty() {
                // propositional or all-constant atom: {ε} iff a tuple matches
                return Ok(if atom_holds(instance, *rel, terms) {
                    Rows::unit()
                } else {
                    Rows::empty(vars)
                });
            }
            let mut data = Vec::new();
            // an atom with constants is answered through a per-column index probe instead
            // of a full scan; with several bound columns the most selective one is chosen
            match probe_column(instance, *rel, terms) {
                Probe::Empty => {}
                Probe::At(col, value) => {
                    for tuple in instance.relation_with_value_at(*rel, col, value) {
                        unify_tuple_into(&vars, terms, tuple, &mut data);
                    }
                }
                Probe::Scan => {
                    for tuple in instance.relation(*rel) {
                        unify_tuple_into(&vars, terms, tuple, &mut data);
                    }
                }
            }
            Ok(Rows::from_unsorted(vars, data))
        }
        Query::Eq(a, b) => Ok(match (a, b) {
            (Term::Value(x), Term::Value(y)) => {
                if x == y {
                    Rows::unit()
                } else {
                    Rows::empty(Vec::new())
                }
            }
            (Term::Var(v), Term::Value(c)) | (Term::Value(c), Term::Var(v)) => {
                Rows::from_sorted(vec![*v], vec![*c])
            }
            (Term::Var(v), Term::Var(w)) => {
                if v == w {
                    // the universe iterates ascending, so the rows come out sorted
                    Rows::from_sorted(vec![*v], universe.iter().copied().collect())
                } else {
                    let vars = merge_vars(&[*v], &[*w]);
                    let data = universe.iter().flat_map(|&e| [e, e]).collect();
                    Rows::from_sorted(vars, data)
                }
            }
        }),
        Query::And(a, b) => {
            let left = eval_set(instance, universe, a)?;
            if left.is_empty() {
                // a join with the empty side is empty: skip evaluating the other conjunct
                // — and its variable walk — entirely (action guards are conjunctions
                // headed by a cheap enabling test, so this is the common, allocation-free
                // path for disabled actions). The result's signature is truncated to the
                // left conjunct's; see the signature invariant above.
                return Ok(left);
            }
            let right = eval_set(instance, universe, b)?;
            Ok(left.join(right))
        }
        Query::Or(a, b) => {
            // Cylindrify both sides to the union of free variables before taking the union.
            let free: Vec<Var> = query.free_vars().into_iter().collect();
            let left = eval_set(instance, universe, a)?.cylindrify(&free, universe)?;
            let right = eval_set(instance, universe, b)?.cylindrify(&free, universe)?;
            Ok(left.union(&right))
        }
        Query::Not(q) => {
            // Complement within universe^free_vars: one linear merge of two sorted runs.
            let positive = eval_set(instance, universe, q)?;
            if positive.is_empty() {
                // an empty child may carry a truncated signature; the complement is the
                // full table over the *exact* free variables
                let free: Vec<Var> = q.free_vars().into_iter().collect();
                return Rows::full(universe, &free);
            }
            Ok(Rows::full(universe, positive.vars())?.difference(&positive))
        }
        Query::Exists(v, q) => {
            // If the bound variable does not occur in the body, ∃v.q still requires a witness
            // value for v, so it is false whenever the universe is empty. (Test the universe
            // first: the variable check walks the query.)
            if universe.is_empty() && !q.free_vars().contains(v) {
                let free: Vec<Var> = q.free_vars().into_iter().collect();
                return Ok(Rows::empty(free));
            }
            let inner = eval_set(instance, universe, q)?;
            let keep: Vec<Var> = inner.vars().iter().copied().filter(|x| x != v).collect();
            Ok(inner.project(&keep))
        }
        Query::Forall(v, q) => {
            // σ is an answer iff for every e in the universe, σ[v↦e] satisfies q.
            if !q.free_vars().contains(v) {
                // v does not occur: ∀v.q ≡ q (over a possibly empty universe the paper's
                // semantics makes ∀ vacuously true, but with no occurrence the body's truth
                // does not depend on v; an empty universe still yields vacuous truth).
                if universe.is_empty() {
                    let free: Vec<Var> = q.free_vars().into_iter().collect();
                    return Rows::full(universe, &free);
                }
                return eval_set(instance, universe, q);
            }
            let inner = eval_set(instance, universe, q)?;
            if inner.is_empty() {
                // possibly-truncated signature: with values to cover, no assignment can
                // (the result is empty, so a truncated signature is fine upward); over an
                // empty universe ∀ is vacuous, which needs the exact outer variables
                if universe.is_empty() {
                    let outer: Vec<Var> = q.free_vars().into_iter().filter(|x| x != v).collect();
                    return Ok(if outer.is_empty() {
                        Rows::unit()
                    } else {
                        Rows::empty(outer)
                    });
                }
                let outer: Vec<Var> = inner.vars().iter().copied().filter(|x| x != v).collect();
                return Ok(Rows::empty(outer));
            }
            forall_over(inner, *v, universe)
        }
    }
}

/// Whether an atom with no variables (a proposition, or all-constant columns) holds.
fn atom_holds(instance: &Instance, rel: crate::RelName, terms: &[Term]) -> bool {
    let matches = |tuple: &[DataValue]| {
        tuple.len() == terms.len()
            && terms
                .iter()
                .zip(tuple.iter())
                .all(|(t, &value)| matches!(t, Term::Value(c) if *c == value))
    };
    match probe_column(instance, rel, terms) {
        Probe::Empty => false,
        Probe::At(col, value) => instance
            .relation_with_value_at(rel, col, value)
            .any(|tuple| matches(tuple)),
        Probe::Scan => instance.relation(rel).any(|tuple| matches(tuple)),
    }
}

/// Universal quantification over a column: keep the assignments of the remaining columns
/// under which **every** universe value appears for `v`. Every cell of `inner` lies in the
/// universe (rows are built from instance tuples and universe enumeration only), and the
/// rows are distinct, so a group of rows agreeing on the outer columns covers the whole
/// universe exactly when its size is `|universe|` — one sort + one linear group scan.
fn forall_over(inner: Rows, v: Var, universe: &BTreeSet<DataValue>) -> Result<Rows, DbError> {
    // a non-empty inner has the exact signature (see `eval_set`), and its rows draw from
    // the universe, so the universe cannot be empty here
    debug_assert!(!inner.is_empty() && !universe.is_empty());
    let v_col = inner
        .vars()
        .binary_search(&v)
        .expect("quantified variable is free in the body");
    let outer: Vec<Var> = inner.vars().iter().copied().filter(|&x| x != v).collect();
    if outer.is_empty() {
        // rows over [v] are distinct values of v
        return Ok(if inner.len() == universe.len() {
            Rows::unit()
        } else {
            Rows::empty(Vec::new())
        });
    }
    // reorder every row to (outer columns…, v) so sorting groups by the outer assignment
    let width = inner.width();
    let outer_width = width - 1;
    let mut reordered: Vec<DataValue> = Vec::with_capacity(inner.len() * width);
    for row in inner.iter() {
        for (i, &value) in row.iter().enumerate() {
            if i != v_col {
                reordered.push(value);
            }
        }
        reordered.push(row[v_col]);
    }
    let mut rows: Vec<&[DataValue]> = reordered.chunks_exact(width).collect();
    rows.sort_unstable();
    let mut data = Vec::new();
    let mut at = 0;
    while at < rows.len() {
        let mut end = at + 1;
        while end < rows.len() && rows[end][..outer_width] == rows[at][..outer_width] {
            end += 1;
        }
        if end - at == universe.len() {
            data.extend_from_slice(&rows[at][..outer_width]);
        }
        at = end;
    }
    Ok(Rows::from_sorted(outer, data))
}

/// How to answer an atom: provably no match, an index probe at one column, or a full scan.
enum Probe {
    /// Some bound column's constant does not occur in that column at all.
    Empty,
    /// Probe the per-column index (or filtered scan for tiny relations) at this position.
    At(usize, DataValue),
    /// No term is bound: enumerate the relation.
    Scan,
}

/// Select how to answer `rel(terms…)`: among the constant-bound columns, first rule out the
/// atom entirely if any constant is absent from its column's (cached, sorted) value set,
/// then probe the **most selective** column — the one with the most distinct values, i.e.
/// the smallest expected bucket. Unbound atoms fall back to a scan.
fn probe_column(instance: &Instance, rel: crate::RelName, terms: &[Term]) -> Probe {
    let mut best: Option<(usize, DataValue, usize)> = None;
    for (col, term) in terms.iter().enumerate() {
        let Term::Value(c) = term else { continue };
        let column = instance.column_values(rel, col);
        if column.binary_search(c).is_err() {
            return Probe::Empty;
        }
        if best
            .as_ref()
            .is_none_or(|&(_, _, distinct)| column.len() > distinct)
        {
            best = Some((col, *c, column.len()));
        }
    }
    match best {
        Some((col, value, _)) => Probe::At(col, value),
        None => Probe::Scan,
    }
}

/// All substitutions of `vars` over `universe` (test oracle for the row-based evaluator).
#[cfg(test)]
fn enumerate(universe: &BTreeSet<DataValue>, vars: &[Var]) -> Vec<Substitution> {
    let mut result = vec![Substitution::empty()];
    for &v in vars {
        let mut next = Vec::with_capacity(result.len() * universe.len().max(1));
        for base in &result {
            for &e in universe {
                next.push(base.extended(v, e));
            }
        }
        result = next;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::holds;
    use crate::schema::RelName;

    fn r(name: &str) -> RelName {
        RelName::new(name)
    }
    fn v(name: &str) -> Var {
        Var::new(name)
    }
    fn e(i: u64) -> DataValue {
        DataValue::e(i)
    }

    fn sample() -> Instance {
        Instance::from_facts([
            (r("R"), vec![e(1)]),
            (r("R"), vec![e(2)]),
            (r("Q"), vec![e(2)]),
            (r("Q"), vec![e(3)]),
            (r("S"), vec![e(1), e(2)]),
            (r("p"), vec![]),
        ])
    }

    #[test]
    fn atom_answers() {
        let i = sample();
        let ans = answers(&i, &Query::atom(r("R"), [v("u")])).unwrap();
        assert_eq!(ans.len(), 2);
        let values: BTreeSet<DataValue> = ans.iter().map(|s| s.get(v("u")).unwrap()).collect();
        assert_eq!(values, BTreeSet::from([e(1), e(2)]));
    }

    #[test]
    fn atom_with_repeated_variable() {
        let mut i = sample();
        i.insert(r("S"), vec![e(3), e(3)]);
        // S(u,u) answers only the diagonal tuple
        let ans = answers(&i, &Query::atom(r("S"), [v("u"), v("u")])).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("u")), Some(e(3)));
    }

    #[test]
    fn atom_with_constant() {
        let i = sample();
        let ans = answers(
            &i,
            &Query::atom(r("S"), [Term::Value(e(1)), Term::Var(v("u"))]),
        )
        .unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("u")), Some(e(2)));
    }

    #[test]
    fn atom_with_constant_in_a_non_first_position() {
        let i = sample();
        // S(u, e2): the constant sits in the second column; answered by a column probe
        let ans = answers(
            &i,
            &Query::atom(r("S"), [Term::Var(v("u")), Term::Value(e(2))]),
        )
        .unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("u")), Some(e(1)));
        // a constant absent from its column rules the atom out without a scan
        let none = answers(
            &i,
            &Query::atom(r("S"), [Term::Var(v("u")), Term::Value(e(9))]),
        )
        .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn multi_column_probe_selection_agrees_with_scans() {
        // a skewed relation: column 0 has 2 distinct values, column 2 has 30 — probe
        // selection must pick the selective column, and the answers must match a scan
        let mut i = Instance::new();
        for k in 0..30u64 {
            i.insert(r("W"), vec![e(k % 2), e(k % 3), e(100 + k)]);
        }
        for (a, c) in [(0u64, 100u64), (1, 101), (0, 129), (1, 999)] {
            let q = Query::atom(
                r("W"),
                [Term::Value(e(a)), Term::Var(v("u")), Term::Value(e(c))],
            );
            let fast: BTreeSet<Substitution> = answers(&i, &q).unwrap().into_iter().collect();
            let slow: BTreeSet<Substitution> = i
                .relation(r("W"))
                .filter(|t| t[0] == e(a) && t[2] == e(c))
                .map(|t| Substitution::from_pairs([(v("u"), t[1])]))
                .collect();
            assert_eq!(fast, slow, "W({a}, u, {c})");
        }
    }

    #[test]
    fn boolean_queries_follow_the_paper_convention() {
        let i = sample();
        let yes = answers(&i, &Query::prop(r("p"))).unwrap();
        assert_eq!(yes, vec![Substitution::empty()]);
        let no = answers(&i, &Query::prop(r("missing"))).unwrap();
        assert!(no.is_empty());
    }

    #[test]
    fn conjunction_is_a_join() {
        let i = sample();
        let q = Query::atom(r("R"), [v("u")]).and(Query::atom(r("Q"), [v("u")]));
        let ans = answers(&i, &q).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("u")), Some(e(2)));
    }

    #[test]
    fn join_over_distinct_variables() {
        let i = sample();
        let q = Query::atom(r("S"), [v("x"), v("y")]).and(Query::atom(r("Q"), [v("y")]));
        let ans = answers(&i, &q).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("x")), Some(e(1)));
        assert_eq!(ans[0].get(v("y")), Some(e(2)));
    }

    #[test]
    fn negation_complements_within_adom() {
        let i = sample();
        // !R(u): adom = {1,2,3}, R = {1,2} → answers {3}
        let ans = answers(&i, &Query::atom(r("R"), [v("u")]).not()).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("u")), Some(e(3)));
    }

    #[test]
    fn disjunction_cylindrifies() {
        let i = sample();
        // R(x) | Q(y): all pairs where x ∈ R or y ∈ Q, over adom²
        let q = Query::atom(r("R"), [v("x")]).or(Query::atom(r("Q"), [v("y")]));
        let ans = answers(&i, &q).unwrap();
        // |adom|² = 9; pairs failing both: x ∈ {3} and y ∈ {1} → 1 → 8 answers
        assert_eq!(ans.len(), 8);
    }

    #[test]
    fn existential_projection() {
        let i = sample();
        let q = Query::exists(v("y"), Query::atom(r("S"), [v("x"), v("y")]));
        let ans = answers(&i, &q).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("x")), Some(e(1)));
        assert!(!ans[0].binds(v("y")));
    }

    #[test]
    fn universal_quantification() {
        let i = Instance::from_facts([
            (r("R"), vec![e(1)]),
            (r("R"), vec![e(2)]),
            (r("S"), vec![e(1), e(1)]),
            (r("S"), vec![e(1), e(2)]),
            (r("S"), vec![e(2), e(1)]),
        ]);
        // forall y. S(x, y): only x = e1 relates to every adom element
        let q = Query::forall(v("y"), Query::atom(r("S"), [v("x"), v("y")]));
        let ans = answers(&i, &q).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("x")), Some(e(1)));
    }

    #[test]
    fn equality_answers() {
        let i = sample();
        let ans = answers(&i, &Query::eq(v("u"), v("w"))).unwrap();
        assert_eq!(ans.len(), 3); // diagonal over adom
        let ans = answers(&i, &Query::eq(v("u"), e(2))).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].get(v("u")), Some(e(2)));
    }

    #[test]
    fn answers_agree_with_holds_on_handwritten_queries() {
        let i = sample();
        let queries = vec![
            Query::atom(r("R"), [v("u")]).and(Query::atom(r("Q"), [v("u")]).not()),
            Query::exists(
                v("y"),
                Query::atom(r("S"), [v("x"), v("y")]).and(Query::atom(r("R"), [v("y")])),
            ),
            Query::forall(
                v("y"),
                Query::atom(r("Q"), [v("y")]).implies(Query::atom(r("R"), [v("y")])),
            ),
            Query::atom(r("R"), [v("u")]).or(Query::atom(r("Q"), [v("u")])),
        ];
        for q in queries {
            let free: Vec<Var> = q.free_vars().into_iter().collect();
            let ans: BTreeSet<Substitution> = answers(&i, &q).unwrap().into_iter().collect();
            // check every enumerated candidate against `holds`
            for cand in super::enumerate(&i.active_domain(), &free) {
                let expected = holds(&i, &cand, &q).unwrap();
                assert_eq!(
                    ans.contains(&cand),
                    expected,
                    "query {q} disagreement at {cand:?}"
                );
            }
        }
    }

    #[test]
    fn has_answer_shortcut() {
        let i = sample();
        assert!(has_answer(&i, &Query::atom(r("R"), [v("u")])).unwrap());
        assert!(!has_answer(&i, &Query::atom(r("Zzz"), [v("u")])).unwrap());
    }
}
