//! Crash-safe session journals: append-only logs of accepted transactions.
//!
//! When the server runs with `--journal-dir`, every session writes an append-only journal
//! file recording its `Open` payload and each **accepted** transaction (records are
//! appended only after the incremental checker accepted the step, so a journal never
//! contains a rejected or half-applied transaction). On boot the server replays every
//! journal in the directory through a fresh [`Session`], restoring the exact run spine,
//! interner and counters the crashed process held; clients re-attach with the wire
//! `Resume` request. See the crash-recovery runbook in `docs/OPERATIONS.md`.
//!
//! # File format
//!
//! A journal is the 4-byte magic `RDJ1` followed by frames. Each frame is:
//!
//! ```text
//! u32 BE payload length │ u32 BE CRC-32 (IEEE) of the payload │ payload (JSON)
//! ```
//!
//! The payload is a [`JournalRecord`] in serde's externally-tagged JSON form. A crash can
//! tear at most the **last** frame (appends go through one buffered writer and the kernel
//! appends `write(2)` data in order); recovery verifies every CRC and truncates the file
//! back to the last intact frame boundary, so a torn tail costs at most the final
//! transaction — never the session.
//!
//! # Durability vs. availability
//!
//! `flush` happens per record; `fsync` is batched (every [`Journal::fsync_every`] records,
//! plus on clean close), bounding the work lost to an OS-level crash to the batch window.
//! If an append fails (disk full, journal directory removed, …) the journal marks itself
//! [`broken`](Journal::broken) and the session **keeps serving** — availability wins over
//! durability for later transactions, and the operator sees one stderr line per session.

use crate::protocol::ErrorCode;
use crate::session::Session;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The journal file magic: "RDJ" + format version 1.
pub const JOURNAL_MAGIC: [u8; 4] = *b"RDJ1";

/// Default fsync batching: sync the file every this-many appended records.
pub const DEFAULT_FSYNC_EVERY: usize = 8;

/// One journal entry. The first record of every journal is `Open`; every later record is
/// a `Check` that the session **accepted** (`Ok` or `Violation` outcome — both extend the
/// run). Replaying the records through [`Session`] reproduces the session exactly.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// The session's `Open` payload.
    Open {
        /// The DMS, in `rdms_core::Dms`'s serde JSON form.
        dms: rdms_core::Dms,
        /// The recency bound `b`.
        bound: usize,
        /// The invariant φ, in concrete syntax.
        invariant: String,
        /// Whether the session emits violation certificates.
        emit_certificates: bool,
    },
    /// One accepted transaction.
    Check {
        /// The action's declared name.
        action: String,
        /// `σ`: variable name → data value index.
        bindings: BTreeMap<String, u64>,
    },
    /// One accepted in-place revision of the session's inputs (the wire `Revise`
    /// request); omitted fields kept their values. Appended only after the engine
    /// accepted the revision, so replaying it cannot fail where the original succeeded.
    Revise {
        /// Replacement DMS, if the revision changed it.
        #[serde(default)]
        dms: Option<rdms_core::Dms>,
        /// Replacement recency bound, if changed.
        #[serde(default)]
        bound: Option<usize>,
        /// Replacement invariant (concrete syntax), if changed.
        #[serde(default)]
        invariant: Option<String>,
    },
}

/// Where journal bytes go. [`File`] is the real sink; tests inject in-memory and
/// fault-injecting sinks (see [`SharedBuffer`] and `crate::faults`) through the same
/// seam, so the append/parse/recover path is exercised without touching a filesystem.
pub trait JournalSink: Write + Send {
    /// Make everything written so far durable (fsync for files, no-op for buffers).
    fn sync(&mut self) -> io::Result<()>;
}

impl JournalSink for File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

/// An in-memory [`JournalSink`] the test can keep a handle on: the journal writes through
/// the `Arc`, the test parses the accumulated bytes with [`parse_journal`].
#[derive(Clone, Debug, Default)]
pub struct SharedBuffer(pub Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// A snapshot of everything written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("buffer poisoned").clone()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl JournalSink for SharedBuffer {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// CRC-32 (IEEE 802.3, the zlib/`cksum -o 3` polynomial), table-driven, built at compile
/// time. Hand-rolled because the workspace vendors no checksum crate; the reference
/// vectors in the tests pin it to the standard definition.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Serialize one record as a journal frame (length + CRC + JSON payload).
pub fn encode_record(record: &JournalRecord) -> Vec<u8> {
    let payload = serde_json::to_string(record).expect("journal records serialize");
    let payload = payload.as_bytes();
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&crc32(payload).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// An open session journal. Created with the `Open` record already durable; call
/// [`append`](Journal::append) after each accepted transaction and
/// [`retire`](Journal::retire) on clean close.
pub struct Journal {
    sink: Box<dyn JournalSink>,
    path: Option<PathBuf>,
    fsync_every: usize,
    appended_since_sync: usize,
    broken: Option<String>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("fsync_every", &self.fsync_every)
            .field("broken", &self.broken)
            .finish_non_exhaustive()
    }
}

/// The journal filename for a session id.
pub fn journal_file_name(session: u64) -> String {
    format!("session-{session}.journal")
}

/// The checkpoint filename for a session id (written beside the journal on drain and
/// eviction; see [`SessionSnapshot`]).
pub fn checkpoint_file_name(session: u64) -> String {
    format!("session-{session}.checkpoint")
}

/// The checkpoint path that sits beside a journal path.
fn checkpoint_path(journal_path: &Path) -> PathBuf {
    journal_path.with_extension("checkpoint")
}

/// Fsync a directory, making its entry changes (create, rename, unlink) durable. On
/// POSIX, fsyncing a file persists its *contents* but not the directory entry naming it;
/// without this, a crash shortly after creating or unlinking a journal could lose the
/// file wholesale — or resurrect a retired one — even though the data was synced.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Parse a session id back out of a journal filename; `None` for foreign files.
pub fn parse_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("session-")?
        .strip_suffix(".journal")?
        .parse()
        .ok()
}

impl Journal {
    /// Create `dir/session-<id>.journal` and write (and fsync) the magic and the `Open`
    /// record, so a session that crashes after `Opened` was sent is always recoverable.
    /// Fails — and the caller should reject the `Open` with [`ErrorCode::JournalError`] —
    /// if the directory is unusable.
    pub fn create(
        dir: &Path,
        session: u64,
        open: &JournalRecord,
        fsync_every: usize,
    ) -> io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(journal_file_name(session));
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)?;
        let mut journal = Journal {
            sink: Box::new(file),
            path: Some(path),
            fsync_every: fsync_every.max(1),
            appended_since_sync: 0,
            broken: None,
        };
        journal.sink.write_all(&JOURNAL_MAGIC)?;
        journal.sink.write_all(&encode_record(open))?;
        journal.sink.flush()?;
        journal.sink.sync()?;
        // crash consistency: the file's contents are durable, but its directory entry is
        // not until the directory itself is synced — without this, a crash right after
        // `Opened` was sent could lose the whole journal despite the fsync above
        sync_dir(dir)?;
        Ok(journal)
    }

    /// Re-open an existing journal for appending (the `Resume` path). The file must
    /// already have been through [`recover_file`], which truncated any torn tail.
    pub fn open_append(path: &Path, fsync_every: usize) -> io::Result<Journal> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal {
            sink: Box::new(file),
            path: Some(path.to_path_buf()),
            fsync_every: fsync_every.max(1),
            appended_since_sync: 0,
            broken: None,
        })
    }

    /// Build a journal over an arbitrary sink (in-memory buffers, fault-injecting
    /// wrappers). Writes the magic and the `Open` record like [`create`](Journal::create).
    pub fn with_sink(
        mut sink: Box<dyn JournalSink>,
        open: &JournalRecord,
        fsync_every: usize,
    ) -> io::Result<Journal> {
        sink.write_all(&JOURNAL_MAGIC)?;
        sink.write_all(&encode_record(open))?;
        sink.flush()?;
        sink.sync()?;
        Ok(Journal {
            sink,
            path: None,
            fsync_every: fsync_every.max(1),
            appended_since_sync: 0,
            broken: None,
        })
    }

    /// Append one accepted transaction. Flushes per record; fsyncs every
    /// [`fsync_every`](Self::fsync_every) records. On failure the journal goes
    /// [`broken`](Self::broken) (one stderr line) and later appends are no-ops — the
    /// session keeps serving, un-journaled.
    pub fn append(&mut self, record: &JournalRecord) {
        if self.broken.is_some() {
            return;
        }
        let result = (|| -> io::Result<()> {
            self.sink.write_all(&encode_record(record))?;
            self.sink.flush()?;
            self.appended_since_sync += 1;
            if self.appended_since_sync >= self.fsync_every {
                self.sink.sync()?;
                self.appended_since_sync = 0;
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!(
                "rdms-serve: journal {} broken, session continues un-journaled: {e}",
                self.path
                    .as_deref()
                    .map_or_else(|| "<in-memory>".to_string(), |p| p.display().to_string()),
            );
            self.broken = Some(e.to_string());
        }
    }

    /// Why appends stopped, if the journal is broken.
    pub fn broken(&self) -> Option<&str> {
        self.broken.as_deref()
    }

    /// The fsync batch size.
    pub fn fsync_every(&self) -> usize {
        self.fsync_every
    }

    /// The backing file, when file-backed.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Clean close: sync outstanding records and delete the file. A retired session needs
    /// no recovery, so keeping the journal would only resurrect it as a ghost at next
    /// boot.
    pub fn retire(mut self) -> io::Result<()> {
        let _ = self.sink.flush();
        let _ = self.sink.sync();
        if let Some(path) = self.path.take() {
            std::fs::remove_file(&path)?;
            // a drain checkpoint for a cleanly closed session is as stale as its journal
            let _ = std::fs::remove_file(checkpoint_path(&path));
            // crash consistency: sync the unlinks, or a crash now could resurrect the
            // retired session as a ghost at next boot
            if let Some(dir) = path.parent() {
                sync_dir(dir)?;
            }
        }
        Ok(())
    }
}

impl Drop for Journal {
    /// Best-effort durability for the batch window: eviction, drain and poison all drop
    /// the journal (keeping the file for recovery), so the tail records get one last
    /// flush+fsync on the way out.
    fn drop(&mut self) {
        if self.broken.is_none() {
            let _ = self.sink.flush();
            if self.appended_since_sync > 0 {
                let _ = self.sink.sync();
            }
        }
    }
}

/// The outcome of parsing journal bytes: the intact records, how many bytes of the file
/// they cover (magic included), and whether a torn/corrupt tail was cut off.
#[derive(Debug)]
pub struct ParsedJournal {
    /// Every record with an intact frame, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of valid prefix: truncating the file to this length removes exactly the
    /// torn tail.
    pub good_len: u64,
    /// Whether anything (a short header, a short payload, a CRC mismatch, undecodable
    /// JSON) followed the valid prefix.
    pub torn: bool,
}

/// Parse journal bytes, stopping at the first torn or corrupt frame. Pure — the
/// fault-injection tests drive it over in-memory buffers with every possible cut point.
/// Returns `None` when the magic itself is wrong (not a journal; do not truncate).
pub fn parse_journal(bytes: &[u8]) -> Option<ParsedJournal> {
    if bytes.len() < 4 || bytes[..4] != JOURNAL_MAGIC {
        return None;
    }
    let mut records = Vec::new();
    let mut offset = 4usize;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            return Some(ParsedJournal {
                records,
                good_len: offset as u64,
                torn: false,
            });
        }
        let Some(frame) = rest.get(..8) else {
            break; // short header
        };
        let len = u32::from_be_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
        let want_crc = u32::from_be_bytes(frame[4..8].try_into().expect("4 bytes"));
        let Some(payload) = rest.get(8..8 + len) else {
            break; // short payload
        };
        if crc32(payload) != want_crc {
            break;
        }
        let Ok(record) = std::str::from_utf8(payload)
            .map_err(|_| ())
            .and_then(|text| serde_json::from_str::<JournalRecord>(text).map_err(|_| ()))
        else {
            break; // intact CRC but undecodable content: treat as corrupt tail
        };
        records.push(record);
        offset += 8 + len;
    }
    Some(ParsedJournal {
        records,
        good_len: offset as u64,
        torn: true,
    })
}

/// A drain-time snapshot of a live session: the run spine plus the counters that cannot
/// be recomputed without re-evaluating the invariant per configuration.
///
/// Written beside the journal as `session-<id>.checkpoint` when a session leaves the
/// server without a clean `Close` (drain, eviction) and the server journals. At boot,
/// recovery **prefers** a checkpoint consistent with the journal: the session is rebuilt
/// from the snapshot ([`IncrementalChecker::resume`](rdms_checker::IncrementalChecker),
/// no per-step re-validation) and only the journal records *past* the snapshot are
/// replayed — so rebooting under a long verification costs the suffix since the last
/// drain, not the whole session. Any inconsistency (bound, DMS or invariant mismatch, a
/// run longer than the journal) falls back to full journal replay, which validates every
/// transition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The session's DMS.
    pub dms: rdms_core::Dms,
    /// The recency bound `b`.
    pub bound: usize,
    /// The invariant φ (parsed form; the journal's `Open` record keeps the concrete
    /// syntax, and recovery cross-checks the two).
    pub invariant: rdms_db::Query,
    /// Whether the session emits violation certificates.
    pub emit_certificates: bool,
    /// The run spine at snapshot time.
    pub run: rdms_core::ExtendedRun,
    /// Accepted transactions (plus possibly the initial configuration) that violated φ.
    pub violations: usize,
    /// Length of the first violating prefix, if one was observed.
    pub first_violation_len: Option<usize>,
}

/// Atomically write a session's checkpoint beside its journal: temp file, fsync, rename,
/// directory fsync — a crash mid-write must never leave a half-written checkpoint
/// shadowing a good journal.
pub fn write_snapshot(dir: &Path, session: u64, snapshot: &SessionSnapshot) -> io::Result<()> {
    let json = serde_json::to_string(snapshot).expect("snapshots serialize");
    let tmp = dir.join(format!("session-{session}.checkpoint.tmp"));
    let path = dir.join(checkpoint_file_name(session));
    {
        let mut file = File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, &path)?;
    sync_dir(dir)?;
    Ok(())
}

/// Read a checkpoint back; `None` for a missing or undecodable file (recovery falls back
/// to full journal replay in both cases).
pub fn read_snapshot(path: &Path) -> Option<SessionSnapshot> {
    let json = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&json).ok()
}

/// A session restored from a journal at boot, parked until a client `Resume`s it.
#[derive(Debug)]
pub struct RecoveredSession {
    /// The rebuilt session: same run spine, interner and counters as at the last
    /// journaled transaction.
    pub session: Session,
    /// The journal file, re-opened for appending when the session is resumed.
    pub path: PathBuf,
    /// Accepted transactions replayed (the `Check` records applied).
    pub replayed: usize,
    /// Whether a torn tail was truncated off the file during recovery.
    pub truncated: bool,
    /// Whether the session was rebuilt from a drain checkpoint (replaying only the
    /// journal suffix) rather than by full journal replay.
    pub from_checkpoint: bool,
}

/// Recover one journal file: parse, truncate any torn tail in place, and replay the
/// records into a fresh [`Session`]. `Ok(None)` means the file is not a journal (wrong
/// magic) or its records cannot rebuild a session (no leading `Open`, invariant no longer
/// parses, a replay diverges); such files are left untouched for inspection.
pub fn recover_file(path: &Path) -> io::Result<Option<RecoveredSession>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let Some(parsed) = parse_journal(&bytes) else {
        return Ok(None);
    };
    if parsed.torn {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(parsed.good_len)?;
        file.sync_data()?;
    }
    // prefer the drain checkpoint when one is present and consistent: rebuild from the
    // snapshot and replay only the journal records past it, so a reboot under a long
    // session costs the suffix since the last drain instead of the whole session
    if let Some(snapshot) = read_snapshot(&checkpoint_path(path)) {
        if let Some((session, replayed)) = resume_with_suffix(snapshot, &parsed.records) {
            return Ok(Some(RecoveredSession {
                session,
                path: path.to_path_buf(),
                replayed,
                truncated: parsed.torn,
                from_checkpoint: true,
            }));
        }
        eprintln!(
            "rdms-serve: checkpoint beside {} is inconsistent with its journal, \
             falling back to full replay",
            path.display()
        );
    }
    Ok(
        replay(&parsed.records).map(|(session, replayed)| RecoveredSession {
            session,
            path: path.to_path_buf(),
            replayed,
            truncated: parsed.torn,
            from_checkpoint: false,
        }),
    )
}

/// Rebuild a session from a checkpoint and replay the journal's `Check` records past the
/// snapshot's run length. `None` when the snapshot and journal disagree (different DMS,
/// bound or invariant; a run longer than the journal records) — the caller falls back to
/// full replay, which validates every transition from scratch.
fn resume_with_suffix(
    snapshot: SessionSnapshot,
    records: &[JournalRecord],
) -> Option<(Session, usize)> {
    // A `Revise` record changes the session's inputs mid-stream, so the
    // record-index ↔ run-length mapping the checkpoint fast path relies on no
    // longer holds anywhere in the journal. Full replay handles it correctly.
    if records
        .iter()
        .any(|r| matches!(r, JournalRecord::Revise { .. }))
    {
        return None;
    }
    let JournalRecord::Open {
        dms,
        bound,
        invariant,
        emit_certificates,
    } = records.first()?
    else {
        return None;
    };
    let parsed_invariant = rdms_db::parser::parse_query(invariant).ok()?;
    if snapshot.bound != *bound
        || snapshot.dms != *dms
        || snapshot.invariant != parsed_invariant
        || snapshot.emit_certificates != *emit_certificates
        || snapshot.run.len() > records.len() - 1
    {
        return None;
    }
    let prefix = snapshot.run.len();
    let mut session = Session::resume(snapshot).ok()?;
    let mut replayed = prefix;
    for record in &records[1 + prefix..] {
        let JournalRecord::Check { action, bindings } = record else {
            break; // a second Open mid-journal is corruption; keep the prefix
        };
        let accepted = catch_unwind(AssertUnwindSafe(|| {
            use crate::session::CheckOutcome;
            matches!(
                session.check(action, bindings),
                CheckOutcome::Ok { .. } | CheckOutcome::Violation { .. }
            )
        }));
        match accepted {
            Ok(true) => replayed += 1,
            Ok(false) | Err(_) => break,
        }
    }
    Some((session, replayed))
}

/// Replay parsed records into a fresh session. Replay stops — keeping the prefix — at the
/// first record the session no longer accepts or that panics the checker (each record is
/// applied under `catch_unwind`, so one poisoned record cannot take recovery down).
pub fn replay(records: &[JournalRecord]) -> Option<(Session, usize)> {
    let mut records = records.iter();
    let JournalRecord::Open {
        dms,
        bound,
        invariant,
        emit_certificates,
    } = records.next()?
    else {
        return None;
    };
    let mut session = Session::open(dms.clone(), *bound, invariant, *emit_certificates).ok()?;
    let mut replayed = 0;
    for record in records {
        match record {
            JournalRecord::Check { action, bindings } => {
                let accepted = catch_unwind(AssertUnwindSafe(|| {
                    use crate::session::CheckOutcome;
                    matches!(
                        session.check(action, bindings),
                        CheckOutcome::Ok { .. } | CheckOutcome::Violation { .. }
                    )
                }));
                match accepted {
                    Ok(true) => replayed += 1,
                    // a rejection or panic on a record the original session accepted
                    // means the journal diverged from the engine; the prefix up to
                    // here is still exact
                    Ok(false) | Err(_) => break,
                }
            }
            JournalRecord::Revise {
                dms,
                bound,
                invariant,
            } => {
                // Journaled only after the engine accepted it, so a failure here
                // means divergence — keep the prefix, same as a rejected Check.
                // Revisions are input edits, not transactions: `replayed` counts
                // only accepted `Check` records.
                let applied = catch_unwind(AssertUnwindSafe(|| {
                    session
                        .revise(dms.clone(), *bound, invariant.as_deref())
                        .is_ok()
                }));
                if !matches!(applied, Ok(true)) {
                    break;
                }
            }
            JournalRecord::Open { .. } => {
                break; // a second Open mid-journal is corruption; keep the prefix
            }
        }
    }
    Some((session, replayed))
}

/// Recover every `session-<id>.journal` in `dir` (created lazily if absent). Unreadable
/// or unrecoverable files are reported on stderr and skipped — one bad journal must not
/// stop the server from booting.
pub fn recover_dir(dir: &Path) -> io::Result<Vec<(u64, RecoveredSession)>> {
    std::fs::create_dir_all(dir)?;
    let mut recovered = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(id) = name.to_str().and_then(parse_file_name) else {
            continue;
        };
        match recover_file(&entry.path()) {
            Ok(Some(session)) => recovered.push((id, session)),
            Ok(None) => {
                eprintln!(
                    "rdms-serve: {} is not a recoverable journal, skipping",
                    entry.path().display()
                );
            }
            Err(e) => {
                eprintln!(
                    "rdms-serve: failed to recover {}: {e}, skipping",
                    entry.path().display()
                );
            }
        }
    }
    recovered.sort_by_key(|(id, _)| *id);
    Ok(recovered)
}

/// Build the `Open` journal record for a session about to be opened.
pub fn open_record(
    dms: &rdms_core::Dms,
    bound: usize,
    invariant: &str,
    emit_certificates: bool,
) -> JournalRecord {
    JournalRecord::Open {
        dms: dms.clone(),
        bound,
        invariant: invariant.to_string(),
        emit_certificates,
    }
}

/// Map a journal-creation failure to the wire rejection for `Open`/`Resume`.
pub fn journal_error(e: &io::Error) -> (ErrorCode, String) {
    (ErrorCode::JournalError, format!("journal unavailable: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdms_core::dms::example_3_1;

    fn alpha(base: u64) -> JournalRecord {
        JournalRecord::Check {
            action: "alpha".into(),
            bindings: BTreeMap::from([
                ("v1".to_string(), base),
                ("v2".to_string(), base + 1),
                ("v3".to_string(), base + 2),
            ]),
        }
    }

    fn open() -> JournalRecord {
        open_record(&example_3_1(), 2, "true", false)
    }

    #[test]
    fn crc32_matches_the_reference_vectors() {
        // the canonical IEEE 802.3 check value and two spot vectors
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn records_round_trip_through_frames() {
        let buffer = SharedBuffer::default();
        let mut journal =
            Journal::with_sink(Box::new(buffer.clone()), &open(), DEFAULT_FSYNC_EVERY).unwrap();
        journal.append(&alpha(1));
        journal.append(&alpha(4));
        assert!(journal.broken().is_none());
        drop(journal);

        let parsed = parse_journal(&buffer.contents()).unwrap();
        assert!(!parsed.torn);
        assert_eq!(parsed.records, vec![open(), alpha(1), alpha(4)]);
        assert_eq!(parsed.good_len, buffer.contents().len() as u64);
    }

    #[test]
    fn every_truncation_point_loses_at_most_the_torn_frame() {
        let buffer = SharedBuffer::default();
        let mut journal =
            Journal::with_sink(Box::new(buffer.clone()), &open(), DEFAULT_FSYNC_EVERY).unwrap();
        journal.append(&alpha(1));
        journal.append(&alpha(4));
        drop(journal);
        let full = buffer.contents();
        let whole = parse_journal(&full).unwrap();

        for cut in 4..full.len() {
            let parsed = parse_journal(&full[..cut]).unwrap();
            // the parse never loses an intact frame, never invents one, and flags
            // exactly the non-boundary cuts as torn
            assert!(parsed.records.len() <= whole.records.len());
            assert_eq!(
                parsed.records,
                whole.records[..parsed.records.len()],
                "cut at {cut}"
            );
            assert_eq!(parsed.torn, parsed.good_len != cut as u64, "cut at {cut}");
            assert!(parsed.good_len <= cut as u64);
        }
    }

    #[test]
    fn corrupt_bytes_mid_file_cut_the_tail_not_the_head() {
        let buffer = SharedBuffer::default();
        let mut journal =
            Journal::with_sink(Box::new(buffer.clone()), &open(), DEFAULT_FSYNC_EVERY).unwrap();
        journal.append(&alpha(1));
        let head_len = buffer.contents().len();
        journal.append(&alpha(4));
        drop(journal);

        let mut bytes = buffer.contents();
        bytes[head_len + 10] ^= 0xFF; // flip a byte inside the last frame's payload
        let parsed = parse_journal(&bytes).unwrap();
        assert!(parsed.torn);
        assert_eq!(parsed.records, vec![open(), alpha(1)]);
        assert_eq!(parsed.good_len, head_len as u64);
    }

    #[test]
    fn non_journal_bytes_are_not_a_journal() {
        assert!(parse_journal(b"").is_none());
        assert!(parse_journal(b"RDJ").is_none());
        assert!(parse_journal(b"not a journal at all").is_none());
    }

    #[test]
    fn replay_rebuilds_the_session_counters() {
        let records = vec![
            open_record(&example_3_1(), 2, "!exists u. Q(u)", false),
            alpha(1),
        ];
        let (session, replayed) = replay(&records).unwrap();
        assert_eq!(replayed, 1);
        assert_eq!(session.transactions(), 1);
        assert_eq!(session.violations(), 1);
    }

    #[test]
    fn replay_without_a_leading_open_is_refused() {
        assert!(replay(&[]).is_none());
        assert!(replay(&[alpha(1)]).is_none());
    }

    #[test]
    fn replay_stops_at_a_diverging_record_keeping_the_prefix() {
        let records = vec![
            open(),
            alpha(1),
            JournalRecord::Check {
                action: "no-such-action".into(),
                bindings: BTreeMap::new(),
            },
            alpha(4),
        ];
        let (session, replayed) = replay(&records).unwrap();
        assert_eq!(replayed, 1);
        assert_eq!(session.transactions(), 1);
    }

    #[test]
    fn replay_applies_revise_records() {
        // the session opens with a trivially-true invariant, accepts one transaction,
        // then revises the invariant; replay must re-check the spine under the new φ
        let records = vec![
            open(),
            alpha(1),
            JournalRecord::Revise {
                dms: None,
                bound: None,
                invariant: Some("!exists u. Q(u)".to_string()),
            },
        ];
        let (session, replayed) = replay(&records).unwrap();
        // revisions are input edits, not transactions
        assert_eq!(replayed, 1);
        assert_eq!(session.transactions(), 1);
        assert_eq!(session.violations(), 1);
    }

    #[test]
    fn replay_stops_at_a_failing_revise_keeping_the_prefix() {
        // an open invariant is rejected by `Session::revise`; since the original
        // session only journals accepted revisions, this means divergence — replay
        // keeps the prefix and ignores the rest
        let records = vec![
            open(),
            alpha(1),
            JournalRecord::Revise {
                dms: None,
                bound: None,
                invariant: Some("Q(u)".to_string()),
            },
            alpha(4),
        ];
        let (session, replayed) = replay(&records).unwrap();
        assert_eq!(replayed, 1);
        assert_eq!(session.transactions(), 1);
    }

    #[test]
    fn a_revise_record_disables_the_checkpoint_fast_path() {
        let dir = test_dir("checkpoint-revise-fallback");
        let mut journal = Journal::create(&dir, 7, &open(), 2).unwrap();
        journal.append(&alpha(1));
        journal.append(&JournalRecord::Revise {
            dms: None,
            bound: None,
            invariant: Some("!exists u. Q(u)".to_string()),
        });
        journal.append(&alpha(4));
        drop(journal);

        // even a checkpoint covering the whole run is untrusted once the journal holds
        // a Revise: record indices no longer map to run lengths, so recovery must take
        // the full-replay path (which applies the revision in order)
        let (session, _) = replay(
            &parse_journal(&std::fs::read(dir.join(journal_file_name(7))).unwrap())
                .unwrap()
                .records,
        )
        .unwrap();
        write_snapshot(&dir, 7, &session.snapshot()).unwrap();

        let recovered = recover_file(&dir.join(journal_file_name(7)))
            .unwrap()
            .unwrap();
        assert!(!recovered.from_checkpoint);
        assert_eq!(recovered.replayed, 2);
        assert_eq!(recovered.session.transactions(), 2);
        assert_eq!(recovered.session.violations(), session.violations());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backed_create_recover_and_retire() {
        let dir = std::env::temp_dir().join(format!("rdms-journal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut journal = Journal::create(&dir, 7, &open(), 2).unwrap();
        journal.append(&alpha(1));
        journal.append(&alpha(4));
        drop(journal);

        let recovered = recover_dir(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        let (id, recovered) = &recovered[0];
        assert_eq!(*id, 7);
        assert_eq!(recovered.replayed, 2);
        assert!(!recovered.truncated);
        assert_eq!(recovered.session.transactions(), 2);

        // torn tail: append garbage, recovery truncates it off in place
        {
            let mut file = OpenOptions::new()
                .append(true)
                .open(&recovered.path)
                .unwrap();
            file.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        }
        let reparsed = recover_file(&recovered.path).unwrap().unwrap();
        assert!(reparsed.truncated);
        assert_eq!(reparsed.replayed, 2);

        Journal::open_append(&recovered.path, 2)
            .unwrap()
            .retire()
            .unwrap();
        assert!(recover_dir(&dir).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(parse_file_name(&journal_file_name(42)), Some(42));
        assert_eq!(parse_file_name("session-.journal"), None);
        assert_eq!(parse_file_name("other.txt"), None);
    }

    fn test_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rdms-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshots_round_trip_through_disk() {
        let dir = test_dir("snapshot-roundtrip");
        let (session, _) = replay(&[open(), alpha(1), alpha(4)]).unwrap();
        let snapshot = session.snapshot();
        write_snapshot(&dir, 7, &snapshot).unwrap();

        let back = read_snapshot(&dir.join(checkpoint_file_name(7))).unwrap();
        assert_eq!(back.bound, snapshot.bound);
        assert_eq!(back.run.len(), 2);
        assert_eq!(back.violations, snapshot.violations);
        assert_eq!(back.first_violation_len, snapshot.first_violation_len);
        // a missing or mangled file reads as None, never a panic
        assert!(read_snapshot(&dir.join("no-such.checkpoint")).is_none());
        std::fs::write(dir.join(checkpoint_file_name(8)), b"{not json").unwrap();
        assert!(read_snapshot(&dir.join(checkpoint_file_name(8))).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_prefers_a_consistent_checkpoint() {
        let dir = test_dir("checkpoint-preferred");
        let mut journal = Journal::create(&dir, 7, &open(), 2).unwrap();
        journal.append(&alpha(1));
        journal.append(&alpha(4));
        journal.append(&alpha(7));
        drop(journal);

        // checkpoint covers the first two transactions; recovery should rebuild from it
        // and replay only the journal suffix (the third transaction)
        let (session, _) = replay(&[open(), alpha(1), alpha(4)]).unwrap();
        write_snapshot(&dir, 7, &session.snapshot()).unwrap();

        let recovered = recover_file(&dir.join(journal_file_name(7)))
            .unwrap()
            .unwrap();
        assert!(recovered.from_checkpoint);
        assert_eq!(recovered.replayed, 3);
        assert_eq!(recovered.session.transactions(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_inconsistent_checkpoint_falls_back_to_full_replay() {
        let dir = test_dir("checkpoint-fallback");
        let mut journal = Journal::create(&dir, 7, &open(), 2).unwrap();
        journal.append(&alpha(1));
        journal.append(&alpha(4));
        drop(journal);

        // a checkpoint whose bound disagrees with the journal's Open record is untrusted
        let (session, _) = replay(&[open(), alpha(1)]).unwrap();
        let mut snapshot = session.snapshot();
        snapshot.bound += 1;
        write_snapshot(&dir, 7, &snapshot).unwrap();

        let recovered = recover_file(&dir.join(journal_file_name(7)))
            .unwrap()
            .unwrap();
        assert!(!recovered.from_checkpoint);
        assert_eq!(recovered.replayed, 2);
        assert_eq!(recovered.session.transactions(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retiring_a_journal_removes_its_checkpoint_too() {
        let dir = test_dir("checkpoint-retire");
        let journal = Journal::create(&dir, 7, &open(), 2).unwrap();
        let (session, _) = replay(&[open(), alpha(1)]).unwrap();
        write_snapshot(&dir, 7, &session.snapshot()).unwrap();
        assert!(dir.join(checkpoint_file_name(7)).exists());

        journal.retire().unwrap();
        assert!(!dir.join(journal_file_name(7)).exists());
        assert!(!dir.join(checkpoint_file_name(7)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
