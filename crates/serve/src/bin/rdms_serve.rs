//! The `rdms-serve` binary: flags → [`ServerConfig`] → blocking accept loop.
//!
//! See `docs/OPERATIONS.md` for the operator guide and `docs/PROTOCOL.md` for what to
//! send it. Exits 0 after a graceful drain (remote `Shutdown` with
//! `--allow-remote-shutdown`), non-zero on startup errors.

use rdms_serve::{Server, ServerConfig};
use std::time::Duration;

const USAGE: &str = "\
rdms-serve — online incremental verification service (see docs/OPERATIONS.md)

USAGE: rdms-serve [OPTIONS]

OPTIONS:
      --addr <ADDR>               bind address [default: 127.0.0.1:7464]; port 0 = ephemeral
      --port-file <PATH>          after binding, write the actual port to this file
      --max-sessions <N>          concurrent-connection cap [default: 64]
      --queue-depth <N>           per-session inbound queue bound [default: 32]
      --idle-timeout-ms <MS>      evict sessions idle this long [default: 300000]
      --poll-interval-ms <MS>     deadline/shutdown poll tick [default: 25]
      --max-frame-len <BYTES>     frame payload cap [default: 16777216]
      --max-transactions <N>      per-session accepted-transaction cap [default: unlimited]
      --handler-delay-ms <MS>     artificial per-request delay (test/load knob) [default: 0]
      --io-timeout-ms <MS>        close connections stalled mid-frame this long (slow-loris
                                  defence); 0 disables [default: 30000]
      --check-deadline-ms <MS>    per-Check time budget, rejected with `deadline-exceeded`
                                  past it; 0 disables [default: 0]
      --journal-dir <DIR>         crash-safe session journals: log accepted transactions
                                  here, recover sessions at boot (clients re-attach with
                                  Resume) [default: off]
      --journal-fsync-every <N>   fsync journals every N appended records [default: 8]
      --memory-budget-mb <MB>     soft cap on estimated session memory: new Opens are
                                  shed with `overloaded` and the largest idle session
                                  is evicted under pressure; 0 disables [default: 0]
      --allow-remote-shutdown     honour the wire Shutdown request
  -h, --help                      print this help
";

fn fail(message: &str) -> ! {
    eprintln!("rdms-serve: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7464".to_string();
    let mut port_file: Option<String> = None;
    let mut config = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--port-file" => port_file = Some(value("--port-file")),
            "--max-sessions" => config.max_sessions = parse(&value("--max-sessions")),
            "--queue-depth" => config.queue_depth = parse(&value("--queue-depth")),
            "--idle-timeout-ms" => {
                config.idle_timeout = Duration::from_millis(parse(&value("--idle-timeout-ms")));
            }
            "--poll-interval-ms" => {
                config.poll_interval = Duration::from_millis(parse(&value("--poll-interval-ms")));
            }
            "--max-frame-len" => config.max_frame_len = parse(&value("--max-frame-len")),
            "--max-transactions" => {
                config.max_transactions = Some(parse(&value("--max-transactions")));
            }
            "--handler-delay-ms" => {
                config.handler_delay = Duration::from_millis(parse(&value("--handler-delay-ms")));
            }
            "--io-timeout-ms" => {
                let ms: u64 = parse(&value("--io-timeout-ms"));
                config.io_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--check-deadline-ms" => {
                let ms: u64 = parse(&value("--check-deadline-ms"));
                config.check_deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--journal-dir" => {
                config.journal_dir = Some(std::path::PathBuf::from(value("--journal-dir")));
            }
            "--journal-fsync-every" => {
                config.journal_fsync_every = parse(&value("--journal-fsync-every"));
            }
            "--memory-budget-mb" => {
                let mb: usize = parse(&value("--memory-budget-mb"));
                config.memory_budget_bytes = (mb > 0).then(|| mb * 1024 * 1024);
            }
            "--allow-remote-shutdown" => config.allow_remote_shutdown = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }

    let server = match Server::bind(&addr, config) {
        Ok(server) => server,
        Err(e) => fail(&format!("cannot bind {addr}: {e}")),
    };
    let local = server.local_addr().expect("bound listener has an address");
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", local.port())) {
            fail(&format!("cannot write port file {path}: {e}"));
        }
    }
    eprintln!("rdms-serve: listening on {local}");
    match server.run() {
        Ok(()) => eprintln!("rdms-serve: drained, bye"),
        Err(e) => {
            eprintln!("rdms-serve: accept loop failed: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(value: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| fail(&format!("cannot parse `{value}`")))
}
