//! The wire protocol: framing, request/response types and error codes.
//!
//! This module is the *implementation* of the protocol; the normative specification lives
//! in [`docs/PROTOCOL.md`](https://example.invalid/rdms) (repository path
//! `docs/PROTOCOL.md`) and every change here must keep that document true.
//!
//! # Framing
//!
//! Every message — in both directions — is one **frame**: a 4-byte big-endian unsigned
//! length `n`, followed by exactly `n` bytes of UTF-8 JSON. There is no alignment, padding
//! or trailing delimiter; frames abut directly. A frame whose announced length exceeds the
//! receiver's limit ([`ServerConfig::max_frame_len`](crate::ServerConfig::max_frame_len)
//! on the server side) is **oversized**: the server replies `Rejected` with code
//! `oversized-frame` and closes the connection, since the stream cannot be resynchronised
//! without trusting the hostile length. A frame whose payload is not valid UTF-8, not
//! valid JSON, or not one of the request shapes below is **malformed**: the server replies
//! `Rejected` with code `malformed-frame` and *keeps the connection* (framing is still in
//! sync). Neither ever terminates the server process.
//!
//! # JSON shape
//!
//! Requests and responses are Rust enums in serde's externally-tagged form:
//!
//! * a **unit** variant is the bare JSON string of its name — `"Ping"`;
//! * a **struct** variant is a one-key object — `{"Check": {"action": "alpha", …}}`.
//!
//! [`PROTOCOL_VERSION`] names the protocol spoken here; `Open` carries the client's
//! version and the server rejects mismatches with code `protocol-version`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};

/// The protocol version this build speaks. Bumped on any wire-visible change; see the
/// versioning rules in `docs/PROTOCOL.md`. Version 2 added the `session` id to
/// [`Response::Opened`] and the [`Request::Resume`] crash-recovery handshake.
pub const PROTOCOL_VERSION: u32 = 2;

/// Default cap on a single frame's payload length (16 MiB). `Open` frames carry a whole
/// serialized DMS, so the default is generous; operators serving untrusted networks should
/// lower it (`--max-frame-len`).
pub const DEFAULT_MAX_FRAME_LEN: usize = 16 << 20;

/// A client → server message. One frame each; see the module docs for the JSON encoding.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Open this connection's session: the system to verify, the recency bound, and the
    /// invariant (in the FOL(R) concrete syntax of `rdms_db::parse_query`, e.g.
    /// `"!exists u. Q(u)"`). Exactly one `Open` per connection, before anything else.
    Open {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
        /// The DMS, in `rdms_core::Dms`'s serde JSON form.
        dms: rdms_core::Dms,
        /// The recency bound `b`.
        bound: usize,
        /// The invariant φ, checked after every transaction.
        invariant: String,
        /// Ask for a replayable `Violation` certificate with each violating verdict.
        emit_certificates: bool,
    },
    /// Check one transaction: apply `action` (by name) under the given bindings
    /// (variable name → data-value index, covering the action's parameters *and* fresh
    /// variables) and evaluate the invariant in the reached configuration.
    Check {
        /// The action's declared name.
        action: String,
        /// `σ`: variable name → data value index.
        bindings: BTreeMap<String, u64>,
    },
    /// Re-attach to a session restored from the server's crash journal (see the Recovery
    /// section of `docs/PROTOCOL.md`): `session` is the id a previous `Opened` reply
    /// carried, on a server started with `--journal-dir`. Succeeds at most once per
    /// recovered session; rejected with code `unknown-session` when the id was never
    /// journaled, was already resumed, or the server does not journal.
    Resume {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
        /// The session id to re-attach, from the `Opened` reply of the original `Open`.
        session: u64,
    },
    /// Revise the open session's inputs **in place**, keeping its accepted run (the wire
    /// form of `IncrementalChecker::revise`). Every field is optional and omitted fields
    /// keep their current value, so `{"Revise":{}}` is a legal no-op. Added in a minor
    /// revision of protocol version 2 — servers that predate it reject the frame with
    /// code `malformed-frame`, which clients must treat as "revision unsupported".
    ///
    /// Semantics (all-or-nothing; on rejection the session is unchanged): a changed
    /// invariant is re-evaluated over the whole accepted run; a bound increase is O(1); a
    /// bound decrease re-validates the run under the smaller window and is rejected with
    /// code `bad-revision` if the run needs the larger one; a changed DMS replays the
    /// accepted run against it with actions matched **by name** (a missing name or a step
    /// the revised semantics rejects ⇒ `bad-revision`).
    Revise {
        /// Replacement DMS, in `rdms_core::Dms`'s serde JSON form.
        #[serde(default)]
        dms: Option<rdms_core::Dms>,
        /// Replacement recency bound `b`.
        #[serde(default)]
        bound: Option<usize>,
        /// Replacement invariant φ (same concrete syntax as `Open.invariant`).
        #[serde(default)]
        invariant: Option<String>,
    },
    /// Ask for the session's counters (see [`Response::Stats`]).
    Status,
    /// Liveness probe; answered with [`Response::Pong`] even before `Open`.
    Ping,
    /// End the session; the server replies [`Response::Bye`] and closes.
    Close,
    /// Ask the whole server to drain and exit. Only honoured when the server was started
    /// with remote shutdown enabled; rejected with code `shutdown-disabled` otherwise.
    Shutdown,
}

/// One transition of a violating run, in wire form: the action by name and the values its
/// parameters and fresh variables were bound to.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireStep {
    /// The action's declared name.
    pub action: String,
    /// Variable name → data value index.
    pub bindings: BTreeMap<String, u64>,
}

/// A server → client message. Every request gets exactly one response, in request order;
/// [`Response::Busy`] and [`Response::Evicted`] can additionally arrive at any time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The session is open (reply to `Open` and to `Resume`); `protocol` echoes the
    /// server's [`PROTOCOL_VERSION`] and `session` is the server-assigned session id —
    /// quote it in a [`Request::Resume`] to re-attach after a server crash when the
    /// server journals sessions (`--journal-dir`).
    Opened { protocol: u32, session: u64 },
    /// The transaction was a valid `b`-bounded transition and the invariant holds in the
    /// reached configuration.
    Ok {
        /// Session-scoped id of the canonical abstract state reached.
        state_id: u64,
        /// Whether that abstract state was new to this session.
        new_state: bool,
        /// The session's run length after this transaction.
        run_len: usize,
    },
    /// The transaction was a valid transition but the reached configuration violates the
    /// invariant. The step **was applied** and the session stays open.
    Violation {
        /// The session's run length after this transaction (= the witness length).
        run_len: usize,
        /// The violating run: every transaction from the initial configuration here.
        witness: Vec<WireStep>,
        /// A `Violation` certificate as a JSON document (the `rdms-cert` wire format),
        /// present when the session was opened with `emit_certificates: true` and the
        /// invariant is certifiable. Feed it to `rdms_cert::Certificate::from_json`.
        certificate: Option<String>,
    },
    /// The request was refused; the session state is unchanged (for `Check`: the
    /// transaction was **not** applied). `code` is one of the stable [`ErrorCode`]
    /// strings; `message` is human-readable detail and not stable.
    Rejected { code: String, message: String },
    /// The session's inputs were revised (reply to [`Request::Revise`]); the accepted run
    /// is intact and subsequent `Check`s run against the revised inputs.
    Revised {
        /// The session's run length (unchanged by revision).
        run_len: usize,
        /// The session's violation count after revision (recomputed when the DMS or
        /// invariant changed).
        violations: usize,
        /// Accepted transactions replayed against a revised DMS (0 otherwise).
        replayed_steps: usize,
        /// Spine configurations the invariant was (re)evaluated on.
        rechecked_configs: usize,
    },
    /// Session counters at the time the `Status` request was processed.
    Stats {
        /// Transactions accepted (valid transitions applied, violating or not).
        transactions: usize,
        /// Distinct abstract states visited, including the initial configuration.
        distinct_states: usize,
        /// Accepted transactions that landed in an invariant-violating state.
        violations: usize,
        /// Current run length.
        run_len: usize,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// The request was dropped without being processed: the session's inbound queue was
    /// full. Back off and resend; the session state is unchanged.
    Busy,
    /// The session sat idle past the server's eviction deadline; the server closes the
    /// connection after sending this.
    Evicted,
    /// The connection is done (reply to `Close`, or the drain notice on shutdown).
    Bye,
}

/// Stable machine-readable reasons carried by [`Response::Rejected`]. The wire form is the
/// kebab-case string from [`ErrorCode::as_str`]; new codes may be added in minor protocol
/// revisions, so clients must treat unknown codes as generic failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame's payload was not valid UTF-8 JSON of a known request shape.
    MalformedFrame,
    /// The frame's announced length exceeded the server's limit; the connection closes.
    OversizedFrame,
    /// `Open.version` did not match the server's [`PROTOCOL_VERSION`].
    ProtocolVersion,
    /// A `Check`/`Status`/`Close` request arrived before `Open`.
    NoSession,
    /// A second `Open` arrived on an already-open session.
    SessionAlreadyOpen,
    /// The invariant string did not parse, or is not a closed formula.
    BadInvariant,
    /// `Check.action` names no action of the session's DMS.
    UnknownAction,
    /// The bindings do not instantiate the action (missing/extra variables, guard false,
    /// non-fresh value for a fresh variable, …).
    NotInstantiating,
    /// A parameter was bound outside the `Recent_b` window.
    RecencyViolation,
    /// The step tripped a database-level error (e.g. the submitted DMS used a relation at
    /// the wrong arity — the DMS itself is untrusted input too).
    DatabaseError,
    /// The session reached the server's per-session transaction cap.
    TransactionLimit,
    /// The server is at its concurrent-session cap; the connection closes.
    SessionLimit,
    /// The server's memory governor refused the `Open` up front: admitting another
    /// session would exceed `--memory-budget-mb`. Distinct from [`Response::Busy`]
    /// (a full queue **mid-session**): overload is shed before any work is queued, the
    /// connection stays open, and the client should back off and retry — the server
    /// evicts its largest idle session under pressure, so capacity returns.
    Overloaded,
    /// A `Shutdown` request arrived but the server does not allow remote shutdown.
    ShutdownDisabled,
    /// The server is draining; no new sessions or transactions are accepted.
    ShuttingDown,
    /// The per-request time budget (`--check-deadline-ms`) expired before the transaction
    /// finished checking. The transaction was **not** applied; the session stays open.
    DeadlineExceeded,
    /// A handler panicked while processing this session's request. The session is
    /// poisoned: it is evicted and the connection closes, but the server — and every
    /// other session — keeps running. With journaling on, the session's journal survives
    /// for recovery at next boot.
    SessionPoisoned,
    /// The connection spent longer than the i/o timeout (`--io-timeout-ms`) mid-frame —
    /// a slow-loris-style partial frame. The connection closes.
    Timeout,
    /// A `Resume` named a session id with no recovered journal (never journaled, already
    /// resumed, or the server does not journal).
    UnknownSession,
    /// The server could not create or append the session's crash journal (`--journal-dir`
    /// misconfigured, disk full, …). For `Open`/`Resume`: the session was not attached.
    JournalError,
    /// A `Revise` the session cannot honour: the bound was lowered below what the
    /// accepted run requires, the revised DMS lacks an action the run uses, or a replayed
    /// step is invalid under the revised semantics. The session is unchanged.
    BadRevision,
}

impl ErrorCode {
    /// The stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::OversizedFrame => "oversized-frame",
            ErrorCode::ProtocolVersion => "protocol-version",
            ErrorCode::NoSession => "no-session",
            ErrorCode::SessionAlreadyOpen => "session-already-open",
            ErrorCode::BadInvariant => "bad-invariant",
            ErrorCode::UnknownAction => "unknown-action",
            ErrorCode::NotInstantiating => "not-instantiating",
            ErrorCode::RecencyViolation => "recency-violation",
            ErrorCode::DatabaseError => "database-error",
            ErrorCode::TransactionLimit => "transaction-limit",
            ErrorCode::SessionLimit => "session-limit",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShutdownDisabled => "shutdown-disabled",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::SessionPoisoned => "session-poisoned",
            ErrorCode::Timeout => "timeout",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::JournalError => "journal-error",
            ErrorCode::BadRevision => "bad-revision",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Response {
    /// Build a [`Response::Rejected`] from a code and message.
    pub fn rejected(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Rejected {
            code: code.as_str().to_string(),
            message: message.into(),
        }
    }
}

/// Serialize a message and write it as one frame.
pub fn write_message<W: Write, T: Serialize>(writer: &mut W, message: &T) -> io::Result<()> {
    let json = serde_json::to_string(message)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(writer, json.as_bytes())
}

/// Write one frame: 4-byte big-endian length, then the payload, then flush.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "frame payload exceeds the u32 length prefix",
        )
    })?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Decode one frame's payload into a [`Request`]. The error string is suitable as the
/// `message` of a `malformed-frame` rejection.
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("payload is not a request: {e}"))
}

/// Decode one frame's payload into a [`Response`] (the client side of
/// [`decode_request`]).
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("payload is not a response: {e}"))
}

/// Why [`FrameReader::poll_frame`] returned without a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying read timed out (or was interrupted) with the frame boundary state
    /// preserved — poll again. This is how a reader with a read-timeout periodically
    /// regains control to check idle/shutdown deadlines without losing partial frames.
    Idle,
    /// The peer closed the stream in the middle of a frame.
    Truncated,
    /// The announced payload length exceeds the reader's limit. The stream cannot be
    /// resynchronised; close the connection after reporting.
    Oversized {
        /// The announced length.
        len: usize,
        /// The reader's limit.
        max: usize,
    },
    /// Any other I/O failure.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Idle => write!(f, "read timed out mid-poll"),
            FrameError::Truncated => write!(f, "stream closed mid-frame"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// An incremental frame decoder over any [`Read`].
///
/// Reads may return short counts, time out ([`FrameError::Idle`]) or be interrupted at any
/// byte position; the reader keeps the partial header/payload across polls, so a frame
/// split across arbitrarily many reads is reassembled intact. This is the only place the
/// server touches raw socket bytes, and it is fuzzed (proptest) with garbage, truncated
/// and oversized inputs — none of which may panic.
pub struct FrameReader<R> {
    inner: R,
    max_len: usize,
    header: [u8; 4],
    header_filled: usize,
    body: Vec<u8>,
    body_filled: usize,
    in_body: bool,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a stream with a payload-length limit.
    pub fn new(inner: R, max_len: usize) -> FrameReader<R> {
        FrameReader {
            inner,
            max_len,
            header: [0; 4],
            header_filled: 0,
            body: Vec::new(),
            body_filled: 0,
            in_body: false,
        }
    }

    /// Whether the reader is mid-frame (some bytes of the next frame already consumed).
    pub fn mid_frame(&self) -> bool {
        self.header_filled > 0 || self.in_body
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Drive the decoder: `Ok(Some(payload))` on a complete frame, `Ok(None)` on a clean
    /// end-of-stream at a frame boundary, [`FrameError::Idle`] on a read timeout (state
    /// preserved — poll again), and the other [`FrameError`]s on unrecoverable conditions.
    pub fn poll_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if !self.in_body {
            while self.header_filled < 4 {
                match self.inner.read(&mut self.header[self.header_filled..]) {
                    Ok(0) if self.header_filled == 0 => return Ok(None),
                    Ok(0) => return Err(FrameError::Truncated),
                    Ok(n) => self.header_filled += n,
                    Err(e) => return Err(classify_io(e)),
                }
            }
            let len = u32::from_be_bytes(self.header) as usize;
            if len > self.max_len {
                return Err(FrameError::Oversized {
                    len,
                    max: self.max_len,
                });
            }
            self.in_body = true;
            self.body = vec![0; len];
            self.body_filled = 0;
        }
        while self.body_filled < self.body.len() {
            match self.inner.read(&mut self.body[self.body_filled..]) {
                Ok(0) => return Err(FrameError::Truncated),
                Ok(n) => self.body_filled += n,
                Err(e) => return Err(classify_io(e)),
            }
        }
        self.in_body = false;
        self.header_filled = 0;
        Ok(Some(std::mem::take(&mut self.body)))
    }
}

fn classify_io(e: io::Error) -> FrameError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted => {
            FrameError::Idle
        }
        _ => FrameError::Io(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Request::Ping).unwrap();
        write_message(
            &mut buf,
            &Request::Check {
                action: "alpha".into(),
                bindings: BTreeMap::from([("u".to_string(), 3u64)]),
            },
        )
        .unwrap();
        let mut reader = FrameReader::new(Cursor::new(buf), DEFAULT_MAX_FRAME_LEN);
        let first = reader.poll_frame().unwrap().unwrap();
        assert_eq!(decode_request(&first).unwrap(), Request::Ping);
        let second = reader.poll_frame().unwrap().unwrap();
        assert!(matches!(
            decode_request(&second).unwrap(),
            Request::Check { .. }
        ));
        assert!(reader.poll_frame().unwrap().is_none());
    }

    #[test]
    fn unit_variants_are_bare_strings_and_struct_variants_one_key_objects() {
        // the shapes documented in docs/PROTOCOL.md
        assert_eq!(serde_json::to_string(&Request::Ping).unwrap(), "\"Ping\"");
        let check = Request::Check {
            action: "alpha".into(),
            bindings: BTreeMap::new(),
        };
        let json = serde_json::to_string(&check).unwrap();
        assert!(json.starts_with("{\"Check\":{"), "got {json}");
    }

    #[test]
    fn revise_omitted_fields_deserialize_as_none() {
        // v2-additive: every field is optional, so `{"Revise":{}}` is a legal
        // (no-op) request and older clients' encoders need no changes.
        let revised: Request = serde_json::from_str("{\"Revise\":{}}").unwrap();
        assert_eq!(
            revised,
            Request::Revise {
                dms: None,
                bound: None,
                invariant: None,
            }
        );
        let partial: Request =
            serde_json::from_str("{\"Revise\":{\"bound\":3,\"invariant\":\"true\"}}").unwrap();
        assert_eq!(
            partial,
            Request::Revise {
                dms: None,
                bound: Some(3),
                invariant: Some("true".to_string()),
            }
        );
    }

    #[test]
    fn revised_response_round_trips() {
        let response = Response::Revised {
            run_len: 4,
            violations: 1,
            replayed_steps: 4,
            rechecked_configs: 5,
        };
        let json = serde_json::to_string(&response).unwrap();
        assert!(json.starts_with("{\"Revised\":{"), "got {json}");
        assert_eq!(decode_response(json.as_bytes()).unwrap(), response);
    }

    #[test]
    fn oversized_length_prefix_is_reported_not_allocated() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let mut reader = FrameReader::new(Cursor::new(buf), 1024);
        match reader.poll_frame() {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncation_mid_header_and_mid_body_is_detected() {
        let mut reader = FrameReader::new(Cursor::new(vec![0, 0]), 1024);
        assert!(matches!(reader.poll_frame(), Err(FrameError::Truncated)));

        let mut frame = Vec::new();
        write_frame(&mut frame, b"hello").unwrap();
        frame.truncate(frame.len() - 2);
        let mut reader = FrameReader::new(Cursor::new(frame), 1024);
        assert!(matches!(reader.poll_frame(), Err(FrameError::Truncated)));
    }

    /// A reader that yields one byte per call, interleaved with timeouts: the decoder must
    /// reassemble across both.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        tick: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.tick = !self.tick;
            if self.tick {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
            }
            if self.pos == self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frames_survive_byte_at_a_time_reads_with_timeouts() {
        let mut data = Vec::new();
        write_message(&mut data, &Response::Pong).unwrap();
        write_frame(&mut data, b"{}").unwrap();
        let mut reader = FrameReader::new(
            Trickle {
                data,
                pos: 0,
                tick: false,
            },
            1024,
        );
        let mut frames = Vec::new();
        loop {
            match reader.poll_frame() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(FrameError::Idle) => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(decode_response(&frames[0]).unwrap(), Response::Pong);
        assert_eq!(frames[1], b"{}");
    }

    #[test]
    fn empty_payload_frames_are_legal_at_the_framing_layer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        let mut reader = FrameReader::new(Cursor::new(buf), 1024);
        assert_eq!(reader.poll_frame().unwrap().unwrap(), Vec::<u8>::new());
        // ...and rejected at the decoding layer, not panicked on
        assert!(decode_request(&[]).is_err());
    }
}
