//! The TCP serving layer: accept loop, per-connection threads, backpressure, eviction and
//! graceful drain.
//!
//! # Threading model
//!
//! One **accept thread** (the [`Server::run`] loop, backgrounded by [`Server::spawn`])
//! owns the listener in non-blocking mode and polls it every
//! [`ServerConfig::poll_interval`], so a shutdown request takes effect within one poll
//! tick without needing to poke the socket. Each accepted connection gets two threads:
//!
//! * a **reader** that decodes frames ([`FrameReader`]) under a read timeout of one poll
//!   interval — the timeout tick is where it notices idle-session eviction, server
//!   shutdown and session completion — and pushes each complete frame into a **bounded**
//!   queue ([`std::sync::mpsc::sync_channel`] of depth [`ServerConfig::queue_depth`]);
//!   when the queue is full the frame is answered immediately with [`Response::Busy`] and
//!   dropped (explicit backpressure: the client resends, nothing blocks);
//! * a **worker** that pops frames, runs them against the connection's [`Session`] and
//!   writes the response. The write half of the socket is shared (mutex) between worker
//!   and reader, since `Busy` and `Evicted` are written from the reader side.
//!
//! # Robustness invariants
//!
//! * A malformed frame is answered with `Rejected {code: "malformed-frame"}` and the
//!   connection continues; an oversized frame is answered and the connection closed
//!   (resync is impossible); neither ever panics the process.
//! * A connection sitting idle (no complete frame) past
//!   [`ServerConfig::idle_timeout`] receives [`Response::Evicted`] and is closed.
//! * Shutdown — via [`ServerHandle::shutdown`] or a permitted wire `Shutdown` — is a
//!   **drain**: readers stop accepting new frames, workers finish every frame already
//!   queued, each open connection receives [`Response::Bye`], and `run` returns only
//!   after every connection thread has been joined.

use crate::journal::{self, Journal, RecoveredSession, DEFAULT_FSYNC_EVERY};
use crate::protocol::{
    decode_request, write_message, ErrorCode, FrameError, FrameReader, Request, Response,
    DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use crate::session::Session;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Operator-facing knobs. Defaults suit a trusted local deployment; `docs/OPERATIONS.md`
/// discusses hardening each of them for untrusted networks.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrently-open connections; further ones are refused with code
    /// `session-limit` and closed.
    pub max_sessions: usize,
    /// Bound of each connection's inbound frame queue; a frame arriving on a full queue
    /// is answered with `Busy` and dropped.
    pub queue_depth: usize,
    /// A connection with no complete frame for this long is sent `Evicted` and closed.
    pub idle_timeout: Duration,
    /// How often readers and the accept loop wake to check deadlines and shutdown. Upper
    /// bounds the latency of eviction, drain and accept under load.
    pub poll_interval: Duration,
    /// Maximum accepted frame payload length.
    pub max_frame_len: usize,
    /// Per-session cap on accepted transactions (`None` = unlimited); past it, `Check`
    /// is rejected with code `transaction-limit`.
    pub max_transactions: Option<usize>,
    /// Honour the wire `Shutdown` request. Off by default: a hostile client must not be
    /// able to stop the service.
    pub allow_remote_shutdown: bool,
    /// Artificial per-request processing delay. A **test/load knob** (keep `0` in
    /// production): with `queue_depth: 1` and a visible delay, a burst of requests
    /// deterministically overflows the queue, which is how the `Busy` path is exercised
    /// by tests and operators rehearsing backpressure.
    pub handler_delay: Duration,
    /// Cap on how long a connection may sit **mid-frame** (some bytes of a frame read,
    /// the rest outstanding) — the slow-loris defence, measured from the frame's first
    /// byte, so byte-at-a-time dribbling does not reset it the way it resets the idle
    /// clock. Past it the server replies `Rejected {code: "timeout"}` and closes. Also
    /// applied as the socket write timeout. `None` disables both.
    pub io_timeout: Option<Duration>,
    /// Per-`Check` time budget; a transaction still checking when it expires is rejected
    /// with code `deadline-exceeded` and **not** applied. `None` = no budget.
    pub check_deadline: Option<Duration>,
    /// Directory for crash-safe session journals. `Some` turns journaling on: sessions
    /// log their `Open` payload and accepted transactions, the server replays the logs
    /// at boot, and clients re-attach with `Resume`. `None` (default) = no journaling.
    pub journal_dir: Option<PathBuf>,
    /// Fsync the journal every this-many appended records (1 = every record). Bounds the
    /// transactions a kernel-level crash can lose; see `docs/OPERATIONS.md`.
    pub journal_fsync_every: usize,
    /// Process-wide budget for session memory (run spines + interned canonical keys, the
    /// [`Session::memory_bytes`] estimate summed over live sessions). When the total is
    /// at or past the budget, new `Open`s are **shed** with code `overloaded` before any
    /// work is queued, and the largest idle session is marked for eviction so capacity
    /// returns. `None` (default) = no governor. Sizing guidance: `docs/OPERATIONS.md`.
    pub memory_budget_bytes: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_sessions: 64,
            queue_depth: 32,
            idle_timeout: Duration::from_secs(300),
            poll_interval: Duration::from_millis(25),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            max_transactions: None,
            allow_remote_shutdown: false,
            handler_delay: Duration::ZERO,
            io_timeout: Some(Duration::from_secs(30)),
            check_deadline: None,
            journal_dir: None,
            journal_fsync_every: DEFAULT_FSYNC_EVERY,
            memory_budget_bytes: None,
        }
    }
}

/// A bound, not-yet-running server.
///
/// ```
/// use rdms_serve::{Server, ServerConfig};
/// use rdms_serve::protocol::{self, Request, Response, PROTOCOL_VERSION};
/// use std::net::TcpStream;
///
/// let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
/// let addr = server.local_addr().unwrap();
/// let handle = server.spawn();
///
/// // a minimal client turn: Ping → Pong
/// let mut stream = TcpStream::connect(addr).unwrap();
/// protocol::write_message(&mut stream, &Request::Ping).unwrap();
/// let mut reader = protocol::FrameReader::new(stream.try_clone().unwrap(), 1 << 20);
/// let frame = reader.poll_frame().unwrap().unwrap();
/// assert_eq!(protocol::decode_response(&frame).unwrap(), Response::Pong);
///
/// handle.shutdown().unwrap();
/// ```
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

/// A handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain and block until the server has fully stopped: in-flight
    /// frames are answered, every connection receives `Bye`, all threads are joined.
    pub fn shutdown(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }

    /// Whether the server has stopped on its own (e.g. a permitted remote `Shutdown`).
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// Block until the server stops without requesting it to (pair with
    /// `allow_remote_shutdown` or an external signal flipping the shared flag).
    pub fn join(self) -> io::Result<()> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}

/// Everything a connection thread needs from the server.
struct Shared {
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    active: AtomicUsize,
    /// Session-id allocator. Ids are assigned on `Open` (journaling or not) and echoed
    /// in `Opened`; after a boot-time recovery the counter starts past every recovered
    /// id, so ids never collide across a crash.
    next_session_id: AtomicU64,
    /// Sessions rebuilt from journals at boot, parked until a client `Resume`s them.
    recovered: Mutex<HashMap<u64, RecoveredSession>>,
    /// The memory governor's ledger: one seat per live (attached) session, holding its
    /// latest [`Session::memory_bytes`] estimate and the eviction flag its reader polls.
    seats: Mutex<HashMap<u64, SessionSeat>>,
}

/// One live session's entry in the memory governor's ledger.
struct SessionSeat {
    /// Latest [`Session::memory_bytes`] estimate, updated after every processed request.
    bytes: usize,
    /// Set by the governor to evict this session; its connection's reader delivers
    /// `Evicted` and closes within one poll tick. The journal (and a drain checkpoint)
    /// survive, so an evicted session is resumable after the pressure passes.
    evict: Arc<AtomicBool>,
}

impl Shared {
    fn new(config: ServerConfig, shutdown: Arc<AtomicBool>) -> Shared {
        Shared {
            config,
            shutdown,
            active: AtomicUsize::new(0),
            next_session_id: AtomicU64::new(1),
            recovered: Mutex::new(HashMap::new()),
            seats: Mutex::new(HashMap::new()),
        }
    }

    /// Whether the memory governor admits another session right now. With no budget this
    /// is always true; past the budget the `Open` is shed (code `overloaded`) **before**
    /// any session work happens, and the largest idle session is flagged for eviction so
    /// a later retry finds room.
    fn admit_session(&self) -> bool {
        let Some(budget) = self.config.memory_budget_bytes else {
            return true;
        };
        let total: usize = self.seats.lock().values().map(|seat| seat.bytes).sum();
        if total >= budget {
            self.shed_largest_seat(None);
            return false;
        }
        true
    }

    /// Record a live session in the governor's ledger.
    fn register_seat(&self, id: u64, evict: Arc<AtomicBool>, bytes: usize) {
        self.seats.lock().insert(id, SessionSeat { bytes, evict });
    }

    /// Update a session's byte estimate; when the process-wide total crosses the budget,
    /// flag the largest *other* session for eviction (the grower is mid-request, every
    /// other live session is idle between requests — evicting the largest frees the most
    /// memory per disrupted client).
    fn note_seat_bytes(&self, id: u64, bytes: usize) {
        let Some(budget) = self.config.memory_budget_bytes else {
            return;
        };
        let total: usize = {
            let mut seats = self.seats.lock();
            if let Some(seat) = seats.get_mut(&id) {
                seat.bytes = bytes;
            }
            seats.values().map(|seat| seat.bytes).sum()
        };
        if total > budget {
            self.shed_largest_seat(Some(id));
        }
    }

    /// Drop a session from the ledger (its connection ended).
    fn release_seat(&self, id: u64) {
        self.seats.lock().remove(&id);
    }

    /// Flag the largest not-yet-flagged session (excluding `keep`) for eviction; returns
    /// whether a victim was found.
    fn shed_largest_seat(&self, keep: Option<u64>) -> bool {
        let seats = self.seats.lock();
        let victim = seats
            .iter()
            .filter(|(id, seat)| Some(**id) != keep && !seat.evict.load(Ordering::Relaxed))
            .max_by_key(|(_, seat)| seat.bytes);
        match victim {
            Some((_, seat)) => {
                seat.evict.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Replay every journal in the configured directory into parked sessions. Called
    /// once, before the accept loop; a server without `journal_dir` skips it entirely.
    fn recover_sessions(&self) -> io::Result<()> {
        let Some(dir) = &self.config.journal_dir else {
            return Ok(());
        };
        let mut highest = 0u64;
        let mut parked = self.recovered.lock();
        for (id, session) in journal::recover_dir(dir)? {
            eprintln!(
                "rdms-serve: recovered session {id} ({} transactions{}{})",
                session.replayed,
                if session.from_checkpoint {
                    ", from checkpoint + journal suffix"
                } else {
                    ""
                },
                if session.truncated {
                    ", torn tail truncated"
                } else {
                    ""
                },
            );
            highest = highest.max(id);
            parked.insert(id, session);
        }
        drop(parked);
        self.next_session_id
            .fetch_max(highest + 1, Ordering::SeqCst);
        Ok(())
    }
}

impl Server {
    /// Bind a listener. `addr` is anything [`ToSocketAddrs`] accepts; use port `0` for an
    /// ephemeral port and read it back with [`local_addr`](Self::local_addr).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The flag that requests a drain when set; share it with a signal handler to stop
    /// the blocking [`run`](Self::run) loop from outside.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Run the accept loop on a background thread and return a handle to it.
    pub fn spawn(self) -> ServerHandle {
        let addr = self
            .listener
            .local_addr()
            .expect("freshly bound listener has an address");
        let shutdown = Arc::clone(&self.shutdown);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shutdown,
            thread,
        }
    }

    /// Run the accept loop on the calling thread until the shutdown flag is set (by
    /// [`ServerHandle::shutdown`], a shared [`shutdown_flag`](Self::shutdown_flag), or a
    /// permitted remote `Shutdown` request), then drain and join every connection.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared::new(self.config, Arc::clone(&self.shutdown)));
        shared.recover_sessions()?;
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    connections.retain(|handle| !handle.is_finished());
                    if shared.active.load(Ordering::SeqCst) >= shared.config.max_sessions {
                        refuse(stream, ErrorCode::SessionLimit, "server is at capacity");
                        continue;
                    }
                    shared.active.fetch_add(1, Ordering::SeqCst);
                    let shared = Arc::clone(&shared);
                    connections.push(std::thread::spawn(move || {
                        // never let a connection failure take the process down; errors
                        // here mean the peer vanished mid-handshake
                        let _ = handle_connection(stream, &shared);
                        shared.active.fetch_sub(1, Ordering::SeqCst);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(shared.config.poll_interval);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for handle in connections {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Best-effort refusal of a connection we will not serve.
fn refuse(mut stream: TcpStream, code: ErrorCode, message: &str) {
    let _ = write_message(&mut stream, &Response::rejected(code, message));
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(shared.config.poll_interval))?;
    let _ = stream.set_nodelay(true);
    let writer_stream = stream.try_clone()?;
    writer_stream.set_write_timeout(shared.config.io_timeout)?;
    let writer = Arc::new(Mutex::new(writer_stream));
    // `done` is the worker telling the reader the conversation is over (Close/Shutdown)
    let done = Arc::new(AtomicBool::new(false));
    // `evict` is the memory governor telling this connection to go (via its seat)
    let evict = Arc::new(AtomicBool::new(false));

    let (queue, inbox) = sync_channel::<Vec<u8>>(shared.config.queue_depth);
    let worker = {
        let writer = Arc::clone(&writer);
        let done = Arc::clone(&done);
        let evict = Arc::clone(&evict);
        let shared = Arc::clone(shared);
        std::thread::spawn(move || worker_loop(inbox, writer, done, evict, shared))
    };

    let mut reader = FrameReader::new(stream, shared.config.max_frame_len);
    let mut last_frame = Instant::now();
    // when the current frame's first byte arrived; the io-timeout clock. Unlike
    // `last_frame` it is NOT reset by progress within a frame, so a byte-at-a-time
    // dribbler times out just like a length-then-stall client.
    let mut frame_started: Option<Instant> = None;
    loop {
        if done.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if evict.load(Ordering::SeqCst) {
            // pressure eviction: the governor picked this session to free memory; its
            // journal (and the drain checkpoint the worker writes) keep it resumable
            let _ = write_message(&mut *writer.lock(), &Response::Evicted);
            break;
        }
        match reader.poll_frame() {
            Ok(Some(payload)) => {
                last_frame = Instant::now();
                frame_started = None;
                match queue.try_send(payload) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        // explicit backpressure: drop the frame, tell the client now
                        let _ = write_message(&mut *writer.lock(), &Response::Busy);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Ok(None) => break, // peer closed cleanly
            Err(FrameError::Idle) => {
                if reader.mid_frame() {
                    let started = *frame_started.get_or_insert_with(Instant::now);
                    if let Some(io_timeout) = shared.config.io_timeout {
                        if started.elapsed() >= io_timeout {
                            let _ = write_message(
                                &mut *writer.lock(),
                                &Response::rejected(
                                    ErrorCode::Timeout,
                                    format!("frame not completed within {io_timeout:?}"),
                                ),
                            );
                            break; // mid-frame: the stream cannot be resynced
                        }
                    }
                } else {
                    frame_started = None;
                    if last_frame.elapsed() >= shared.config.idle_timeout {
                        let _ = write_message(&mut *writer.lock(), &Response::Evicted);
                        break;
                    }
                }
            }
            Err(FrameError::Oversized { len, max }) => {
                let _ = write_message(
                    &mut *writer.lock(),
                    &Response::rejected(
                        ErrorCode::OversizedFrame,
                        format!("frame of {len} bytes exceeds the {max}-byte limit"),
                    ),
                );
                break; // length prefix is untrusted; the stream cannot be resynced
            }
            Err(FrameError::Truncated) | Err(FrameError::Io(_)) => break,
        }
    }
    drop(queue); // lets the worker drain what's left and exit
    let _ = worker.join();
    Ok(())
}

fn worker_loop(
    inbox: Receiver<Vec<u8>>,
    writer: Arc<Mutex<TcpStream>>,
    done: Arc<AtomicBool>,
    evict: Arc<AtomicBool>,
    shared: Arc<Shared>,
) {
    let mut session: Option<Session> = None;
    let mut session_id: Option<u64> = None;
    let mut said_goodbye = false;
    // recv() until the reader hangs up; after that everything queued has been answered
    while let Ok(payload) = inbox.recv() {
        if !shared.config.handler_delay.is_zero() {
            std::thread::sleep(shared.config.handler_delay);
        }
        // panic containment: a panicking handler poisons only this session — the reply
        // names the poisoning, the connection closes, and the server (and every other
        // session) keeps running. The session's journal file, if any, survives on disk
        // for recovery at next boot.
        let handled = catch_unwind(AssertUnwindSafe(|| match decode_request(&payload) {
            Err(message) => (
                Response::rejected(ErrorCode::MalformedFrame, message),
                false,
            ),
            Ok(request) => process(request, &mut session, &shared),
        }));
        let (response, terminal) = handled.unwrap_or_else(|_| {
            session = None; // the half-mutated session must never serve again
            (
                Response::rejected(
                    ErrorCode::SessionPoisoned,
                    "the session handler panicked; this session is evicted",
                ),
                true,
            )
        });
        if matches!(response, Response::Bye) {
            said_goodbye = true;
        }
        // governor bookkeeping: a fresh `Opened` takes a seat; every processed request
        // refreshes the session's byte estimate (and may flag a victim for eviction)
        if let Response::Opened { session: id, .. } = &response {
            session_id = Some(*id);
            let id = *id;
            shared.register_seat(
                id,
                Arc::clone(&evict),
                session.as_ref().map_or(0, Session::memory_bytes),
            );
        } else if let (Some(id), Some(live)) = (session_id, session.as_ref()) {
            shared.note_seat_bytes(id, live.memory_bytes());
        }
        if write_message(&mut *writer.lock(), &response).is_err() {
            break; // peer is gone; nothing further to answer
        }
        if terminal {
            done.store(true, Ordering::SeqCst);
            break;
        }
    }
    // a session leaving without a clean Close (drain, eviction — not poison, which wipes
    // `session` because its half-mutated state must not be trusted) leaves a checkpoint
    // beside its journal, so the next boot resumes the verification instead of replaying
    // the whole journal
    if let (Some(id), Some(live)) = (session_id, session.as_ref()) {
        if let Some(dir) = &shared.config.journal_dir {
            if live.journal().is_some() {
                if let Err(e) = journal::write_snapshot(dir, id, &live.snapshot()) {
                    eprintln!("rdms-serve: could not checkpoint session {id}: {e}");
                }
            }
        }
    }
    if let Some(id) = session_id {
        shared.release_seat(id);
    }
    // drain notice: when the server is stopping (rather than this one conversation
    // ending), tell the peer before the socket closes
    if shared.shutdown.load(Ordering::SeqCst) && !said_goodbye {
        let _ = write_message(&mut *writer.lock(), &Response::Bye);
    }
}

/// The `Open`/`Resume` preconditions shared by both handshakes; `None` means proceed.
fn handshake_rejection(
    version: u32,
    session: &Option<Session>,
    shared: &Shared,
) -> Option<Response> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Some(Response::rejected(
            ErrorCode::ShuttingDown,
            "server is draining",
        ));
    }
    if version != PROTOCOL_VERSION {
        return Some(Response::rejected(
            ErrorCode::ProtocolVersion,
            format!("server speaks version {PROTOCOL_VERSION}, client sent {version}"),
        ));
    }
    if session.is_some() {
        return Some(Response::rejected(
            ErrorCode::SessionAlreadyOpen,
            "this connection already has a session",
        ));
    }
    None
}

/// Map one request onto the session, returning the reply and whether the conversation is
/// over. Pure protocol logic — no socket I/O (journal creation touches the journal
/// directory) — so the tests drive it directly too.
fn process(request: Request, session: &mut Option<Session>, shared: &Shared) -> (Response, bool) {
    let config = &shared.config;
    match request {
        Request::Ping => (Response::Pong, false),
        Request::Open {
            version,
            dms,
            bound,
            invariant,
            emit_certificates,
        } => {
            if let Some(rejection) = handshake_rejection(version, session, shared) {
                return (rejection, false);
            }
            // admission control: shed *before* any session work — parsing the invariant,
            // pinning the initial configuration and creating a journal all cost memory
            // and I/O the overloaded server cannot spare (`Busy`, by contrast, drops
            // frames mid-session once work is already queued)
            if !shared.admit_session() {
                return (
                    Response::rejected(
                        ErrorCode::Overloaded,
                        "memory budget exhausted; back off and retry",
                    ),
                    false,
                );
            }
            // the Open payload must be captured before `Session::open` consumes the DMS
            let record = config
                .journal_dir
                .as_ref()
                .map(|_| journal::open_record(&dms, bound, &invariant, emit_certificates));
            match Session::open(dms, bound, &invariant, emit_certificates) {
                Ok(opened) => {
                    let id = shared.next_session_id.fetch_add(1, Ordering::SeqCst);
                    let mut opened = opened
                        .with_transaction_limit(config.max_transactions)
                        .with_deadline(config.check_deadline);
                    if let (Some(dir), Some(record)) = (&config.journal_dir, record) {
                        match Journal::create(dir, id, &record, config.journal_fsync_every) {
                            Ok(journal) => {
                                opened =
                                    opened.with_journal(Arc::new(std::sync::Mutex::new(journal)));
                            }
                            Err(e) => {
                                let (code, message) = journal::journal_error(&e);
                                return (Response::rejected(code, message), false);
                            }
                        }
                    }
                    *session = Some(opened);
                    (
                        Response::Opened {
                            protocol: PROTOCOL_VERSION,
                            session: id,
                        },
                        false,
                    )
                }
                Err(e) => (Response::rejected(e.code, e.message), false),
            }
        }
        Request::Resume {
            version,
            session: id,
        } => {
            if let Some(rejection) = handshake_rejection(version, session, shared) {
                return (rejection, false);
            }
            let Some(recovered) = shared.recovered.lock().remove(&id) else {
                return (
                    Response::rejected(
                        ErrorCode::UnknownSession,
                        format!(
                            "no recovered session {id}: never journaled, already resumed, \
                             or the server does not journal"
                        ),
                    ),
                    false,
                );
            };
            match Journal::open_append(&recovered.path, config.journal_fsync_every) {
                Ok(journal) => {
                    *session = Some(
                        recovered
                            .session
                            .with_transaction_limit(config.max_transactions)
                            .with_deadline(config.check_deadline)
                            .with_journal(Arc::new(std::sync::Mutex::new(journal))),
                    );
                    (
                        Response::Opened {
                            protocol: PROTOCOL_VERSION,
                            session: id,
                        },
                        false,
                    )
                }
                Err(e) => {
                    // park it again: the replayed state is still good, only the append
                    // handle failed
                    shared.recovered.lock().insert(id, recovered);
                    let (code, message) = journal::journal_error(&e);
                    (Response::rejected(code, message), false)
                }
            }
        }
        Request::Check { action, bindings } => match session {
            None => (
                Response::rejected(ErrorCode::NoSession, "send Open before Check"),
                false,
            ),
            Some(session) => {
                let outcome = session.check(&action, &bindings);
                (session.respond(&outcome), false)
            }
        },
        Request::Revise {
            dms,
            bound,
            invariant,
        } => match session {
            None => (
                Response::rejected(ErrorCode::NoSession, "send Open before Revise"),
                false,
            ),
            Some(session) => match session.revise(dms, bound, invariant.as_deref()) {
                Ok(outcome) => (
                    Response::Revised {
                        run_len: outcome.run_len,
                        violations: outcome.violations,
                        replayed_steps: outcome.replayed_steps,
                        rechecked_configs: outcome.rechecked_configs,
                    },
                    false,
                ),
                Err(e) => (Response::rejected(e.code, e.message), false),
            },
        },
        Request::Status => match session {
            None => (
                Response::rejected(ErrorCode::NoSession, "send Open before Status"),
                false,
            ),
            Some(session) => (session.stats(), false),
        },
        Request::Close => {
            // a cleanly closed session needs no recovery: retire (delete) its journal
            if let Some(journal) = session.as_mut().and_then(Session::take_journal) {
                if let Ok(mutex) = Arc::try_unwrap(journal) {
                    if let Ok(journal) = mutex.into_inner() {
                        let _ = journal.retire();
                    }
                }
            }
            (Response::Bye, true)
        }
        Request::Shutdown => {
            if config.allow_remote_shutdown {
                shared.shutdown.store(true, Ordering::SeqCst);
                (Response::Bye, true)
            } else {
                (
                    Response::rejected(
                        ErrorCode::ShutdownDisabled,
                        "server was started without --allow-remote-shutdown",
                    ),
                    false,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdms_core::dms::example_3_1;
    use std::collections::BTreeMap;

    fn open_request() -> Request {
        Request::Open {
            version: PROTOCOL_VERSION,
            dms: example_3_1(),
            bound: 2,
            invariant: "true".to_string(),
            emit_certificates: false,
        }
    }

    fn test_shared(config: ServerConfig) -> Shared {
        Shared::new(config, Arc::new(AtomicBool::new(false)))
    }

    #[test]
    fn process_walks_the_session_state_machine() {
        let shared = test_shared(ServerConfig::default());
        let mut session = None;

        // pre-open: Ping works, Check/Status don't
        assert_eq!(
            process(Request::Ping, &mut session, &shared).0,
            Response::Pong
        );
        let (resp, _) = process(
            Request::Check {
                action: "alpha".into(),
                bindings: BTreeMap::new(),
            },
            &mut session,
            &shared,
        );
        assert!(matches!(resp, Response::Rejected { ref code, .. } if code == "no-session"));

        // open once: ok; twice: rejected
        let (resp, _) = process(open_request(), &mut session, &shared);
        assert!(matches!(
            resp,
            Response::Opened {
                protocol: PROTOCOL_VERSION,
                ..
            }
        ));
        let (resp, _) = process(open_request(), &mut session, &shared);
        assert!(
            matches!(resp, Response::Rejected { ref code, .. } if code == "session-already-open")
        );

        // a valid transaction
        let (resp, _) = process(
            Request::Check {
                action: "alpha".into(),
                bindings: BTreeMap::from([
                    ("v1".to_string(), 1),
                    ("v2".to_string(), 2),
                    ("v3".to_string(), 3),
                ]),
            },
            &mut session,
            &shared,
        );
        assert!(matches!(resp, Response::Ok { run_len: 1, .. }));

        // close is terminal
        let (resp, terminal) = process(Request::Close, &mut session, &shared);
        assert_eq!(resp, Response::Bye);
        assert!(terminal);
    }

    #[test]
    fn session_ids_are_distinct_across_opens() {
        let shared = test_shared(ServerConfig::default());
        let mut ids = Vec::new();
        for _ in 0..3 {
            let mut session = None;
            match process(open_request(), &mut session, &shared).0 {
                Response::Opened { session: id, .. } => ids.push(id),
                other => panic!("expected Opened, got {other:?}"),
            }
        }
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn version_mismatch_and_drain_reject_opens_and_resumes() {
        let shared = test_shared(ServerConfig::default());
        let mut session = None;
        let bad_version = Request::Open {
            version: PROTOCOL_VERSION + 1,
            dms: example_3_1(),
            bound: 2,
            invariant: "true".into(),
            emit_certificates: false,
        };
        let (resp, _) = process(bad_version, &mut session, &shared);
        assert!(matches!(resp, Response::Rejected { ref code, .. } if code == "protocol-version"));

        shared.shutdown.store(true, Ordering::SeqCst);
        let (resp, _) = process(open_request(), &mut session, &shared);
        assert!(matches!(resp, Response::Rejected { ref code, .. } if code == "shutting-down"));
        let (resp, _) = process(
            Request::Resume {
                version: PROTOCOL_VERSION,
                session: 1,
            },
            &mut session,
            &shared,
        );
        assert!(matches!(resp, Response::Rejected { ref code, .. } if code == "shutting-down"));
    }

    #[test]
    fn resuming_an_unknown_session_is_rejected() {
        let shared = test_shared(ServerConfig::default());
        let mut session = None;
        let (resp, terminal) = process(
            Request::Resume {
                version: PROTOCOL_VERSION,
                session: 42,
            },
            &mut session,
            &shared,
        );
        assert!(matches!(resp, Response::Rejected { ref code, .. } if code == "unknown-session"));
        assert!(!terminal);
        assert!(session.is_none());
    }

    #[test]
    fn an_exhausted_memory_budget_sheds_opens_with_overloaded() {
        let shared = test_shared(ServerConfig {
            memory_budget_bytes: Some(1), // any live session exceeds this
            ..ServerConfig::default()
        });

        // the first Open is admitted: the ledger is empty, so nothing is over budget yet
        let mut first = None;
        let (resp, _) = process(open_request(), &mut first, &shared);
        let first_id = match resp {
            Response::Opened { session, .. } => session,
            other => panic!("expected Opened, got {other:?}"),
        };
        let evict = Arc::new(AtomicBool::new(false));
        shared.register_seat(
            first_id,
            Arc::clone(&evict),
            first.as_ref().map_or(0, Session::memory_bytes),
        );

        // the second Open finds the budget spent and is shed before any work
        let mut second = None;
        let (resp, terminal) = process(open_request(), &mut second, &shared);
        assert!(matches!(resp, Response::Rejected { ref code, .. } if code == "overloaded"));
        assert!(!terminal, "shedding keeps the connection open for retries");
        assert!(second.is_none());
        // shedding under admission pressure also flags the largest seat for eviction
        assert!(evict.load(Ordering::SeqCst));

        // releasing the seat restores admission
        shared.release_seat(first_id);
        let (resp, _) = process(open_request(), &mut second, &shared);
        assert!(matches!(resp, Response::Opened { .. }));
    }

    #[test]
    fn pressure_eviction_targets_the_largest_other_seat() {
        let shared = test_shared(ServerConfig {
            memory_budget_bytes: Some(100),
            ..ServerConfig::default()
        });
        let small = Arc::new(AtomicBool::new(false));
        let large = Arc::new(AtomicBool::new(false));
        let grower = Arc::new(AtomicBool::new(false));
        shared.register_seat(1, Arc::clone(&small), 10);
        shared.register_seat(2, Arc::clone(&large), 60);
        shared.register_seat(3, Arc::clone(&grower), 20);

        // still under budget: nobody is flagged
        shared.note_seat_bytes(3, 25);
        assert!(!small.load(Ordering::SeqCst));
        assert!(!large.load(Ordering::SeqCst));

        // the grower pushes the total past the budget; the largest *other* seat is
        // flagged (the grower itself is mid-request and cannot observe the flag yet)
        shared.note_seat_bytes(3, 40);
        assert!(large.load(Ordering::SeqCst));
        assert!(!small.load(Ordering::SeqCst));
        assert!(!grower.load(Ordering::SeqCst));
    }

    #[test]
    fn seats_are_ignored_without_a_budget() {
        let shared = test_shared(ServerConfig::default());
        let evict = Arc::new(AtomicBool::new(false));
        shared.register_seat(1, Arc::clone(&evict), usize::MAX / 2);
        assert!(shared.admit_session());
        shared.note_seat_bytes(1, usize::MAX / 2);
        assert!(!evict.load(Ordering::SeqCst));
    }

    #[test]
    fn remote_shutdown_is_gated() {
        let shared = test_shared(ServerConfig::default());
        let mut session = None;
        let (resp, terminal) = process(Request::Shutdown, &mut session, &shared);
        assert!(matches!(resp, Response::Rejected { ref code, .. } if code == "shutdown-disabled"));
        assert!(!terminal);
        assert!(!shared.shutdown.load(Ordering::SeqCst));

        let shared = test_shared(ServerConfig {
            allow_remote_shutdown: true,
            ..ServerConfig::default()
        });
        let (resp, terminal) = process(Request::Shutdown, &mut session, &shared);
        assert_eq!(resp, Response::Bye);
        assert!(terminal);
        assert!(shared.shutdown.load(Ordering::SeqCst));
    }
}
