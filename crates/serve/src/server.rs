//! The TCP serving layer: accept loop, per-connection threads, backpressure, eviction and
//! graceful drain.
//!
//! # Threading model
//!
//! One **accept thread** (the [`Server::run`] loop, backgrounded by [`Server::spawn`])
//! owns the listener in non-blocking mode and polls it every
//! [`ServerConfig::poll_interval`], so a shutdown request takes effect within one poll
//! tick without needing to poke the socket. Each accepted connection gets two threads:
//!
//! * a **reader** that decodes frames ([`FrameReader`]) under a read timeout of one poll
//!   interval — the timeout tick is where it notices idle-session eviction, server
//!   shutdown and session completion — and pushes each complete frame into a **bounded**
//!   queue ([`std::sync::mpsc::sync_channel`] of depth [`ServerConfig::queue_depth`]);
//!   when the queue is full the frame is answered immediately with [`Response::Busy`] and
//!   dropped (explicit backpressure: the client resends, nothing blocks);
//! * a **worker** that pops frames, runs them against the connection's [`Session`] and
//!   writes the response. The write half of the socket is shared (mutex) between worker
//!   and reader, since `Busy` and `Evicted` are written from the reader side.
//!
//! # Robustness invariants
//!
//! * A malformed frame is answered with `Rejected {code: "malformed-frame"}` and the
//!   connection continues; an oversized frame is answered and the connection closed
//!   (resync is impossible); neither ever panics the process.
//! * A connection sitting idle (no complete frame) past
//!   [`ServerConfig::idle_timeout`] receives [`Response::Evicted`] and is closed.
//! * Shutdown — via [`ServerHandle::shutdown`] or a permitted wire `Shutdown` — is a
//!   **drain**: readers stop accepting new frames, workers finish every frame already
//!   queued, each open connection receives [`Response::Bye`], and `run` returns only
//!   after every connection thread has been joined.

use crate::protocol::{
    decode_request, write_message, ErrorCode, FrameError, FrameReader, Request, Response,
    DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use crate::session::Session;
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Operator-facing knobs. Defaults suit a trusted local deployment; `docs/OPERATIONS.md`
/// discusses hardening each of them for untrusted networks.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrently-open connections; further ones are refused with code
    /// `session-limit` and closed.
    pub max_sessions: usize,
    /// Bound of each connection's inbound frame queue; a frame arriving on a full queue
    /// is answered with `Busy` and dropped.
    pub queue_depth: usize,
    /// A connection with no complete frame for this long is sent `Evicted` and closed.
    pub idle_timeout: Duration,
    /// How often readers and the accept loop wake to check deadlines and shutdown. Upper
    /// bounds the latency of eviction, drain and accept under load.
    pub poll_interval: Duration,
    /// Maximum accepted frame payload length.
    pub max_frame_len: usize,
    /// Per-session cap on accepted transactions (`None` = unlimited); past it, `Check`
    /// is rejected with code `transaction-limit`.
    pub max_transactions: Option<usize>,
    /// Honour the wire `Shutdown` request. Off by default: a hostile client must not be
    /// able to stop the service.
    pub allow_remote_shutdown: bool,
    /// Artificial per-request processing delay. A **test/load knob** (keep `0` in
    /// production): with `queue_depth: 1` and a visible delay, a burst of requests
    /// deterministically overflows the queue, which is how the `Busy` path is exercised
    /// by tests and operators rehearsing backpressure.
    pub handler_delay: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_sessions: 64,
            queue_depth: 32,
            idle_timeout: Duration::from_secs(300),
            poll_interval: Duration::from_millis(25),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            max_transactions: None,
            allow_remote_shutdown: false,
            handler_delay: Duration::ZERO,
        }
    }
}

/// A bound, not-yet-running server.
///
/// ```
/// use rdms_serve::{Server, ServerConfig};
/// use rdms_serve::protocol::{self, Request, Response, PROTOCOL_VERSION};
/// use std::net::TcpStream;
///
/// let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
/// let addr = server.local_addr().unwrap();
/// let handle = server.spawn();
///
/// // a minimal client turn: Ping → Pong
/// let mut stream = TcpStream::connect(addr).unwrap();
/// protocol::write_message(&mut stream, &Request::Ping).unwrap();
/// let mut reader = protocol::FrameReader::new(stream.try_clone().unwrap(), 1 << 20);
/// let frame = reader.poll_frame().unwrap().unwrap();
/// assert_eq!(protocol::decode_response(&frame).unwrap(), Response::Pong);
///
/// handle.shutdown().unwrap();
/// ```
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

/// A handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain and block until the server has fully stopped: in-flight
    /// frames are answered, every connection receives `Bye`, all threads are joined.
    pub fn shutdown(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }

    /// Whether the server has stopped on its own (e.g. a permitted remote `Shutdown`).
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// Block until the server stops without requesting it to (pair with
    /// `allow_remote_shutdown` or an external signal flipping the shared flag).
    pub fn join(self) -> io::Result<()> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}

/// Everything a connection thread needs from the server.
struct Shared {
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    active: AtomicUsize,
}

impl Server {
    /// Bind a listener. `addr` is anything [`ToSocketAddrs`] accepts; use port `0` for an
    /// ephemeral port and read it back with [`local_addr`](Self::local_addr).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The flag that requests a drain when set; share it with a signal handler to stop
    /// the blocking [`run`](Self::run) loop from outside.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Run the accept loop on a background thread and return a handle to it.
    pub fn spawn(self) -> ServerHandle {
        let addr = self
            .listener
            .local_addr()
            .expect("freshly bound listener has an address");
        let shutdown = Arc::clone(&self.shutdown);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shutdown,
            thread,
        }
    }

    /// Run the accept loop on the calling thread until the shutdown flag is set (by
    /// [`ServerHandle::shutdown`], a shared [`shutdown_flag`](Self::shutdown_flag), or a
    /// permitted remote `Shutdown` request), then drain and join every connection.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            config: self.config,
            shutdown: Arc::clone(&self.shutdown),
            active: AtomicUsize::new(0),
        });
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    connections.retain(|handle| !handle.is_finished());
                    if shared.active.load(Ordering::SeqCst) >= shared.config.max_sessions {
                        refuse(stream, ErrorCode::SessionLimit, "server is at capacity");
                        continue;
                    }
                    shared.active.fetch_add(1, Ordering::SeqCst);
                    let shared = Arc::clone(&shared);
                    connections.push(std::thread::spawn(move || {
                        // never let a connection failure take the process down; errors
                        // here mean the peer vanished mid-handshake
                        let _ = handle_connection(stream, &shared);
                        shared.active.fetch_sub(1, Ordering::SeqCst);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(shared.config.poll_interval);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for handle in connections {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Best-effort refusal of a connection we will not serve.
fn refuse(mut stream: TcpStream, code: ErrorCode, message: &str) {
    let _ = write_message(&mut stream, &Response::rejected(code, message));
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(shared.config.poll_interval))?;
    let _ = stream.set_nodelay(true);
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    // `done` is the worker telling the reader the conversation is over (Close/Shutdown)
    let done = Arc::new(AtomicBool::new(false));

    let (queue, inbox) = sync_channel::<Vec<u8>>(shared.config.queue_depth);
    let worker = {
        let writer = Arc::clone(&writer);
        let done = Arc::clone(&done);
        let shutdown = Arc::clone(&shared.shutdown);
        let config = shared.config.clone();
        std::thread::spawn(move || worker_loop(inbox, writer, done, shutdown, config))
    };

    let mut reader = FrameReader::new(stream, shared.config.max_frame_len);
    let mut last_frame = Instant::now();
    loop {
        if done.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.poll_frame() {
            Ok(Some(payload)) => {
                last_frame = Instant::now();
                match queue.try_send(payload) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        // explicit backpressure: drop the frame, tell the client now
                        let _ = write_message(&mut *writer.lock(), &Response::Busy);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Ok(None) => break, // peer closed cleanly
            Err(FrameError::Idle) => {
                if !reader.mid_frame() && last_frame.elapsed() >= shared.config.idle_timeout {
                    let _ = write_message(&mut *writer.lock(), &Response::Evicted);
                    break;
                }
            }
            Err(FrameError::Oversized { len, max }) => {
                let _ = write_message(
                    &mut *writer.lock(),
                    &Response::rejected(
                        ErrorCode::OversizedFrame,
                        format!("frame of {len} bytes exceeds the {max}-byte limit"),
                    ),
                );
                break; // length prefix is untrusted; the stream cannot be resynced
            }
            Err(FrameError::Truncated) | Err(FrameError::Io(_)) => break,
        }
    }
    drop(queue); // lets the worker drain what's left and exit
    let _ = worker.join();
    Ok(())
}

fn worker_loop(
    inbox: Receiver<Vec<u8>>,
    writer: Arc<Mutex<TcpStream>>,
    done: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
) {
    let mut session: Option<Session> = None;
    let mut said_goodbye = false;
    // recv() until the reader hangs up; after that everything queued has been answered
    while let Ok(payload) = inbox.recv() {
        if !config.handler_delay.is_zero() {
            std::thread::sleep(config.handler_delay);
        }
        let (response, terminal) = match decode_request(&payload) {
            Err(message) => (
                Response::rejected(ErrorCode::MalformedFrame, message),
                false,
            ),
            Ok(request) => process(request, &mut session, &shutdown, &config),
        };
        if matches!(response, Response::Bye) {
            said_goodbye = true;
        }
        if write_message(&mut *writer.lock(), &response).is_err() {
            break; // peer is gone; nothing further to answer
        }
        if terminal {
            done.store(true, Ordering::SeqCst);
            break;
        }
    }
    // drain notice: when the server is stopping (rather than this one conversation
    // ending), tell the peer before the socket closes
    if shutdown.load(Ordering::SeqCst) && !said_goodbye {
        let _ = write_message(&mut *writer.lock(), &Response::Bye);
    }
}

/// Map one request onto the session, returning the reply and whether the conversation is
/// over. Pure protocol logic — no I/O — so the tests drive it directly too.
fn process(
    request: Request,
    session: &mut Option<Session>,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) -> (Response, bool) {
    match request {
        Request::Ping => (Response::Pong, false),
        Request::Open {
            version,
            dms,
            bound,
            invariant,
            emit_certificates,
        } => {
            if shutdown.load(Ordering::SeqCst) {
                return (
                    Response::rejected(ErrorCode::ShuttingDown, "server is draining"),
                    false,
                );
            }
            if version != PROTOCOL_VERSION {
                return (
                    Response::rejected(
                        ErrorCode::ProtocolVersion,
                        format!("server speaks version {PROTOCOL_VERSION}, client sent {version}"),
                    ),
                    false,
                );
            }
            if session.is_some() {
                return (
                    Response::rejected(
                        ErrorCode::SessionAlreadyOpen,
                        "this connection already has a session",
                    ),
                    false,
                );
            }
            match Session::open(dms, bound, &invariant, emit_certificates) {
                Ok(opened) => {
                    *session = Some(opened.with_transaction_limit(config.max_transactions));
                    (
                        Response::Opened {
                            protocol: PROTOCOL_VERSION,
                        },
                        false,
                    )
                }
                Err(e) => (Response::rejected(e.code, e.message), false),
            }
        }
        Request::Check { action, bindings } => match session {
            None => (
                Response::rejected(ErrorCode::NoSession, "send Open before Check"),
                false,
            ),
            Some(session) => {
                let outcome = session.check(&action, &bindings);
                (session.respond(&outcome), false)
            }
        },
        Request::Status => match session {
            None => (
                Response::rejected(ErrorCode::NoSession, "send Open before Status"),
                false,
            ),
            Some(session) => (session.stats(), false),
        },
        Request::Close => (Response::Bye, true),
        Request::Shutdown => {
            if config.allow_remote_shutdown {
                shutdown.store(true, Ordering::SeqCst);
                (Response::Bye, true)
            } else {
                (
                    Response::rejected(
                        ErrorCode::ShutdownDisabled,
                        "server was started without --allow-remote-shutdown",
                    ),
                    false,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdms_core::dms::example_3_1;
    use std::collections::BTreeMap;

    fn open_request() -> Request {
        Request::Open {
            version: PROTOCOL_VERSION,
            dms: example_3_1(),
            bound: 2,
            invariant: "true".to_string(),
            emit_certificates: false,
        }
    }

    #[test]
    fn process_walks_the_session_state_machine() {
        let shutdown = AtomicBool::new(false);
        let config = ServerConfig::default();
        let mut session = None;

        // pre-open: Ping works, Check/Status don't
        assert_eq!(
            process(Request::Ping, &mut session, &shutdown, &config).0,
            Response::Pong
        );
        let (resp, _) = process(
            Request::Check {
                action: "alpha".into(),
                bindings: BTreeMap::new(),
            },
            &mut session,
            &shutdown,
            &config,
        );
        assert!(matches!(resp, Response::Rejected { ref code, .. } if code == "no-session"));

        // open once: ok; twice: rejected
        let (resp, _) = process(open_request(), &mut session, &shutdown, &config);
        assert_eq!(
            resp,
            Response::Opened {
                protocol: PROTOCOL_VERSION
            }
        );
        let (resp, _) = process(open_request(), &mut session, &shutdown, &config);
        assert!(
            matches!(resp, Response::Rejected { ref code, .. } if code == "session-already-open")
        );

        // a valid transaction
        let (resp, _) = process(
            Request::Check {
                action: "alpha".into(),
                bindings: BTreeMap::from([
                    ("v1".to_string(), 1),
                    ("v2".to_string(), 2),
                    ("v3".to_string(), 3),
                ]),
            },
            &mut session,
            &shutdown,
            &config,
        );
        assert!(matches!(resp, Response::Ok { run_len: 1, .. }));

        // close is terminal
        let (resp, terminal) = process(Request::Close, &mut session, &shutdown, &config);
        assert_eq!(resp, Response::Bye);
        assert!(terminal);
    }

    #[test]
    fn version_mismatch_and_drain_reject_opens() {
        let shutdown = AtomicBool::new(false);
        let config = ServerConfig::default();
        let mut session = None;
        let bad_version = Request::Open {
            version: PROTOCOL_VERSION + 1,
            dms: example_3_1(),
            bound: 2,
            invariant: "true".into(),
            emit_certificates: false,
        };
        let (resp, _) = process(bad_version, &mut session, &shutdown, &config);
        assert!(matches!(resp, Response::Rejected { ref code, .. } if code == "protocol-version"));

        shutdown.store(true, Ordering::SeqCst);
        let (resp, _) = process(open_request(), &mut session, &shutdown, &config);
        assert!(matches!(resp, Response::Rejected { ref code, .. } if code == "shutting-down"));
    }

    #[test]
    fn remote_shutdown_is_gated() {
        let shutdown = AtomicBool::new(false);
        let mut config = ServerConfig::default();
        let mut session = None;
        let (resp, terminal) = process(Request::Shutdown, &mut session, &shutdown, &config);
        assert!(matches!(resp, Response::Rejected { ref code, .. } if code == "shutdown-disabled"));
        assert!(!terminal);
        assert!(!shutdown.load(Ordering::SeqCst));

        config.allow_remote_shutdown = true;
        let (resp, terminal) = process(Request::Shutdown, &mut session, &shutdown, &config);
        assert_eq!(resp, Response::Bye);
        assert!(terminal);
        assert!(shutdown.load(Ordering::SeqCst));
    }
}
