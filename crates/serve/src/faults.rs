//! Deterministic fault injection: failpoints, seeded I/O fault schedules, and faulty
//! stream/sink wrappers.
//!
//! The chaos suite (`tests/chaos.rs`) needs three things ordinary tests cannot produce on
//! demand: a panic at a chosen point inside a session handler, a client whose socket
//! writes are fragmented and delayed in a seed-reproducible way, and journal sinks that
//! fail or lose their tail mid-write. This module provides all three. Everything here is
//! **deterministic in its seed or arming**: a failing schedule is reported by seed and
//! replays exactly.
//!
//! The failpoint registry is compiled into release builds too (the chaos CI leg runs
//! `--release`), but costs one relaxed atomic load per check when nothing is armed, and
//! is a programmatic hook only — nothing on the wire can arm it.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::journal::JournalSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of currently armed failpoints; the disarmed fast path is one relaxed load.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, u32>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, u32>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Whether any failpoint is armed. Call sites guard the key construction (usually a
/// `format!`) behind this so the disarmed cost is one atomic load and no allocation.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed) != 0
}

/// Arm `key` to panic on its `nth` hit (1 = the very next hit). Re-arming an armed key
/// replaces its countdown.
pub fn arm(key: &str, nth: u32) {
    assert!(nth >= 1, "nth is 1-based");
    let mut map = registry().lock().expect("failpoint registry poisoned");
    if map.insert(key.to_string(), nth).is_none() {
        ARMED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Disarm every failpoint (test teardown).
pub fn disarm_all() {
    let mut map = registry().lock().expect("failpoint registry poisoned");
    if !map.is_empty() {
        map.clear();
    }
    ARMED.store(0, Ordering::Relaxed);
}

/// A failpoint site. Panics — deliberately — when `key` is armed and its countdown
/// reaches zero; the hit disarms the key, so one arming produces exactly one panic.
pub fn failpoint(key: &str) {
    if !armed() {
        return;
    }
    let fire = {
        let mut map = registry().lock().expect("failpoint registry poisoned");
        match map.get_mut(key) {
            Some(countdown) => {
                *countdown -= 1;
                if *countdown == 0 {
                    map.remove(key);
                    ARMED.fetch_sub(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    };
    if fire {
        panic!("failpoint `{key}` fired");
    }
}

/// What a [`FaultSchedule`] tells a faulty writer to do with the next chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// Write at most this many bytes (a short write; the caller's `write_all` loops).
    Short(usize),
    /// Sleep this long first, then write at most the given bytes (a slow-loris dribble).
    Delay(Duration, usize),
    /// Fail with [`io::ErrorKind::Interrupted`] (retried transparently by `write_all`).
    Interrupt,
}

/// A seeded, deterministic schedule of I/O faults. Two schedules with the same seed make
/// identical decisions, so any failing chaos case replays from its seed alone.
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    seed: u64,
    rng: StdRng,
}

impl FaultSchedule {
    /// A schedule deterministic in `seed`.
    pub fn new(seed: u64) -> FaultSchedule {
        FaultSchedule {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed, for failure reports.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decide the fate of a write of `len` bytes.
    pub fn next_write(&mut self, len: usize) -> WriteFault {
        debug_assert!(len > 0);
        match self.rng.gen_range(0u8..10) {
            // mostly: short writes of 1..=len bytes, biased toward tiny fragments
            0..=5 => WriteFault::Short(self.fragment(len)),
            6 | 7 => WriteFault::Delay(
                Duration::from_micros(self.rng.gen_range(50u64..2_000)),
                self.fragment(len),
            ),
            _ => WriteFault::Interrupt,
        }
    }

    fn fragment(&mut self, len: usize) -> usize {
        if self.rng.gen_bool(0.5) {
            1
        } else {
            self.rng.gen_range(1usize..=len)
        }
    }
}

/// A stream wrapper that fragments, delays and interrupts **writes** according to a
/// [`FaultSchedule`]. Reads pass through untouched. Used client-side in the chaos tests:
/// pushing faulty bytes at a real server socket exercises the server's partial-frame
/// reassembly and its mid-frame i/o timeout under every schedule the seed space covers.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    schedule: FaultSchedule,
}

impl<S> FaultyStream<S> {
    /// Wrap `inner`, faulting its writes per `schedule`.
    pub fn new(inner: S, schedule: FaultSchedule) -> FaultyStream<S> {
        FaultyStream { inner, schedule }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        match self.schedule.next_write(buf.len()) {
            WriteFault::Short(n) => self.inner.write(&buf[..n.min(buf.len())]),
            WriteFault::Delay(pause, n) => {
                std::thread::sleep(pause);
                self.inner.write(&buf[..n.min(buf.len())])
            }
            WriteFault::Interrupt => Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected interrupt",
            )),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A [`JournalSink`] that silently loses every byte past `capacity` — the deterministic
/// model of a crash mid-append: the kernel got a prefix of the frame, the rest never hit
/// the disk. Feeding the surviving bytes to `journal::parse_journal` exercises the
/// torn-tail truncation for an arbitrary cut point.
#[derive(Debug)]
pub struct TruncatingSink<S> {
    inner: S,
    capacity: usize,
    written: usize,
}

impl<S> TruncatingSink<S> {
    /// Accept `capacity` bytes, drop the rest.
    pub fn new(inner: S, capacity: usize) -> TruncatingSink<S> {
        TruncatingSink {
            inner,
            capacity,
            written: 0,
        }
    }
}

impl<S: Write> Write for TruncatingSink<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let keep = buf.len().min(self.capacity.saturating_sub(self.written));
        if keep > 0 {
            self.inner.write_all(&buf[..keep])?;
        }
        self.written += buf.len();
        // report full success: the writer believes the append landed, like a process
        // that crashed before the data reached the platter
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<S: JournalSink> JournalSink for TruncatingSink<S> {
    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }
}

/// A [`JournalSink`] that starts failing after `budget` bytes — disk full, directory
/// unlinked, whatever. Drives the journal's broken-but-serving degradation path.
#[derive(Debug)]
pub struct FailingSink<S> {
    inner: S,
    budget: usize,
    written: usize,
}

impl<S> FailingSink<S> {
    /// Accept `budget` bytes, then fail every write.
    pub fn new(inner: S, budget: usize) -> FailingSink<S> {
        FailingSink {
            inner,
            budget,
            written: 0,
        }
    }
}

impl<S: Write> Write for FailingSink<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.written + buf.len() > self.budget {
            return Err(io::Error::other("injected write failure"));
        }
        self.written += buf.len();
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<S: JournalSink> JournalSink for FailingSink<S> {
    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{self, Journal, JournalRecord, SharedBuffer};
    use std::collections::BTreeMap;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn failpoints_fire_once_on_the_nth_hit() {
        // a key unique to this test: the registry is process-global and tests run in
        // parallel
        let key = "test:faults:nth";
        arm(key, 3);
        failpoint(key);
        failpoint(key);
        let result = catch_unwind(AssertUnwindSafe(|| failpoint(key)));
        assert!(result.is_err(), "third hit fires");
        failpoint(key); // disarmed after firing: no panic
    }

    #[test]
    fn schedules_are_deterministic_in_their_seed() {
        let mut a = FaultSchedule::new(99);
        let mut b = FaultSchedule::new(99);
        for len in 1..200usize {
            assert_eq!(a.next_write(len), b.next_write(len));
        }
    }

    #[test]
    fn faulty_streams_deliver_every_byte_eventually() {
        for seed in 0..20u64 {
            let mut stream = FaultyStream::new(Vec::new(), FaultSchedule::new(seed));
            let payload: Vec<u8> = (0..=255).collect();
            stream.write_all(&payload).unwrap();
            assert_eq!(stream.get_ref(), &payload, "seed {seed}");
        }
    }

    #[test]
    fn truncating_sinks_model_a_crash_mid_append() {
        let open = journal::open_record(&rdms_core::dms::example_3_1(), 2, "true", false);
        let check = JournalRecord::Check {
            action: "alpha".into(),
            bindings: BTreeMap::from([
                ("v1".to_string(), 1),
                ("v2".to_string(), 2),
                ("v3".to_string(), 3),
            ]),
        };
        let intact_len = 4 + journal::encode_record(&open).len();
        let buffer = SharedBuffer::default();
        // lose the second half of the Check frame
        let sink = TruncatingSink::new(buffer.clone(), intact_len + 10);
        let mut journal = Journal::with_sink(Box::new(sink), &open, 4).unwrap();
        journal.append(&check);
        assert!(journal.broken().is_none(), "the crash is silent");
        drop(journal);

        let parsed = journal::parse_journal(&buffer.contents()).unwrap();
        assert!(parsed.torn);
        assert_eq!(parsed.records, vec![open]);
        assert_eq!(parsed.good_len, intact_len as u64);
    }

    #[test]
    fn failing_sinks_break_the_journal_but_not_the_caller() {
        let open = journal::open_record(&rdms_core::dms::example_3_1(), 2, "true", false);
        let check = JournalRecord::Check {
            action: "alpha".into(),
            bindings: BTreeMap::new(),
        };
        let buffer = SharedBuffer::default();
        let budget = 4 + journal::encode_record(&open).len();
        let sink = FailingSink::new(buffer.clone(), budget);
        let mut journal = Journal::with_sink(Box::new(sink), &open, 4).unwrap();
        journal.append(&check);
        assert!(journal.broken().is_some());
        journal.append(&check); // no-op, no panic
        let parsed = journal::parse_journal(&buffer.contents()).unwrap();
        assert_eq!(parsed.records, vec![open]);
    }
}
