//! A verification session, independent of any transport.
//!
//! [`Session`] is the embedding API: everything the TCP layer does per connection —
//! resolve a wire transaction against the session's DMS, check it incrementally, convert
//! the outcome to a reply — without the sockets. Library users who want online checking
//! inside their own process use this type directly and never pay for framing or threads;
//! the server in [`crate::server`] is a thin loop mapping frames onto these methods.

use crate::faults;
use crate::journal::{Journal, JournalRecord, SessionSnapshot};
use crate::protocol::{ErrorCode, Response, WireStep};
use rdms_checker::incremental::{IncrementalChecker, ReviseOutcome, StepVerdict};
use rdms_core::cert::Certificate;
use rdms_core::{CancelToken, CoreError, Dms, ExtendedRun, Step};
use rdms_db::parser::parse_query;
use rdms_db::{DataValue, DbError, Substitution, Var};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Why a session could not be opened.
#[derive(Debug)]
pub struct OpenError {
    /// The stable wire code (`bad-invariant`, `database-error`, …).
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for OpenError {}

/// The outcome of checking one wire transaction. The engine-typed sibling of the wire
/// [`Response`]: `Violation` carries the actual [`ExtendedRun`] and [`Certificate`] so
/// embedders don't round-trip through JSON; [`Session::respond`] converts to wire form.
#[derive(Debug)]
pub enum CheckOutcome {
    /// Valid transition, invariant holds.
    Ok {
        /// Session-scoped canonical state id.
        state_id: u64,
        /// Whether the state was new to the session.
        new_state: bool,
        /// Run length after the step.
        run_len: usize,
    },
    /// Valid transition into a violating configuration; the step was applied.
    Violation {
        /// The violating run prefix.
        witness: ExtendedRun,
        /// Certificate, when emission is on and the invariant certifiable.
        certificate: Option<Box<Certificate>>,
    },
    /// The transaction was refused; the session state is unchanged.
    Rejected {
        /// The stable wire code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// One client's pinned verification state: the DMS, the invariant, and the incremental
/// checker holding the run spine and session-scoped interner.
///
/// ```
/// use rdms_serve::Session;
/// use rdms_core::dms::example_3_1;
/// use std::collections::BTreeMap;
///
/// let mut session = Session::open(example_3_1(), 2, "!exists u. Q(u)", false).unwrap();
/// // Figure 1's first transaction creates Q(e3): a genuine violation of the invariant.
/// let bindings = BTreeMap::from([
///     ("v1".to_string(), 1u64),
///     ("v2".to_string(), 2u64),
///     ("v3".to_string(), 3u64),
/// ]);
/// let outcome = session.check("alpha", &bindings);
/// assert!(matches!(outcome, rdms_serve::CheckOutcome::Violation { .. }));
/// assert_eq!(session.transactions(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Session {
    checker: IncrementalChecker,
    /// Accepted-transaction cap; `None` = unlimited.
    transaction_limit: Option<usize>,
    /// Per-`check` time budget; `None` = no deadline.
    deadline: Option<Duration>,
    /// Crash journal; accepted transactions are appended after the checker commits them.
    journal: Option<Arc<Mutex<Journal>>>,
}

impl Session {
    /// Open a session: parse the invariant (FOL(R) concrete syntax, see
    /// [`rdms_db::parser::parse_query`]) and pin the initial configuration of `dms` under recency
    /// bound `bound`.
    ///
    /// The invariant is evaluated on the initial configuration too: when the initial
    /// database already violates it, the session opens normally and reports the violation
    /// through [`violations`](Self::violations) (wire clients see it in `Stats`).
    pub fn open(
        dms: Dms,
        bound: usize,
        invariant: &str,
        emit_certificates: bool,
    ) -> Result<Session, OpenError> {
        let query = parse_query(invariant).map_err(|e| OpenError {
            code: ErrorCode::BadInvariant,
            message: format!("invariant does not parse: {e}"),
        })?;
        let checker = IncrementalChecker::new(Arc::new(dms), bound, query)
            .map_err(|e| match e {
                CoreError::Db(DbError::UnboundVariable(var)) => OpenError {
                    code: ErrorCode::BadInvariant,
                    message: format!("invariant must be closed, `{var}` is free"),
                },
                other => OpenError {
                    code: ErrorCode::DatabaseError,
                    message: format!("initial configuration rejects the invariant: {other}"),
                },
            })?
            .with_emit_certificate(emit_certificates);
        Ok(Session {
            checker,
            transaction_limit: None,
            deadline: None,
            journal: None,
        })
    }

    /// Rebuild a session from a drain checkpoint **without re-validating its
    /// transitions** (see [`SessionSnapshot`] for when this is sound; the journal replay
    /// path stays the fallback that validates everything). Limits, deadline and journal
    /// are not part of the snapshot — the caller re-applies the server's current
    /// configuration, exactly as on `Resume`.
    pub fn resume(snapshot: SessionSnapshot) -> Result<Session, OpenError> {
        let checker = IncrementalChecker::resume(
            Arc::new(snapshot.dms),
            snapshot.bound,
            snapshot.invariant,
            snapshot.run,
            snapshot.violations,
            snapshot.first_violation_len,
        )
        .map_err(|e| OpenError {
            code: ErrorCode::DatabaseError,
            message: format!("checkpoint does not rebuild a session: {e}"),
        })?
        .with_emit_certificate(snapshot.emit_certificates);
        Ok(Session {
            checker,
            transaction_limit: None,
            deadline: None,
            journal: None,
        })
    }

    /// Capture a drain checkpoint: everything [`resume`](Self::resume) needs to rebuild
    /// this session without replaying it.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            dms: (**self.checker.dms()).clone(),
            bound: self.checker.bound(),
            invariant: self.checker.invariant().clone(),
            emit_certificates: self.checker.emits_certificates(),
            run: self.checker.run().clone(),
            violations: self.checker.violations(),
            first_violation_len: self.checker.first_violation().map(ExtendedRun::len),
        }
    }

    /// Estimated bytes this session retains (run spine + interned canonical keys) — the
    /// figure the server's memory governor meters admission and eviction by. O(1).
    pub fn memory_bytes(&self) -> usize {
        self.checker.memory_bytes()
    }

    /// Cap the number of accepted transactions; further `check` calls are rejected with
    /// code `transaction-limit`. `None` removes the cap.
    pub fn with_transaction_limit(mut self, limit: Option<usize>) -> Session {
        self.transaction_limit = limit;
        self
    }

    /// Give every `check` call a time budget. A check whose [`CancelToken`] deadline
    /// fires is rejected with code `deadline-exceeded`; the transaction is **not**
    /// applied and the session stays usable. `None` removes the budget.
    pub fn with_deadline(mut self, budget: Option<Duration>) -> Session {
        self.deadline = budget;
        self
    }

    /// Attach a crash journal: every transaction this session **accepts** from now on is
    /// appended as a [`JournalRecord::Check`]. The caller is responsible for having
    /// journaled the `Open` payload (see [`Journal::create`]).
    pub fn with_journal(mut self, journal: Arc<Mutex<Journal>>) -> Session {
        self.journal = Some(journal);
        self
    }

    /// The attached crash journal, if any.
    pub fn journal(&self) -> Option<&Arc<Mutex<Journal>>> {
        self.journal.as_ref()
    }

    /// Detach and return the crash journal (used on `Close` to retire the file).
    pub fn take_journal(&mut self) -> Option<Arc<Mutex<Journal>>> {
        self.journal.take()
    }

    /// Check one wire transaction: resolve `action` by name, build the substitution from
    /// `bindings`, validate it as a `b`-bounded transition and evaluate the invariant.
    ///
    /// Never panics on hostile input — every failure mode is a [`CheckOutcome::Rejected`]
    /// with a stable code, and rejected transactions leave the session untouched.
    pub fn check(&mut self, action: &str, bindings: &BTreeMap<String, u64>) -> CheckOutcome {
        // deterministic test panics (the chaos suite's `session-poisoned` driver);
        // disarmed cost is one atomic load and no allocation
        if faults::armed() {
            faults::failpoint(&format!("check:{action}"));
        }
        if let Some(limit) = self.transaction_limit {
            if self.checker.transactions() >= limit {
                return CheckOutcome::Rejected {
                    code: ErrorCode::TransactionLimit,
                    message: format!("session reached its cap of {limit} transactions"),
                };
            }
        }
        let Some((index, _)) = self.checker.dms().action_by_name(action) else {
            return CheckOutcome::Rejected {
                code: ErrorCode::UnknownAction,
                message: format!("no action named `{action}`"),
            };
        };
        let subst = Substitution::from_pairs(
            bindings
                .iter()
                .map(|(name, &value)| (Var::new(name), DataValue(value))),
        );
        let step = Step::new(index, subst);
        let verdict = match self.deadline {
            Some(budget) => self
                .checker
                .check_with_cancel(&step, &CancelToken::with_timeout(budget)),
            None => self.checker.check(&step),
        };
        match verdict {
            Ok(StepVerdict::Ok {
                state_id,
                new_state,
            }) => {
                self.journal_accepted(action, bindings);
                CheckOutcome::Ok {
                    state_id,
                    new_state,
                    run_len: self.checker.run().len(),
                }
            }
            Ok(StepVerdict::Violation {
                witness,
                certificate,
            }) => {
                self.journal_accepted(action, bindings);
                CheckOutcome::Violation {
                    witness,
                    certificate,
                }
            }
            Err(e) => {
                let (code, message) = match &e {
                    CoreError::NoSuchAction(_) => {
                        (ErrorCode::UnknownAction, format!("no action `{action}`"))
                    }
                    CoreError::NotInstantiating { .. } => {
                        (ErrorCode::NotInstantiating, e.to_string())
                    }
                    CoreError::RecencyViolation { .. } => {
                        (ErrorCode::RecencyViolation, e.to_string())
                    }
                    CoreError::Cancelled => (ErrorCode::DeadlineExceeded, e.to_string()),
                    _ => (ErrorCode::DatabaseError, e.to_string()),
                };
                CheckOutcome::Rejected { code, message }
            }
        }
    }

    /// Revise the session's inputs in place (the engine behind the wire `Revise`
    /// request): any subset of DMS, recency bound and invariant, all-or-nothing, the
    /// accepted run kept. See [`IncrementalChecker::revise`] for the exact semantics of
    /// each input. On success the revision is appended to the crash journal (when one is
    /// attached), so a crash after a revision replays against the revised inputs.
    pub fn revise(
        &mut self,
        dms: Option<Dms>,
        bound: Option<usize>,
        invariant: Option<&str>,
    ) -> Result<ReviseOutcome, OpenError> {
        let query = invariant
            .map(|text| {
                parse_query(text).map_err(|e| OpenError {
                    code: ErrorCode::BadInvariant,
                    message: format!("invariant does not parse: {e}"),
                })
            })
            .transpose()?;
        let outcome = self
            .checker
            .revise(dms.clone().map(Arc::new), bound, query)
            .map_err(|e| match e {
                CoreError::Db(DbError::UnboundVariable(var)) => OpenError {
                    code: ErrorCode::BadInvariant,
                    message: format!("invariant must be closed, `{var}` is free"),
                },
                CoreError::Unsupported(reason) => OpenError {
                    code: ErrorCode::BadRevision,
                    message: reason,
                },
                other => OpenError {
                    code: ErrorCode::BadRevision,
                    message: format!("the accepted run does not replay: {other}"),
                },
            })?;
        if let Some(journal) = &self.journal {
            journal
                .lock()
                .expect("journal mutex poisoned")
                .append(&JournalRecord::Revise {
                    dms,
                    bound,
                    invariant: invariant.map(str::to_string),
                });
        }
        Ok(outcome)
    }

    /// Append an accepted transaction to the crash journal, if one is attached. Only
    /// accepted transactions are journaled: the journal must replay verbatim, and
    /// rejected transactions never touched the run spine.
    fn journal_accepted(&self, action: &str, bindings: &BTreeMap<String, u64>) {
        if let Some(journal) = &self.journal {
            journal
                .lock()
                .expect("journal mutex poisoned")
                .append(&JournalRecord::Check {
                    action: action.to_string(),
                    bindings: bindings.clone(),
                });
        }
    }

    /// Convert a [`CheckOutcome`] to its wire [`Response`], serializing the witness run
    /// (action names + bindings) and the certificate JSON for violations.
    pub fn respond(&self, outcome: &CheckOutcome) -> Response {
        match outcome {
            CheckOutcome::Ok {
                state_id,
                new_state,
                run_len,
            } => Response::Ok {
                state_id: *state_id,
                new_state: *new_state,
                run_len: *run_len,
            },
            CheckOutcome::Violation {
                witness,
                certificate,
            } => Response::Violation {
                run_len: witness.len(),
                witness: wire_witness(witness, self.checker.dms()),
                certificate: certificate.as_ref().map(|c| c.to_json()),
            },
            CheckOutcome::Rejected { code, message } => Response::rejected(*code, message.clone()),
        }
    }

    /// The session's counters as a wire `Stats` response.
    pub fn stats(&self) -> Response {
        Response::Stats {
            transactions: self.checker.transactions(),
            distinct_states: self.checker.distinct_states(),
            violations: self.checker.violations(),
            run_len: self.checker.run().len(),
        }
    }

    /// Transactions accepted so far.
    pub fn transactions(&self) -> usize {
        self.checker.transactions()
    }

    /// Accepted transactions (plus possibly the initial configuration) that violated the
    /// invariant.
    pub fn violations(&self) -> usize {
        self.checker.violations()
    }

    /// The underlying incremental checker, for embedders that want engine-level access
    /// (run spine, whole-session [`Verdict`](rdms_checker::Verdict), …).
    pub fn checker(&self) -> &IncrementalChecker {
        &self.checker
    }
}

/// A run in wire form: one [`WireStep`] per transition, actions by name.
pub fn wire_witness(run: &ExtendedRun, dms: &Dms) -> Vec<WireStep> {
    run.steps()
        .iter()
        .map(|step| {
            let (action, vars): (String, Vec<Var>) = match dms.action(step.action) {
                Ok(action) => (
                    action.name().to_string(),
                    action
                        .params()
                        .iter()
                        .chain(action.fresh())
                        .copied()
                        .collect(),
                ),
                // unreachable for runs built by a Session, but total anyway
                Err(_) => (format!("#{}", step.action), Vec::new()),
            };
            let bindings = vars
                .into_iter()
                .filter_map(|var| {
                    step.subst
                        .get(var)
                        .map(|value| (var.as_str().to_string(), value.index()))
                })
                .collect();
            WireStep { action, bindings }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdms_core::dms::example_3_1;

    fn alpha_bindings(base: u64) -> BTreeMap<String, u64> {
        BTreeMap::from([
            ("v1".to_string(), base),
            ("v2".to_string(), base + 1),
            ("v3".to_string(), base + 2),
        ])
    }

    #[test]
    fn open_check_and_stats_flow() {
        let mut session = Session::open(example_3_1(), 2, "true", false).unwrap();
        let outcome = session.check("alpha", &alpha_bindings(1));
        assert!(matches!(outcome, CheckOutcome::Ok { run_len: 1, .. }));
        match session.stats() {
            Response::Stats {
                transactions,
                run_len,
                violations,
                ..
            } => {
                assert_eq!((transactions, run_len, violations), (1, 1, 0));
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn bad_invariants_are_rejected_at_open() {
        let err = Session::open(example_3_1(), 2, "exists u. R(u", false).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadInvariant);
        let err = Session::open(example_3_1(), 2, "R(u)", false).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadInvariant);
        assert!(err.message.contains("closed"));
    }

    #[test]
    fn unknown_actions_and_invalid_bindings_reject_without_state_change() {
        let mut session = Session::open(example_3_1(), 2, "true", false).unwrap();
        let outcome = session.check("nope", &BTreeMap::new());
        assert!(matches!(
            outcome,
            CheckOutcome::Rejected {
                code: ErrorCode::UnknownAction,
                ..
            }
        ));
        let outcome = session.check("alpha", &BTreeMap::new());
        assert!(matches!(
            outcome,
            CheckOutcome::Rejected {
                code: ErrorCode::NotInstantiating,
                ..
            }
        ));
        assert_eq!(session.transactions(), 0);
    }

    #[test]
    fn violations_carry_a_wire_witness_and_verifying_certificate() {
        let mut session = Session::open(example_3_1(), 2, "!exists u. Q(u)", true).unwrap();
        let outcome = session.check("alpha", &alpha_bindings(1));
        let response = session.respond(&outcome);
        match response {
            Response::Violation {
                run_len,
                witness,
                certificate,
            } => {
                assert_eq!(run_len, 1);
                assert_eq!(witness.len(), 1);
                assert_eq!(witness[0].action, "alpha");
                assert_eq!(witness[0].bindings["v1"], 1);
                let cert = rdms_core::cert::Certificate::from_json(&certificate.unwrap()).unwrap();
                assert!(cert.verify().is_ok());
            }
            other => panic!("expected Violation, got {other:?}"),
        }
        // the violating step was applied; the session keeps serving
        assert_eq!(session.transactions(), 1);
        assert_eq!(session.violations(), 1);
        assert!(matches!(
            session.check(
                "beta",
                &BTreeMap::from([
                    ("u".to_string(), 2u64),
                    ("v1".to_string(), 4),
                    ("v2".to_string(), 5),
                ])
            ),
            CheckOutcome::Ok { .. } | CheckOutcome::Violation { .. }
        ));
    }

    #[test]
    fn transaction_limit_is_enforced() {
        let mut session = Session::open(example_3_1(), 2, "true", false)
            .unwrap()
            .with_transaction_limit(Some(1));
        assert!(matches!(
            session.check("alpha", &alpha_bindings(1)),
            CheckOutcome::Ok { .. }
        ));
        assert!(matches!(
            session.check("alpha", &alpha_bindings(4)),
            CheckOutcome::Rejected {
                code: ErrorCode::TransactionLimit,
                ..
            }
        ));
        assert_eq!(session.transactions(), 1);
    }
}
