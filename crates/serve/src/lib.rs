//! # rdms-serve — the online incremental verification service
//!
//! The engines in `rdms-checker` answer one-shot questions; this crate turns the
//! incremental engine ([`rdms_checker::incremental`]) into a **long-running service**: a
//! client opens a session by submitting a DMS, an invariant and a recency bound once, then
//! streams transactions; the server pins the session's run spine and answers each
//! transaction in time independent of how many came before — `Ok`, `Violation` (with a
//! witness run and optionally a replayable certificate for the engine-free `rdms-cert`
//! verifier), or `Rejected` with a stable error code.
//!
//! Three layers, separable on purpose:
//!
//! * [`protocol`] — the wire format: length-prefixed JSON frames, request/response types,
//!   error codes. The normative spec is `docs/PROTOCOL.md` in the repository; the module
//!   implements it and its tests pin the documented shapes.
//! * [`session`] — a [`Session`]: one client's verification state, no transport. This is
//!   the **embedding API** — use it directly for in-process online checking.
//! * [`server`] — the TCP layer: accept loop, per-connection reader/worker threads,
//!   bounded inbound queues with explicit `Busy` backpressure, idle eviction, panic
//!   containment (a poisoned session never takes the server down), mid-frame i/o
//!   timeouts, and graceful drain on shutdown. `docs/OPERATIONS.md` is the operator
//!   guide.
//!
//! Two robustness layers ride on top: [`journal`] gives sessions crash-safe append-only
//! logs and boot-time recovery (clients re-attach with `Resume`), and [`faults`] is the
//! deterministic fault-injection harness the chaos suite drives them with.
//!
//! The `rdms-serve` binary wraps [`Server`] with flags; `examples/serve_client.rs` (at the
//! workspace root) is a complete protocol-conformant client.
//!
//! # Embedding example
//!
//! In-process checking needs no sockets at all:
//!
//! ```
//! use rdms_serve::{CheckOutcome, Session};
//! use rdms_core::dms::example_3_1;
//! use std::collections::BTreeMap;
//!
//! // Figure 1's DMS at recency bound 2; forbid Q-facts and ask for certificates.
//! let mut session = Session::open(example_3_1(), 2, "!exists u. Q(u)", true).unwrap();
//!
//! // alpha's first firing creates Q(e3) — a genuine violation, with a certificate
//! // anyone can re-verify without trusting this engine.
//! let bindings = BTreeMap::from([
//!     ("v1".to_string(), 1u64),
//!     ("v2".to_string(), 2u64),
//!     ("v3".to_string(), 3u64),
//! ]);
//! match session.check("alpha", &bindings) {
//!     CheckOutcome::Violation { witness, certificate } => {
//!         assert_eq!(witness.len(), 1);
//!         assert!(certificate.unwrap().verify().is_ok());
//!     }
//!     other => panic!("expected a violation, got {other:?}"),
//! }
//! ```
//!
//! # Serving example
//!
//! The full client flow over TCP — open, check, status, close — in a dozen lines; see
//! [`Server`] for the minimal bind/ping/shutdown round trip.
//!
//! ```
//! use rdms_serve::protocol::{self, Request, Response, PROTOCOL_VERSION};
//! use rdms_serve::{Server, ServerConfig};
//! use rdms_core::dms::example_3_1;
//! use std::collections::BTreeMap;
//! use std::net::TcpStream;
//!
//! let handle = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap().spawn();
//!
//! let mut stream = TcpStream::connect(handle.addr()).unwrap();
//! let mut replies = protocol::FrameReader::new(stream.try_clone().unwrap(), 1 << 20);
//! let mut turn = |request: &Request| -> Response {
//!     protocol::write_message(&mut stream, request).unwrap();
//!     loop {
//!         match replies.poll_frame() {
//!             Ok(Some(frame)) => return protocol::decode_response(&frame).unwrap(),
//!             Ok(None) => panic!("server closed early"),
//!             Err(protocol::FrameError::Idle) => continue,
//!             Err(e) => panic!("transport error: {e}"),
//!         }
//!     }
//! };
//!
//! let opened = turn(&Request::Open {
//!     version: PROTOCOL_VERSION,
//!     dms: example_3_1(),
//!     bound: 2,
//!     invariant: "true".to_string(),
//!     emit_certificates: false,
//! });
//! assert!(matches!(opened, Response::Opened { protocol: PROTOCOL_VERSION, .. }));
//!
//! let verdict = turn(&Request::Check {
//!     action: "alpha".to_string(),
//!     bindings: BTreeMap::from([
//!         ("v1".to_string(), 1), ("v2".to_string(), 2), ("v3".to_string(), 3),
//!     ]),
//! });
//! assert!(matches!(verdict, Response::Ok { run_len: 1, .. }));
//!
//! assert_eq!(turn(&Request::Close), Response::Bye);
//! handle.shutdown().unwrap();
//! ```

pub mod faults;
pub mod journal;
pub mod protocol;
pub mod server;
pub mod session;

pub use journal::{Journal, JournalRecord, RecoveredSession};
pub use protocol::{Request, Response, WireStep, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::{CheckOutcome, OpenError, Session};
