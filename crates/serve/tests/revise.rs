//! Wire-level behaviour of the v2-additive `Revise` request: in-place edits of a live
//! session's invariant and bound, rejection semantics (`bad-invariant`, `bad-revision`,
//! `no-session`), and crash recovery of a journal that contains `Revise` records. Every
//! guarantee pinned here is documented in `docs/PROTOCOL.md`.

use rdms_core::dms::example_3_1;
use rdms_serve::journal;
use rdms_serve::protocol::{self, FrameError, Request, Response, PROTOCOL_VERSION};
use rdms_serve::{Server, ServerConfig, ServerHandle};
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn spawn_server(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config)
        .expect("bind ephemeral port")
        .spawn()
}

fn fast_config() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(2),
        io_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    }
}

fn connect(handle: &ServerHandle) -> (TcpStream, protocol::FrameReader<TcpStream>) {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let replies = protocol::FrameReader::new(
        stream.try_clone().expect("clone"),
        protocol::DEFAULT_MAX_FRAME_LEN,
    );
    (stream, replies)
}

fn next_response(replies: &mut protocol::FrameReader<TcpStream>) -> Option<Response> {
    loop {
        match replies.poll_frame() {
            Ok(Some(frame)) => {
                return Some(protocol::decode_response(&frame).expect("server frames decode"))
            }
            Ok(None) => return None,
            Err(FrameError::Idle) => continue,
            Err(e) => panic!("client-side transport error: {e}"),
        }
    }
}

fn turn(
    stream: &mut TcpStream,
    replies: &mut protocol::FrameReader<TcpStream>,
    request: &Request,
) -> Response {
    protocol::write_message(stream, request).expect("request written");
    next_response(replies).expect("server replied")
}

fn open_request(invariant: &str) -> Request {
    Request::Open {
        version: PROTOCOL_VERSION,
        dms: example_3_1(),
        bound: 2,
        invariant: invariant.to_string(),
        emit_certificates: false,
    }
}

fn alpha_check(base: u64) -> Request {
    Request::Check {
        action: "alpha".to_string(),
        bindings: BTreeMap::from([
            ("v1".to_string(), base),
            ("v2".to_string(), base + 1),
            ("v3".to_string(), base + 2),
        ]),
    }
}

fn revise_invariant(invariant: &str) -> Request {
    Request::Revise {
        dms: None,
        bound: None,
        invariant: Some(invariant.to_string()),
    }
}

/// Changing the invariant mid-session re-checks the accepted run in place: the spine is
/// kept, the violation record is rebuilt under the new φ, and later transactions are
/// judged by it.
#[test]
fn revise_swaps_the_invariant_without_losing_the_run() {
    let handle = spawn_server(fast_config());
    let (mut stream, mut replies) = connect(&handle);
    assert!(matches!(
        turn(&mut stream, &mut replies, &open_request("true")),
        Response::Opened { .. }
    ));
    // under `true` the transaction lands in a non-violating state
    assert!(matches!(
        turn(&mut stream, &mut replies, &alpha_check(1)),
        Response::Ok { run_len: 1, .. }
    ));

    // `alpha` populated Q, so the revised invariant is violated at the tip — the
    // revision reports it without replaying (invariant edits only re-evaluate φ)
    match turn(
        &mut stream,
        &mut replies,
        &revise_invariant("!exists u. Q(u)"),
    ) {
        Response::Revised {
            run_len,
            violations,
            replayed_steps,
            rechecked_configs,
        } => {
            assert_eq!(run_len, 1, "the accepted run is kept");
            assert_eq!(violations, 1, "the tip violates the new invariant");
            assert_eq!(replayed_steps, 0, "invariant edits do not replay");
            assert_eq!(
                rechecked_configs, 2,
                "every spine configuration is re-checked"
            );
        }
        other => panic!("expected Revised, got {other:?}"),
    }

    // counters visible through Status agree with the revision's report
    match turn(&mut stream, &mut replies, &Request::Status) {
        Response::Stats {
            transactions,
            violations,
            run_len,
            ..
        } => assert_eq!((transactions, violations, run_len), (1, 1, 1)),
        other => panic!("expected Stats, got {other:?}"),
    }

    // a no-op revision is accepted and changes nothing
    match turn(
        &mut stream,
        &mut replies,
        &Request::Revise {
            dms: None,
            bound: None,
            invariant: None,
        },
    ) {
        Response::Revised {
            run_len,
            violations,
            replayed_steps,
            rechecked_configs,
        } => assert_eq!(
            (run_len, violations, replayed_steps, rechecked_configs),
            (1, 1, 0, 0)
        ),
        other => panic!("expected Revised, got {other:?}"),
    }
    handle.shutdown().expect("drain");
}

/// Bad revisions are refused with stable codes and leave the session exactly as it was.
#[test]
fn bad_revisions_are_rejected_and_change_nothing() {
    let handle = spawn_server(fast_config());

    // Revise before Open: no-session
    {
        let (mut stream, mut replies) = connect(&handle);
        match turn(&mut stream, &mut replies, &revise_invariant("true")) {
            Response::Rejected { code, .. } => assert_eq!(code, "no-session"),
            other => panic!("expected no-session, got {other:?}"),
        }
    }

    let (mut stream, mut replies) = connect(&handle);
    assert!(matches!(
        turn(&mut stream, &mut replies, &open_request("true")),
        Response::Opened { .. }
    ));
    assert!(matches!(
        turn(&mut stream, &mut replies, &alpha_check(1)),
        Response::Ok { .. }
    ));

    // an unparsable invariant and an open (free-variable) invariant are both
    // `bad-invariant`; a DMS missing an action the accepted run uses is `bad-revision`
    let no_alpha = {
        use rdms_core::{ActionBuilder, DmsBuilder};
        DmsBuilder::new()
            .proposition("p")
            .relation("R", 1)
            .relation("Q", 1)
            .initially_true("p")
            .action(ActionBuilder::new("other").guard(rdms_db::Query::True))
            .build()
            .expect("valid DMS")
    };
    for (request, expected) in [
        (revise_invariant("exists u."), "bad-invariant"),
        (revise_invariant("Q(u)"), "bad-invariant"),
        (
            Request::Revise {
                dms: Some(no_alpha),
                bound: None,
                invariant: None,
            },
            "bad-revision",
        ),
    ] {
        match turn(&mut stream, &mut replies, &request) {
            Response::Rejected { code, .. } => assert_eq!(code, expected, "for {request:?}"),
            other => panic!("expected {expected}, got {other:?}"),
        }
    }

    // the session still serves, untouched, under the original inputs
    match turn(&mut stream, &mut replies, &Request::Status) {
        Response::Stats {
            transactions,
            violations,
            run_len,
            ..
        } => assert_eq!((transactions, violations, run_len), (1, 0, 1)),
        other => panic!("expected Stats, got {other:?}"),
    }
    assert!(matches!(
        turn(&mut stream, &mut replies, &alpha_check(4)),
        Response::Ok { run_len: 2, .. }
    ));
    handle.shutdown().expect("drain");
}

/// A journaled session that revised its invariant recovers across a crash: the `Revise`
/// record replays in order, so the resumed session judges transactions by the revised
/// invariant, not the one it was opened with.
#[test]
fn revisions_survive_crash_recovery() {
    let dir = std::env::temp_dir().join(format!("rdms-revise-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let journaled_config = || ServerConfig {
        journal_dir: Some(PathBuf::from(&dir)),
        journal_fsync_every: 1,
        ..fast_config()
    };

    // life 1: open under `true`, accept one transaction, revise, then vanish (crash)
    let handle = spawn_server(journaled_config());
    let id;
    {
        let (mut stream, mut replies) = connect(&handle);
        id = match turn(&mut stream, &mut replies, &open_request("true")) {
            Response::Opened { session, .. } => session,
            other => panic!("expected Opened, got {other:?}"),
        };
        assert!(matches!(
            turn(&mut stream, &mut replies, &alpha_check(1)),
            Response::Ok { run_len: 1, .. }
        ));
        assert!(matches!(
            turn(
                &mut stream,
                &mut replies,
                &revise_invariant("!exists u. Q(u)")
            ),
            Response::Revised { violations: 1, .. }
        ));
        // no Close: the journal survives the crash
    }
    handle.shutdown().expect("drain");
    assert!(
        dir.join(journal::journal_file_name(id)).exists(),
        "the crashed session left its journal behind"
    );

    // life 2: boot recovery replays Open + Check + Revise, Resume re-attaches
    let handle = spawn_server(journaled_config());
    let (mut stream, mut replies) = connect(&handle);
    assert!(matches!(
        turn(
            &mut stream,
            &mut replies,
            &Request::Resume {
                version: PROTOCOL_VERSION,
                session: id,
            },
        ),
        Response::Opened { session, .. } if session == id
    ));
    match turn(&mut stream, &mut replies, &Request::Status) {
        Response::Stats {
            transactions,
            violations,
            run_len,
            ..
        } => assert_eq!(
            (transactions, violations, run_len),
            (1, 1, 1),
            "the revised violation record was restored"
        ),
        other => panic!("expected Stats, got {other:?}"),
    }
    assert_eq!(
        turn(&mut stream, &mut replies, &Request::Close),
        Response::Bye
    );
    handle.shutdown().expect("drain");
    let _ = std::fs::remove_dir_all(&dir);
}
