//! The memory governor over real sockets: admission shedding with `overloaded`,
//! pressure eviction of the largest session, and checkpoint-on-drain feeding a
//! reboot-then-`Resume` continuation. Companion to the in-process unit tests in
//! `server.rs` (ledger arithmetic) and `journal.rs` (checkpoint preference).

use rdms_core::dms::example_3_1;
use rdms_serve::protocol::{self, FrameError, Request, Response, PROTOCOL_VERSION};
use rdms_serve::{Server, ServerConfig, ServerHandle};
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::time::Duration;

fn spawn_server(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config)
        .expect("bind ephemeral port")
        .spawn()
}

fn connect(handle: &ServerHandle) -> (TcpStream, protocol::FrameReader<TcpStream>) {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let replies = protocol::FrameReader::new(
        stream.try_clone().expect("clone"),
        protocol::DEFAULT_MAX_FRAME_LEN,
    );
    (stream, replies)
}

fn next_response(replies: &mut protocol::FrameReader<TcpStream>) -> Option<Response> {
    loop {
        match replies.poll_frame() {
            Ok(Some(frame)) => {
                return Some(protocol::decode_response(&frame).expect("server frames decode"))
            }
            Ok(None) => return None,
            Err(FrameError::Idle) => continue,
            Err(e) => panic!("client-side transport error: {e}"),
        }
    }
}

fn turn(
    stream: &mut TcpStream,
    replies: &mut protocol::FrameReader<TcpStream>,
    request: &Request,
) -> Response {
    protocol::write_message(stream, request).expect("request written");
    next_response(replies).expect("server replied")
}

fn open_request() -> Request {
    Request::Open {
        version: PROTOCOL_VERSION,
        dms: example_3_1(),
        bound: 2,
        invariant: "true".to_string(),
        emit_certificates: false,
    }
}

fn alpha_check(base: u64) -> Request {
    Request::Check {
        action: "alpha".to_string(),
        bindings: BTreeMap::from([
            ("v1".to_string(), base),
            ("v2".to_string(), base + 1),
            ("v3".to_string(), base + 2),
        ]),
    }
}

fn fast_config() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    }
}

/// With the budget spent, a new `Open` is shed with the `overloaded` code — but the
/// connection stays usable (unlike `session-limit`, which closes it), and the largest
/// live session is evicted to make room for a retry.
#[test]
fn an_overloaded_server_sheds_new_opens_and_evicts_the_largest_session() {
    let handle = spawn_server(ServerConfig {
        // one byte: the first session is admitted into an empty ledger, every later
        // Open finds the budget spent
        memory_budget_bytes: Some(1),
        ..fast_config()
    });

    // the first session is admitted and does real work
    let (mut first, mut first_replies) = connect(&handle);
    assert!(matches!(
        turn(&mut first, &mut first_replies, &open_request()),
        Response::Opened { .. }
    ));
    assert!(matches!(
        turn(&mut first, &mut first_replies, &alpha_check(1)),
        Response::Ok { run_len: 1, .. }
    ));

    // the second Open is shed before any session work happens …
    let (mut second, mut second_replies) = connect(&handle);
    match turn(&mut second, &mut second_replies, &open_request()) {
        Response::Rejected { code, .. } => assert_eq!(code, "overloaded"),
        other => panic!("expected overloaded, got {other:?}"),
    }
    // … and the connection it arrived on is still being served
    assert_eq!(
        turn(&mut second, &mut second_replies, &Request::Ping),
        Response::Pong
    );

    // shedding flagged the largest (only) session; its reader delivers the notice
    assert_eq!(next_response(&mut first_replies), Some(Response::Evicted));
    assert_eq!(
        next_response(&mut first_replies),
        None,
        "evicted and closed"
    );

    // with the seat released, the freed budget admits the retry
    match turn(&mut second, &mut second_replies, &open_request()) {
        Response::Opened { .. } => {}
        other => panic!("retry after eviction refused: {other:?}"),
    }
    handle.shutdown().expect("drain");
}

/// A budget generous enough for the workload never trips: concurrent sessions open and
/// check as if the governor were off.
#[test]
fn a_generous_budget_never_sheds() {
    let handle = spawn_server(ServerConfig {
        memory_budget_bytes: Some(64 * 1024 * 1024),
        ..fast_config()
    });
    let (mut a, mut a_replies) = connect(&handle);
    let (mut b, mut b_replies) = connect(&handle);
    for (stream, replies) in [(&mut a, &mut a_replies), (&mut b, &mut b_replies)] {
        assert!(matches!(
            turn(stream, replies, &open_request()),
            Response::Opened { .. }
        ));
        assert!(matches!(
            turn(stream, replies, &alpha_check(1)),
            Response::Ok { .. }
        ));
    }
    handle.shutdown().expect("drain");
}

/// A server drain checkpoints live sessions; the next boot resumes them from the
/// checkpoint and a reconnecting client picks up exactly where it left off.
#[test]
fn drain_checkpoints_and_a_rebooted_server_resumes_the_session() {
    let dir = std::env::temp_dir().join(format!("rdms-overload-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServerConfig {
        journal_dir: Some(dir.clone()),
        journal_fsync_every: 1,
        ..fast_config()
    };

    let handle = spawn_server(config());
    let (mut stream, mut replies) = connect(&handle);
    let session_id = match turn(&mut stream, &mut replies, &open_request()) {
        Response::Opened { session, .. } => session,
        other => panic!("expected Opened, got {other:?}"),
    };
    assert!(matches!(
        turn(&mut stream, &mut replies, &alpha_check(1)),
        Response::Ok { run_len: 1, .. }
    ));
    assert!(matches!(
        turn(&mut stream, &mut replies, &alpha_check(4)),
        Response::Ok { run_len: 2, .. }
    ));
    handle.shutdown().expect("drain");

    // the drain wrote a checkpoint next to the journal
    assert!(
        dir.join(rdms_serve::journal::checkpoint_file_name(session_id))
            .exists(),
        "drain must checkpoint the live session"
    );

    // reboot: the new server recovers the session (checkpoint + journal suffix) and a
    // Resume continues it with all counters intact
    let handle = spawn_server(config());
    let (mut stream, mut replies) = connect(&handle);
    match turn(
        &mut stream,
        &mut replies,
        &Request::Resume {
            version: PROTOCOL_VERSION,
            session: session_id,
        },
    ) {
        Response::Opened { session, .. } => assert_eq!(session, session_id),
        other => panic!("expected Opened on resume, got {other:?}"),
    }
    match turn(&mut stream, &mut replies, &Request::Status) {
        Response::Stats {
            transactions,
            run_len,
            ..
        } => {
            assert_eq!(transactions, 2, "resumed session kept its history");
            assert_eq!(run_len, 2);
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    // and the verification continues from there, not from scratch
    assert!(matches!(
        turn(&mut stream, &mut replies, &alpha_check(7)),
        Response::Ok { run_len: 3, .. }
    ));
    assert_eq!(
        turn(&mut stream, &mut replies, &Request::Close),
        Response::Bye
    );
    handle.shutdown().expect("drain");
    let _ = std::fs::remove_dir_all(&dir);
}
