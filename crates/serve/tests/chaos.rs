//! The chaos suite: deterministic fault injection against the full service stack.
//!
//! Every test here drives one of the robustness guarantees under a **seeded** fault
//! schedule (`rdms_serve::faults`), so a failure reproduces from its seed alone. When the
//! `CHAOS_SEED_LOG` environment variable names a file, the seed of any failing schedule
//! is appended there — the CI chaos leg uploads that file as an artifact.
//!
//! The two oracles:
//!
//! * **liveness** — after any schedule of fragmented/delayed/interrupted client i/o, the
//!   server still answers a fresh, healthy connection;
//! * **recovery equivalence** — verdicts after a crash + journal recovery are
//!   bit-for-bit the verdicts of the uninterrupted run (the `tests/incremental.rs`
//!   equivalence style, lifted to the service layer).

use proptest::prelude::*;
use rdms_core::dms::example_3_1;
use rdms_serve::faults::{self, FaultSchedule, FaultyStream};
use rdms_serve::journal::{self, Journal, JournalRecord, SharedBuffer};
use rdms_serve::protocol::{self, FrameError, Request, Response, PROTOCOL_VERSION};
use rdms_serve::{CheckOutcome, Server, ServerConfig, ServerHandle, Session};
use rdms_workloads::random::{random_dms, RandomDmsConfig};
use rdms_workloads::streams::{wire_transaction, TransactionStream};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// The fixed schedules the CI chaos leg replays in release mode.
const CHAOS_SEEDS: [u64; 8] = [1, 7, 13, 42, 99, 1234, 86028157, 424242];

/// Transactions per stream in the recovery-equivalence runs.
const STREAM_LEN: usize = 12;

/// Run one seeded case; on failure, append the seed to `$CHAOS_SEED_LOG` (when set) so
/// CI can upload the failing schedule, then let the panic propagate.
fn with_seed<R>(seed: u64, case: impl FnOnce() -> R) -> R {
    match catch_unwind(AssertUnwindSafe(case)) {
        Ok(result) => result,
        Err(panic) => {
            if let Ok(path) = std::env::var("CHAOS_SEED_LOG") {
                if let Ok(mut file) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                {
                    let _ = writeln!(file, "{seed}");
                }
            }
            resume_unwind(panic)
        }
    }
}

fn spawn_server(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config)
        .expect("bind ephemeral port")
        .spawn()
}

fn fast_config() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(2),
        io_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    }
}

fn next_response(replies: &mut protocol::FrameReader<TcpStream>) -> Option<Response> {
    loop {
        match replies.poll_frame() {
            Ok(Some(frame)) => {
                return Some(protocol::decode_response(&frame).expect("server frames decode"))
            }
            Ok(None) => return None,
            Err(FrameError::Idle) => continue,
            Err(e) => panic!("client-side transport error: {e}"),
        }
    }
}

fn turn(
    stream: &mut TcpStream,
    replies: &mut protocol::FrameReader<TcpStream>,
    request: &Request,
) -> Response {
    protocol::write_message(stream, request).expect("request written");
    next_response(replies).expect("server replied")
}

/// The liveness oracle: a fresh, healthy connection gets a prompt `Pong`.
fn assert_server_alive(handle: &ServerHandle) {
    let mut stream = TcpStream::connect(handle.addr()).expect("liveness connect");
    let mut replies = protocol::FrameReader::new(
        stream.try_clone().expect("clone"),
        protocol::DEFAULT_MAX_FRAME_LEN,
    );
    assert_eq!(
        turn(&mut stream, &mut replies, &Request::Ping),
        Response::Pong,
        "liveness oracle: the server must answer after the schedule"
    );
}

fn alpha_bindings(base: u64) -> BTreeMap<String, u64> {
    BTreeMap::from([
        ("v1".to_string(), base),
        ("v2".to_string(), base + 1),
        ("v3".to_string(), base + 2),
    ])
}

/// Drive one full session through a faulty writer: every frame reaches the server
/// fragmented, delayed and interrupted per the seed's schedule, and every reply must
/// still be protocol-perfect.
fn faulty_session(handle: &ServerHandle, seed: u64) {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut replies = protocol::FrameReader::new(
        stream.try_clone().expect("clone"),
        protocol::DEFAULT_MAX_FRAME_LEN,
    );
    let mut writer = FaultyStream::new(stream, FaultSchedule::new(seed));
    let mut faulty_turn = |request: &Request| -> Response {
        protocol::write_message(&mut writer, request).expect("faulty write completes");
        next_response(&mut replies).expect("server replied")
    };

    assert_eq!(faulty_turn(&Request::Ping), Response::Pong);
    let opened = faulty_turn(&Request::Open {
        version: PROTOCOL_VERSION,
        dms: example_3_1(),
        bound: 2,
        invariant: "true".to_string(),
        emit_certificates: false,
    });
    assert!(matches!(opened, Response::Opened { .. }), "got {opened:?}");
    for (i, base) in [1u64, 4, 7].into_iter().enumerate() {
        let verdict = faulty_turn(&Request::Check {
            action: "alpha".to_string(),
            bindings: alpha_bindings(base),
        });
        match verdict {
            Response::Ok { run_len, .. } => assert_eq!(run_len, i + 1),
            other => panic!("transaction {i} refused under seed {seed}: {other:?}"),
        }
    }
    match faulty_turn(&Request::Status) {
        Response::Stats { transactions, .. } => assert_eq!(transactions, 3),
        other => panic!("expected Stats, got {other:?}"),
    }
    assert_eq!(faulty_turn(&Request::Close), Response::Bye);
}

/// The CI leg's fixed schedules: every seed's faulty session completes and the server
/// answers afterwards.
#[test]
fn liveness_under_the_fixed_fault_schedules() {
    let handle = spawn_server(fast_config());
    for seed in CHAOS_SEEDS {
        with_seed(seed, || faulty_session(&handle, seed));
    }
    assert_server_alive(&handle);
    handle.shutdown().expect("drain");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Beyond the fixed seeds: arbitrary schedules, same liveness oracle.
    #[test]
    fn liveness_under_arbitrary_fault_schedules(seed in 0u64..u64::MAX) {
        let handle = spawn_server(fast_config());
        with_seed(seed, || faulty_session(&handle, seed));
        assert_server_alive(&handle);
        handle.shutdown().expect("drain");
    }
}

/// A comparable summary of one [`CheckOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum Summary {
    Ok(u64, bool, usize),
    Violation(usize),
    Rejected(String),
}

fn summarize(outcome: &CheckOutcome) -> Summary {
    match outcome {
        CheckOutcome::Ok {
            state_id,
            new_state,
            run_len,
        } => Summary::Ok(*state_id, *new_state, *run_len),
        CheckOutcome::Violation { witness, .. } => Summary::Violation(witness.len()),
        CheckOutcome::Rejected { code, .. } => Summary::Rejected(code.to_string()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The recovery oracle, at every byte-level crash point: run a random stream through
    /// a journaled session, cut the journal bytes anywhere past the `Open` record (a
    /// crash tears mid-frame as often as at a boundary), recover, replay the rest of the
    /// stream — verdict for verdict, the crashed-and-recovered trajectory must equal the
    /// uninterrupted one.
    #[test]
    fn recovery_is_equivalent_to_the_uninterrupted_run(
        dms_seed in 0u64..1024,
        stream_seed in 0u64..1024,
        cut_per_mille in 0u32..=1000,
    ) {
        let config = RandomDmsConfig { max_arity: 1, seed: dms_seed, ..Default::default() };
        let dms = Arc::new(random_dms(&config));
        let bound = 2;
        let invariant = "!exists u. (R0(u) & R1(u))";
        let steps: Vec<(String, BTreeMap<String, u64>)> =
            TransactionStream::new(Arc::clone(&dms), bound, stream_seed)
                .take(STREAM_LEN)
                .map(|step| wire_transaction(&dms, &step))
                .collect();

        // the uninterrupted run
        let mut baseline = Session::open((*dms).clone(), bound, invariant, false).unwrap();
        let expected: Vec<Summary> = steps
            .iter()
            .map(|(action, bindings)| summarize(&baseline.check(action, bindings)))
            .collect();

        // the journaled run, crashed at an arbitrary byte
        let buffer = SharedBuffer::default();
        let open = journal::open_record(&dms, bound, invariant, false);
        let journaled = Journal::with_sink(Box::new(buffer.clone()), &open, 1).unwrap();
        let mut session = Session::open((*dms).clone(), bound, invariant, false)
            .unwrap()
            .with_journal(Arc::new(std::sync::Mutex::new(journaled)));
        for (action, bindings) in &steps {
            session.check(action, bindings);
        }
        drop(session);

        let bytes = buffer.contents();
        let open_len = 4 + journal::encode_record(&open).len();
        let cut = open_len + (bytes.len() - open_len) * cut_per_mille as usize / 1000;
        let parsed = journal::parse_journal(&bytes[..cut]).expect("intact magic");
        let (mut recovered, replayed) =
            journal::replay(&parsed.records).expect("the Open record survives every cut");

        // the journal may only ever lag the session, never diverge from it
        prop_assert!(replayed <= STREAM_LEN);
        prop_assert_eq!(recovered.transactions(), replayed);

        // resume the stream where the journal left off: every remaining verdict must
        // match the uninterrupted run, and so must the final counters
        for (i, (action, bindings)) in steps.iter().enumerate().skip(replayed) {
            let summary = summarize(&recovered.check(action, bindings));
            prop_assert_eq!(&summary, &expected[i], "verdict {} diverged after recovery", i);
        }
        prop_assert_eq!(recovered.transactions(), baseline.transactions());
        prop_assert_eq!(recovered.violations(), baseline.violations());
        prop_assert_eq!(recovered.stats(), baseline.stats());
    }
}

/// A crashed server's journal directory boots the next server into the same sessions:
/// the client re-attaches with `Resume` and continues exactly where it left off — even
/// with a torn tail scribbled onto the journal in between. A second `Resume` of the same
/// id is refused, and a clean `Close` retires the journal for good.
#[test]
fn boot_recovery_and_resume_over_the_wire() {
    let dir = std::env::temp_dir().join(format!("rdms-chaos-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let journaled_config = || ServerConfig {
        journal_dir: Some(PathBuf::from(&dir)),
        journal_fsync_every: 1,
        ..fast_config()
    };

    // life 1: open, check, then vanish without Close (the crash)
    let handle = spawn_server(journaled_config());
    let id;
    {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut replies = protocol::FrameReader::new(
            stream.try_clone().expect("clone"),
            protocol::DEFAULT_MAX_FRAME_LEN,
        );
        let opened = turn(
            &mut stream,
            &mut replies,
            &Request::Open {
                version: PROTOCOL_VERSION,
                dms: example_3_1(),
                bound: 2,
                invariant: "true".to_string(),
                emit_certificates: false,
            },
        );
        id = match opened {
            Response::Opened { session, .. } => session,
            other => panic!("expected Opened, got {other:?}"),
        };
        let verdict = turn(
            &mut stream,
            &mut replies,
            &Request::Check {
                action: "alpha".to_string(),
                bindings: alpha_bindings(1),
            },
        );
        assert!(matches!(verdict, Response::Ok { run_len: 1, .. }));
        // connection dropped here without Close: the journal survives
    }
    handle.shutdown().expect("drain");

    // the crash also tore the journal's tail
    let journal_path = dir.join(journal::journal_file_name(id));
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal_path)
            .expect("journal file exists after the crash");
        file.write_all(&[0xBA, 0xD0]).expect("scribble a torn tail");
    }

    // life 2: recover at boot, Resume over the wire, continue the run
    let handle = spawn_server(journaled_config());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut replies = protocol::FrameReader::new(
        stream.try_clone().expect("clone"),
        protocol::DEFAULT_MAX_FRAME_LEN,
    );
    let resumed = turn(
        &mut stream,
        &mut replies,
        &Request::Resume {
            version: PROTOCOL_VERSION,
            session: id,
        },
    );
    assert!(
        matches!(resumed, Response::Opened { session, .. } if session == id),
        "got {resumed:?}"
    );
    match turn(&mut stream, &mut replies, &Request::Status) {
        Response::Stats {
            transactions,
            run_len,
            ..
        } => assert_eq!(
            (transactions, run_len),
            (1, 1),
            "the crashed run was restored"
        ),
        other => panic!("expected Stats, got {other:?}"),
    }
    let verdict = turn(
        &mut stream,
        &mut replies,
        &Request::Check {
            action: "alpha".to_string(),
            bindings: alpha_bindings(4),
        },
    );
    assert!(matches!(verdict, Response::Ok { run_len: 2, .. }));

    // the same id cannot be resumed twice
    {
        let mut other = TcpStream::connect(handle.addr()).expect("connect");
        let mut other_replies = protocol::FrameReader::new(
            other.try_clone().expect("clone"),
            protocol::DEFAULT_MAX_FRAME_LEN,
        );
        match turn(
            &mut other,
            &mut other_replies,
            &Request::Resume {
                version: PROTOCOL_VERSION,
                session: id,
            },
        ) {
            Response::Rejected { code, .. } => assert_eq!(code, "unknown-session"),
            other => panic!("expected unknown-session, got {other:?}"),
        }
    }

    // clean Close retires the journal: nothing to recover at the next boot
    assert_eq!(
        turn(&mut stream, &mut replies, &Request::Close),
        Response::Bye
    );
    handle.shutdown().expect("drain");
    assert!(
        !journal_path.exists(),
        "a cleanly closed session leaves no journal behind"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Panic containment: a failpoint-induced panic inside one session's handler yields
/// `session-poisoned` on that connection only; a concurrent healthy session completes
/// its entire lifecycle and the server stays up.
#[test]
fn a_panicking_session_is_poisoned_alone() {
    let handle = spawn_server(fast_config());

    // the healthy session only ever fires `alpha`; the failpoint is keyed to `beta`
    faults::arm("check:beta", 1);

    let (mut healthy, mut healthy_replies) = {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let replies = protocol::FrameReader::new(
            stream.try_clone().expect("clone"),
            protocol::DEFAULT_MAX_FRAME_LEN,
        );
        (stream, replies)
    };
    let (mut doomed, mut doomed_replies) = {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let replies = protocol::FrameReader::new(
            stream.try_clone().expect("clone"),
            protocol::DEFAULT_MAX_FRAME_LEN,
        );
        (stream, replies)
    };
    for (stream, replies) in [
        (&mut healthy, &mut healthy_replies),
        (&mut doomed, &mut doomed_replies),
    ] {
        let opened = turn(
            stream,
            replies,
            &Request::Open {
                version: PROTOCOL_VERSION,
                dms: example_3_1(),
                bound: 2,
                invariant: "true".to_string(),
                emit_certificates: false,
            },
        );
        assert!(matches!(opened, Response::Opened { .. }));
    }

    // the doomed session trips the failpoint
    match turn(
        &mut doomed,
        &mut doomed_replies,
        &Request::Check {
            action: "beta".to_string(),
            bindings: BTreeMap::from([
                ("u".to_string(), 2u64),
                ("v1".to_string(), 4),
                ("v2".to_string(), 5),
            ]),
        },
    ) {
        Response::Rejected { code, .. } => assert_eq!(code, "session-poisoned"),
        other => panic!("expected session-poisoned, got {other:?}"),
    }
    assert_eq!(
        next_response(&mut doomed_replies),
        None,
        "the poisoned connection is closed"
    );

    // the healthy session never noticed
    let verdict = turn(
        &mut healthy,
        &mut healthy_replies,
        &Request::Check {
            action: "alpha".to_string(),
            bindings: alpha_bindings(1),
        },
    );
    assert!(matches!(verdict, Response::Ok { run_len: 1, .. }));
    assert_eq!(
        turn(&mut healthy, &mut healthy_replies, &Request::Close),
        Response::Bye
    );
    assert_server_alive(&handle);

    faults::disarm_all();
    handle.shutdown().expect("drain");
}

/// Journal degradation: when the journal's sink starts failing mid-session, the session
/// keeps accepting transactions (availability over durability) and the journal reports
/// itself broken exactly once.
#[test]
fn a_failing_journal_degrades_without_losing_the_session() {
    let open = journal::open_record(&example_3_1(), 2, "true", false);
    let buffer = SharedBuffer::default();
    // enough budget for the Open record plus one Check frame, then everything fails
    let budget = 4 + journal::encode_record(&open).len() + 120;
    let sink = faults::FailingSink::new(buffer.clone(), budget);
    let journal_handle = Arc::new(std::sync::Mutex::new(
        Journal::with_sink(Box::new(sink), &open, 1).unwrap(),
    ));
    let mut session = Session::open(example_3_1(), 2, "true", false)
        .unwrap()
        .with_journal(Arc::clone(&journal_handle));

    for base in [1u64, 4, 7, 10] {
        assert!(matches!(
            session.check("alpha", &alpha_bindings(base)),
            CheckOutcome::Ok { .. }
        ));
    }
    assert_eq!(session.transactions(), 4, "every transaction was accepted");
    assert!(
        journal_handle.lock().unwrap().broken().is_some(),
        "the journal noticed its sink failing"
    );

    // what did land parses back as a clean prefix of the run
    let parsed = journal::parse_journal(&buffer.contents()).expect("intact magic");
    assert!(!parsed.records.is_empty(), "the Open record is durable");
    assert!(matches!(parsed.records[0], JournalRecord::Open { .. }));
}
