//! Hostile-bytes robustness: nothing a client can put on the wire kills the server.
//!
//! One server instance is shared by every test and every proptest case — precisely so
//! that a panic, crashed connection thread or poisoned accept loop caused by *any* input
//! here would surface as a failure in the *other* cases. Each probe finishes by opening a
//! fresh connection and completing a documented `Ping`/`Pong` turn: the liveness oracle
//! from `docs/PROTOCOL.md` §errors ("malformed input costs the client its connection at
//! worst — never the server").

use proptest::prelude::*;
use rdms_serve::protocol::{self, FrameError, Request, Response};
use rdms_serve::{Server, ServerConfig, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

/// Small frame cap so the oversized-frame path is cheap to hit.
const MAX_FRAME_LEN: usize = 1 << 16;

fn server() -> &'static ServerHandle {
    static SERVER: OnceLock<ServerHandle> = OnceLock::new();
    SERVER.get_or_init(|| {
        Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                poll_interval: Duration::from_millis(2),
                max_frame_len: MAX_FRAME_LEN,
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral port")
        .spawn()
    })
}

fn connect() -> (TcpStream, protocol::FrameReader<TcpStream>) {
    let stream = TcpStream::connect(server().addr()).expect("connect");
    let replies = protocol::FrameReader::new(stream.try_clone().expect("clone"), MAX_FRAME_LEN);
    (stream, replies)
}

/// Block until the server's next frame, decoded as a [`Response`]; `None` = closed.
fn next_response(replies: &mut protocol::FrameReader<TcpStream>) -> Option<Response> {
    loop {
        match replies.poll_frame() {
            Ok(Some(frame)) => {
                return Some(protocol::decode_response(&frame).expect("server frames decode"))
            }
            Ok(None) => return None,
            Err(FrameError::Idle) => continue,
            Err(e) => panic!("client-side transport error: {e}"),
        }
    }
}

/// The liveness oracle: a brand-new connection must still complete a full turn.
fn assert_server_alive() {
    let (mut stream, mut replies) = connect();
    protocol::write_message(&mut stream, &Request::Ping).expect("write");
    assert_eq!(next_response(&mut replies), Some(Response::Pong));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes — random headers, random bodies, random truncation points — never
    /// take the server down.
    #[test]
    fn arbitrary_bytes_never_kill_the_server(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let (mut stream, _replies) = connect();
        // the write half may fail if the server already rejected and closed — also fine
        let _ = stream.write_all(&bytes);
        let _ = stream.flush();
        drop(stream);
        assert_server_alive();
    }

    /// Valid frames with arbitrary (non-JSON, wrong-JSON, truncated-JSON) payloads get a
    /// `malformed-frame` rejection and the connection keeps working.
    #[test]
    fn garbage_payloads_in_valid_frames_are_rejected_not_fatal(
        payload in proptest::collection::vec(0u8..=255, 0..128)
    ) {
        let (mut stream, mut replies) = connect();
        protocol::write_frame(&mut stream, &payload).expect("framed write");
        match next_response(&mut replies) {
            Some(Response::Rejected { code, .. }) => prop_assert_eq!(code, "malformed-frame"),
            // astronomically unlikely: the random payload happened to be a valid request
            Some(_) => {}
            None => prop_assert!(false, "server closed on a merely-malformed frame"),
        }
        // same connection, next frame: still in business
        protocol::write_message(&mut stream, &Request::Ping).expect("write");
        prop_assert_eq!(next_response(&mut replies), Some(Response::Pong));
        assert_server_alive();
    }
}

/// A length prefix beyond `max_frame_len` cannot be resynchronised (the payload boundary
/// is unknowable), so the documented behaviour is: explicit `oversized-frame` rejection,
/// then close — without ever allocating the claimed length.
#[test]
fn oversized_frames_are_rejected_then_closed() {
    let (mut stream, mut replies) = connect();
    let len = u32::try_from(MAX_FRAME_LEN + 1).unwrap();
    stream.write_all(&len.to_be_bytes()).expect("header write");
    stream.flush().expect("flush");
    match next_response(&mut replies) {
        Some(Response::Rejected { code, .. }) => assert_eq!(code, "oversized-frame"),
        other => panic!("expected an oversized-frame rejection, got {other:?}"),
    }
    assert_eq!(next_response(&mut replies), None, "connection is closed");
    assert_server_alive();
}

/// A client that vanishes mid-frame (header claims more body than ever arrives) just
/// loses its connection.
#[test]
fn truncated_frames_only_cost_the_client_its_connection() {
    let (mut stream, _replies) = connect();
    stream.write_all(&100u32.to_be_bytes()).expect("header");
    stream.write_all(b"only ten b").expect("partial body");
    stream.flush().expect("flush");
    drop(stream);
    assert_server_alive();
}

/// A well-formed JSON frame that is a *response* (or any non-request shape) is malformed
/// as a request — rejected with the stable code, connection preserved.
#[test]
fn wrong_shape_json_is_malformed_not_fatal() {
    let (mut stream, mut replies) = connect();
    protocol::write_message(&mut stream, &Response::Pong).expect("write a response shape");
    match next_response(&mut replies) {
        Some(Response::Rejected { code, .. }) => assert_eq!(code, "malformed-frame"),
        other => panic!("expected malformed-frame, got {other:?}"),
    }
    protocol::write_message(&mut stream, &Request::Ping).expect("write");
    assert_eq!(next_response(&mut replies), Some(Response::Pong));
}
