//! The mid-frame i/o timeout (`--io-timeout-ms`): slow-loris-style partial frames must be
//! rejected with code `timeout` and closed, without disturbing concurrent healthy
//! sessions. Two attack shapes are pinned — a client that sends the 4-byte length and
//! stalls, and one that dribbles a frame byte by byte — plus the positive control that a
//! slow-but-finite frame still completes.

use rdms_core::dms::example_3_1;
use rdms_serve::protocol::{self, FrameError, Request, Response, PROTOCOL_VERSION};
use rdms_serve::{Server, ServerConfig, ServerHandle};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn spawn_server(io_timeout: Duration) -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            poll_interval: Duration::from_millis(2),
            // idle eviction must NOT be what saves us: only the io-timeout may fire
            idle_timeout: Duration::from_secs(600),
            io_timeout: Some(io_timeout),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
    .spawn()
}

fn connect(handle: &ServerHandle) -> (TcpStream, protocol::FrameReader<TcpStream>) {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let replies = protocol::FrameReader::new(
        stream.try_clone().expect("clone"),
        protocol::DEFAULT_MAX_FRAME_LEN,
    );
    (stream, replies)
}

fn next_response(replies: &mut protocol::FrameReader<TcpStream>) -> Option<Response> {
    loop {
        match replies.poll_frame() {
            Ok(Some(frame)) => {
                return Some(protocol::decode_response(&frame).expect("server frames decode"))
            }
            Ok(None) => return None,
            Err(FrameError::Idle) => continue,
            Err(e) => panic!("client-side transport error: {e}"),
        }
    }
}

fn turn(
    stream: &mut TcpStream,
    replies: &mut protocol::FrameReader<TcpStream>,
    request: &Request,
) -> Response {
    protocol::write_message(stream, request).expect("request written");
    next_response(replies).expect("server replied")
}

fn assert_timed_out_and_closed(replies: &mut protocol::FrameReader<TcpStream>) {
    match next_response(replies) {
        Some(Response::Rejected { code, .. }) => assert_eq!(code, "timeout"),
        other => panic!("expected a timeout rejection, got {other:?}"),
    }
    assert_eq!(next_response(replies), None, "connection is closed");
}

/// The classic slow loris: announce a frame, never deliver it.
#[test]
fn length_then_stall_is_timed_out() {
    let handle = spawn_server(Duration::from_millis(80));
    let (mut stream, mut replies) = connect(&handle);
    // a healthy turn first: the timeout clock must start with the partial frame, not
    // the connection
    assert_eq!(
        turn(&mut stream, &mut replies, &Request::Ping),
        Response::Pong
    );
    stream
        .write_all(&64u32.to_be_bytes())
        .expect("length prefix written");
    stream.flush().expect("flush");
    assert_timed_out_and_closed(&mut replies);
    handle.shutdown().expect("drain");
}

/// Dribbling one byte at a time makes progress, but never completes the frame: the
/// io-timeout is measured from the frame's start, so progress must not reset it (that is
/// exactly the hole slow loris exploits in idle-based eviction).
#[test]
fn byte_by_byte_dribbler_is_timed_out() {
    let handle = spawn_server(Duration::from_millis(80));
    let (mut stream, mut replies) = connect(&handle);
    let mut frame = Vec::new();
    protocol::write_message(&mut frame, &Request::Ping).expect("encode");
    for &byte in frame.iter().cycle().take(200) {
        // stop dribbling when the server has already hung up on us
        if stream
            .write_all(&[byte])
            .and_then(|()| stream.flush())
            .is_err()
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_timed_out_and_closed(&mut replies);
    handle.shutdown().expect("drain");
}

/// The positive control: a frame delivered slowly but inside the budget is served.
#[test]
fn slow_but_finite_frames_still_complete() {
    let handle = spawn_server(Duration::from_millis(500));
    let (mut stream, mut replies) = connect(&handle);
    let mut frame = Vec::new();
    protocol::write_message(&mut frame, &Request::Ping).expect("encode");
    for &byte in &frame {
        stream.write_all(&[byte]).expect("dribble");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(next_response(&mut replies), Some(Response::Pong));
    handle.shutdown().expect("drain");
}

/// A stalling client must cost exactly one connection: a concurrent healthy session on
/// the same server completes its whole lifecycle while the staller is being timed out.
#[test]
fn stallers_do_not_affect_concurrent_healthy_sessions() {
    let handle = spawn_server(Duration::from_millis(150));

    // the staller: announce a frame and go silent
    let (mut staller, mut staller_replies) = connect(&handle);
    staller
        .write_all(&1024u32.to_be_bytes())
        .expect("length prefix written");
    staller.flush().expect("flush");

    // meanwhile, a healthy session does real work
    let (mut healthy, mut healthy_replies) = connect(&handle);
    let opened = turn(
        &mut healthy,
        &mut healthy_replies,
        &Request::Open {
            version: PROTOCOL_VERSION,
            dms: example_3_1(),
            bound: 2,
            invariant: "true".to_string(),
            emit_certificates: false,
        },
    );
    assert!(matches!(opened, Response::Opened { .. }));
    let verdict = turn(
        &mut healthy,
        &mut healthy_replies,
        &Request::Check {
            action: "alpha".to_string(),
            bindings: BTreeMap::from([
                ("v1".to_string(), 1u64),
                ("v2".to_string(), 2),
                ("v3".to_string(), 3),
            ]),
        },
    );
    assert!(matches!(verdict, Response::Ok { run_len: 1, .. }));
    assert_eq!(
        turn(&mut healthy, &mut healthy_replies, &Request::Close),
        Response::Bye
    );

    // and the staller got exactly the timeout treatment
    assert_timed_out_and_closed(&mut staller_replies);
    handle.shutdown().expect("drain");
}
