//! Session-lifecycle behaviour of the server: idle eviction, `Busy` backpressure,
//! capacity refusal, and the independence of concurrent sessions — each one a documented
//! guarantee of `docs/PROTOCOL.md` / `docs/OPERATIONS.md`, pinned here over real sockets.

use rdms_core::dms::example_3_1;
use rdms_serve::protocol::{self, FrameError, Request, Response, PROTOCOL_VERSION};
use rdms_serve::{Server, ServerConfig, ServerHandle};
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::time::Duration;

fn spawn_server(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config)
        .expect("bind ephemeral port")
        .spawn()
}

fn connect(handle: &ServerHandle) -> (TcpStream, protocol::FrameReader<TcpStream>) {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let replies = protocol::FrameReader::new(
        stream.try_clone().expect("clone"),
        protocol::DEFAULT_MAX_FRAME_LEN,
    );
    (stream, replies)
}

fn next_response(replies: &mut protocol::FrameReader<TcpStream>) -> Option<Response> {
    loop {
        match replies.poll_frame() {
            Ok(Some(frame)) => {
                return Some(protocol::decode_response(&frame).expect("server frames decode"))
            }
            Ok(None) => return None,
            Err(FrameError::Idle) => continue,
            Err(e) => panic!("client-side transport error: {e}"),
        }
    }
}

fn turn(
    stream: &mut TcpStream,
    replies: &mut protocol::FrameReader<TcpStream>,
    request: &Request,
) -> Response {
    protocol::write_message(stream, request).expect("request written");
    next_response(replies).expect("server replied")
}

fn open_request() -> Request {
    Request::Open {
        version: PROTOCOL_VERSION,
        dms: example_3_1(),
        bound: 2,
        invariant: "true".to_string(),
        emit_certificates: false,
    }
}

fn alpha_check() -> Request {
    Request::Check {
        action: "alpha".to_string(),
        bindings: BTreeMap::from([
            ("v1".to_string(), 1u64),
            ("v2".to_string(), 2),
            ("v3".to_string(), 3),
        ]),
    }
}

/// A connection with no complete frame for `idle_timeout` gets an explicit `Evicted`
/// notice and is closed — sessions cannot leak forever behind silent clients.
#[test]
fn idle_sessions_are_evicted_with_notice() {
    let handle = spawn_server(ServerConfig {
        idle_timeout: Duration::from_millis(50),
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    });
    let (mut stream, mut replies) = connect(&handle);
    // a live turn first: eviction is measured from the last *completed* frame
    assert_eq!(
        turn(&mut stream, &mut replies, &Request::Ping),
        Response::Pong
    );
    // now go silent and just listen
    assert_eq!(next_response(&mut replies), Some(Response::Evicted));
    assert_eq!(
        next_response(&mut replies),
        None,
        "evicted connection is closed"
    );
    handle.shutdown().expect("drain");
}

/// Frames arriving faster than the worker drains them are answered `Busy` and dropped —
/// the queue is bounded, so a blasting client cannot grow server memory without bound.
#[test]
fn overload_is_answered_with_busy_not_buffered_forever() {
    const BLAST: usize = 8;
    let handle = spawn_server(ServerConfig {
        queue_depth: 1,
        // slow the worker enough that a burst must overflow the depth-1 queue
        handler_delay: Duration::from_millis(100),
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    });
    let (mut stream, mut replies) = connect(&handle);
    for _ in 0..BLAST {
        protocol::write_message(&mut stream, &Request::Ping).expect("blast write");
    }
    let mut pongs = 0;
    let mut busys = 0;
    for _ in 0..BLAST {
        match next_response(&mut replies).expect("one reply per frame") {
            Response::Pong => pongs += 1,
            Response::Busy => busys += 1,
            other => panic!("unexpected reply under load: {other:?}"),
        }
    }
    assert!(pongs >= 1, "the queue still drains under load");
    assert!(busys >= 1, "overflow is reported, not silently buffered");
    assert_eq!(pongs + busys, BLAST);
    handle.shutdown().expect("drain");
}

/// Past `max_sessions` concurrent connections, new ones are refused with the stable
/// `session-limit` code instead of queueing invisibly.
#[test]
fn connections_past_the_cap_are_refused() {
    let handle = spawn_server(ServerConfig {
        max_sessions: 1,
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    });
    let (mut first, mut first_replies) = connect(&handle);
    // make sure the first connection is fully registered before the second arrives
    assert_eq!(
        turn(&mut first, &mut first_replies, &Request::Ping),
        Response::Pong
    );
    let (_second, mut second_replies) = connect(&handle);
    match next_response(&mut second_replies) {
        Some(Response::Rejected { code, .. }) => assert_eq!(code, "session-limit"),
        other => panic!("expected session-limit, got {other:?}"),
    }
    assert_eq!(
        next_response(&mut second_replies),
        None,
        "refused and closed"
    );
    // the admitted connection is unaffected
    assert_eq!(
        turn(&mut first, &mut first_replies, &Request::Ping),
        Response::Pong
    );
    handle.shutdown().expect("drain");
}

/// Concurrent sessions are fully independent: same DMS, same transaction — each session
/// sees it as a *new* abstract state, because interners are session-scoped, never shared.
#[test]
fn concurrent_sessions_have_disjoint_interners() {
    let handle = spawn_server(ServerConfig {
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    });
    let (mut a, mut a_replies) = connect(&handle);
    let (mut b, mut b_replies) = connect(&handle);
    for (stream, replies) in [(&mut a, &mut a_replies), (&mut b, &mut b_replies)] {
        assert!(matches!(
            turn(stream, replies, &open_request()),
            Response::Opened {
                protocol: PROTOCOL_VERSION,
                ..
            }
        ));
    }
    // identical transaction on both sessions: each must report a fresh state
    let verdict_a = turn(&mut a, &mut a_replies, &alpha_check());
    let verdict_b = turn(&mut b, &mut b_replies, &alpha_check());
    for verdict in [&verdict_a, &verdict_b] {
        match verdict {
            Response::Ok {
                new_state, run_len, ..
            } => {
                assert!(
                    new_state,
                    "a shared interner would make the second session see a stale state"
                );
                assert_eq!(*run_len, 1);
            }
            other => panic!("valid transaction refused: {other:?}"),
        }
    }
    assert_eq!(
        verdict_a, verdict_b,
        "independent sessions agree bit-for-bit"
    );
    handle.shutdown().expect("drain");
}

/// Re-opening on a live session is an error; closing and the `no-session` paths hold too.
#[test]
fn session_state_machine_is_enforced_over_the_wire() {
    let handle = spawn_server(ServerConfig {
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    });
    let (mut stream, mut replies) = connect(&handle);
    // Check before Open: no-session
    match turn(&mut stream, &mut replies, &alpha_check()) {
        Response::Rejected { code, .. } => assert_eq!(code, "no-session"),
        other => panic!("expected no-session, got {other:?}"),
    }
    assert!(matches!(
        turn(&mut stream, &mut replies, &open_request()),
        Response::Opened {
            protocol: PROTOCOL_VERSION,
            ..
        }
    ));
    // second Open on the same connection: session-already-open
    match turn(&mut stream, &mut replies, &open_request()) {
        Response::Rejected { code, .. } => assert_eq!(code, "session-already-open"),
        other => panic!("expected session-already-open, got {other:?}"),
    }
    // Close ends the conversation
    assert_eq!(
        turn(&mut stream, &mut replies, &Request::Close),
        Response::Bye
    );
    assert_eq!(next_response(&mut replies), None);
    handle.shutdown().expect("drain");
}
