//! Oracle tests for the revision-keyed workspace (`rdms::checker::Workspace`).
//!
//! The workspace promises that every reuse strategy — cached verdicts, carried
//! violations, bound-bump seeding, explored-set re-evaluation, delta re-expansion — is
//! *observationally invisible*: after any sequence of edits, `check()` returns the same
//! verdict (and, for complete `Holds`, the same distinct-state count) as a from-scratch
//! [`Explorer`] run on the current inputs. The proptest below drives random edit
//! sequences over a family of Example 3.1 variants and compares every step against the
//! scratch oracle; the unit tests pin the individual reuse strategies.

use proptest::prelude::*;
use rdms::checker::{CheckRequest, Explorer, ExplorerConfig, Reuse, Workspace};
use rdms::core::{ActionBuilder, Dms, DmsBuilder};
use rdms::db::parser::parse_query;
use rdms::db::{Pattern, Query, RelName, Term, Var};

/// Depth and node budgets shared by the workspace and the scratch oracle. The node
/// budget is generous on purpose: under a budget cutoff the explored fragment depends
/// on pop order, so seeded and scratch runs may legitimately disagree — the oracle
/// guarantee only covers saturating explorations (see the workspace module docs).
const DEPTH: usize = 5;
const MAX_CONFIGS: usize = 100_000;

/// Closed invariants the edit sequences swap between.
const INVARIANTS: &[&str] = &[
    "true",
    "!exists u. Q(u)",
    "!exists u. R(u) & Q(u)",
    "exists u. R(u)",
];

/// An Example 3.1 variant: β's guard is one of four shapes (all keeping `u` as the sole
/// parameter) and an optional ω action deletes one `Q` fact.
fn variant(beta_guard: u8, omega: bool) -> Dms {
    let r = |s: &str| RelName::new(s);
    let v = |s: &str| Var::new(s);

    let alpha = ActionBuilder::new("alpha")
        .fresh([v("v1"), v("v2"), v("v3")])
        .guard(Query::True)
        .add(Pattern::from_facts([
            (r("R"), vec![Term::Var(v("v1"))]),
            (r("R"), vec![Term::Var(v("v2"))]),
            (r("Q"), vec![Term::Var(v("v3"))]),
            (r("p"), vec![]),
        ]));

    let guard = match beta_guard % 4 {
        0 => Query::prop(r("p")).and(Query::atom(r("R"), [v("u")])),
        1 => Query::prop(r("p")).and(Query::atom(r("Q"), [v("u")])),
        2 => {
            Query::prop(r("p")).and(Query::atom(r("R"), [v("u")]).or(Query::atom(r("Q"), [v("u")])))
        }
        _ => Query::prop(r("p"))
            .and(Query::atom(r("R"), [v("u")]))
            .and(Query::atom(r("Q"), [v("u")]).not()),
    };
    let beta = ActionBuilder::new("beta")
        .fresh([v("v1"), v("v2")])
        .guard(guard)
        .del(Pattern::from_facts([
            (r("p"), vec![]),
            (r("R"), vec![Term::Var(v("u"))]),
        ]))
        .add(Pattern::from_facts([
            (r("Q"), vec![Term::Var(v("v1"))]),
            (r("Q"), vec![Term::Var(v("v2"))]),
        ]));

    let gamma = ActionBuilder::new("gamma")
        .guard(Query::prop(r("p")).and(Query::atom(r("Q"), [v("u")]).not()))
        .del(Pattern::from_facts([
            (r("p"), vec![]),
            (r("R"), vec![Term::Var(v("u"))]),
        ]));

    let mut builder = DmsBuilder::new()
        .proposition("p")
        .relation("R", 1)
        .relation("Q", 1)
        .initially_true("p")
        .action(alpha)
        .action(beta)
        .action(gamma);
    if omega {
        builder = builder.action(
            ActionBuilder::new("omega")
                .guard(Query::atom(r("Q"), [v("u")]))
                .del(Pattern::from_facts([(r("Q"), vec![Term::Var(v("u"))])])),
        );
    }
    builder.build().expect("every variant is a valid DMS")
}

fn scratch_config() -> ExplorerConfig {
    ExplorerConfig {
        depth: DEPTH,
        max_configs: MAX_CONFIGS,
        threads: 1,
        ..ExplorerConfig::default()
    }
}

/// Check `invariant` on `dms` from scratch: the oracle the workspace must agree with.
fn scratch(dms: &Dms, bound: usize, invariant: &Query) -> (bool, Option<usize>) {
    let explorer = Explorer::new(dms, bound).with_config(scratch_config());
    let verdict = explorer.run(CheckRequest::invariant(invariant.clone()));
    let complete_holds = matches!(
        verdict,
        rdms::checker::Verdict::Holds { complete: true, .. }
    );
    let count = complete_holds.then(|| {
        let counter = Explorer::new(dms, bound).with_config(scratch_config());
        let (count, saturated) = counter.reachable_state_count();
        assert!(saturated, "a complete Holds implies a saturating search");
        count
    });
    (verdict.holds(), count)
}

/// One random edit: which knob to turn and the value to turn it to.
#[derive(Clone, Copy, Debug)]
enum Edit {
    BetaGuard(u8),
    ToggleOmega,
    Bound(usize),
    Invariant(usize),
    NoOp,
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    (0u8..5, 0u8..12).prop_map(|(kind, arg)| match kind {
        0 => Edit::BetaGuard(arg % 4),
        1 => Edit::ToggleOmega,
        2 => Edit::Bound(1 + (arg as usize) % 3),
        3 => Edit::Invariant((arg as usize) % INVARIANTS.len()),
        _ => Edit::NoOp,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After every edit in a random sequence, the workspace's verdict — however much it
    /// reused — matches a from-scratch exploration of the current inputs, and complete
    /// `Holds` verdicts agree on the explored-state count.
    #[test]
    fn workspace_matches_scratch_explorer_under_random_edits(
        edits in proptest::collection::vec(edit_strategy(), 1..8)
    ) {
        let mut guard_choice = 0u8;
        let mut omega = false;
        let mut bound = 2usize;
        let mut inv_idx = 1usize; // "!exists u. Q(u)"

        let mut ws = Workspace::new(
            variant(guard_choice, omega),
            bound,
            parse_query(INVARIANTS[inv_idx]).unwrap(),
        )
        .with_depth(DEPTH)
        .with_max_configs(MAX_CONFIGS);

        for edit in edits {
            match edit {
                Edit::BetaGuard(g) => {
                    guard_choice = g;
                    ws.set_dms(variant(guard_choice, omega));
                }
                Edit::ToggleOmega => {
                    omega = !omega;
                    ws.set_dms(variant(guard_choice, omega));
                }
                Edit::Bound(b) => {
                    bound = b;
                    ws.set_bound(bound);
                }
                Edit::Invariant(i) => {
                    inv_idx = i;
                    ws.set_target(parse_query(INVARIANTS[inv_idx]).unwrap());
                }
                Edit::NoOp => {
                    // value-identical inputs must be backdated, not treated as new
                    let before = ws.revision();
                    ws.set_dms(variant(guard_choice, omega));
                    prop_assert_eq!(ws.revision(), before);
                }
            }
            let verdict = ws.check();
            let invariant = parse_query(INVARIANTS[inv_idx]).unwrap();
            let (oracle_holds, oracle_count) =
                scratch(&variant(guard_choice, omega), bound, &invariant);
            prop_assert_eq!(
                verdict.holds(),
                oracle_holds,
                "verdict diverged after {:?} (reuse: {:?})",
                edit,
                ws.last_report().reuse
            );
            if let Some(count) = oracle_count {
                prop_assert_eq!(
                    ws.distinct_states(),
                    Some(count),
                    "state count diverged after {:?} (reuse: {:?})",
                    edit,
                    ws.last_report().reuse
                );
            }
        }
    }
}

/// A value-identical edit must not re-expand anything: the verdict comes straight from
/// the memo table in O(1).
#[test]
fn noop_edit_returns_the_cached_verdict_without_re_expansion() {
    let mut ws = Workspace::new(
        variant(0, false),
        2,
        parse_query("!exists u. Q(u)").unwrap(),
    )
    .with_depth(DEPTH)
    .with_max_configs(MAX_CONFIGS);
    let first = ws.check();

    let before = ws.revision();
    ws.set_dms(variant(0, false)); // fingerprint-identical: backdated
    ws.set_bound(2); // value-identical: backdated
    assert_eq!(
        ws.revision(),
        before,
        "no-op edits must not advance the revision"
    );

    let second = ws.check();
    let report = ws.last_report();
    assert_eq!(report.reuse, Reuse::CachedVerdict);
    assert_eq!(report.re_expansions, 0, "a no-op edit re-expands nothing");
    assert_eq!(report.actions_recomputed, 0);
    assert_eq!(first.holds(), second.holds());
}

/// Raising the bound k→k+1 seeds the new search from the k-explored set and still
/// agrees with a from-scratch run at k+1.
#[test]
fn bound_bump_seeds_from_the_explored_set() {
    let invariant = parse_query("true").unwrap();
    let mut ws = Workspace::new(variant(0, false), 1, invariant.clone())
        .with_depth(DEPTH)
        .with_max_configs(MAX_CONFIGS);
    assert!(ws.check().holds());

    ws.set_bound(2);
    let verdict = ws.check();
    assert_eq!(
        ws.last_report().reuse,
        Reuse::BoundSeeded { from_bound: 1 },
        "the k-explored set seeds the k+1 search"
    );
    let (oracle_holds, oracle_count) = scratch(&variant(0, false), 2, &invariant);
    assert_eq!(verdict.holds(), oracle_holds);
    if let Some(count) = oracle_count {
        assert_eq!(ws.distinct_states(), Some(count));
    }
}

/// Changing only the invariant re-evaluates φ over the memoized explored set: no search,
/// no re-expansions, same verdict as scratch.
#[test]
fn target_edit_reuses_the_explored_set_without_searching() {
    let mut ws = Workspace::new(variant(0, false), 2, parse_query("true").unwrap())
        .with_depth(DEPTH)
        .with_max_configs(MAX_CONFIGS);
    assert!(ws.check().holds());

    for text in [
        "!exists u. Q(u)",
        "exists u. R(u)",
        "!exists u. R(u) & Q(u)",
    ] {
        let invariant = parse_query(text).unwrap();
        ws.set_target(invariant.clone());
        let verdict = ws.check();
        assert_eq!(
            ws.last_report().reuse,
            Reuse::ExploredSetReused,
            "invariant-only edits re-evaluate, never re-search ({text})"
        );
        assert_eq!(ws.last_report().re_expansions, 0);
        let (oracle_holds, _) = scratch(&variant(0, false), 2, &invariant);
        assert_eq!(verdict.holds(), oracle_holds, "under {text}");
    }
}

/// A guard edit triggers delta re-expansion — per-action edge reuse for unchanged
/// actions — and the result still matches scratch.
#[test]
fn guard_edit_delta_reexpansion_matches_scratch() {
    // a holding invariant, so every search saturates and memoizes its explored set —
    // a violating search breaks early and leaves nothing for the next edit to reuse
    let invariant = parse_query("true").unwrap();
    let mut ws = Workspace::new(variant(0, false), 2, invariant.clone())
        .with_depth(DEPTH)
        .with_max_configs(MAX_CONFIGS);
    let _ = ws.check();

    for g in [1u8, 2, 3, 0] {
        ws.set_dms(variant(g, false));
        let verdict = ws.check();
        assert!(
            matches!(
                ws.last_report().reuse,
                Reuse::DeltaReExpansion | Reuse::CachedVerdict
            ),
            "guard edits re-expand against the donor set (got {:?})",
            ws.last_report().reuse
        );
        let (oracle_holds, oracle_count) = scratch(&variant(g, false), 2, &invariant);
        assert_eq!(verdict.holds(), oracle_holds, "guard variant {g}");
        if let Some(count) = oracle_count {
            assert_eq!(ws.distinct_states(), Some(count), "guard variant {g}");
        }
    }
}

/// `seed_checkpoint` interoperates with the checkpoint-resume machinery: an `Explorer`
/// fed the workspace's explored set at a larger bound agrees with a scratch run there.
#[test]
fn seed_checkpoint_feeds_a_scratch_explorer() {
    // must hold at bound 1: only saturated explorations memoize an exportable set
    let invariant = parse_query("true").unwrap();
    let mut ws = Workspace::new(variant(0, false), 1, invariant.clone())
        .with_depth(DEPTH)
        .with_max_configs(MAX_CONFIGS);
    assert!(ws.check().holds());

    let checkpoint = ws
        .seed_checkpoint(2)
        .expect("a saturated bound-1 set exports as a bound-2 seed");
    let dms = variant(0, false);
    let explorer = Explorer::new(&dms, 2).with_config(scratch_config());
    let seeded =
        explorer.run(CheckRequest::invariant(invariant.clone()).from_checkpoint(checkpoint));

    let (oracle_holds, _) = scratch(&dms, 2, &invariant);
    assert_eq!(seeded.holds(), oracle_holds);

    // a seed below the workspace's own bound is refused
    assert!(ws.seed_checkpoint(0).is_none());
}
