//! End-to-end certificate tests: the explorer emits certificate-carrying verdicts for the
//! paper workloads, the engine-free `rdms-cert` verifier accepts them (after a JSON round
//! trip, i.e. through the wire format alone), and every single-field tampering is rejected.

use proptest::prelude::*;
use rdms::checker::{Explorer, ExplorerConfig};
use rdms::core::cert::{CertVerdict, Certificate};
use rdms::core::Dms;
use rdms::db::{Query, RelName, Term, Var};
use rdms::workloads::random::{random_dms, RandomDmsConfig};
use rdms::workloads::{booking, figure1, inventory};

fn r(name: &str) -> RelName {
    RelName::new(name)
}

fn emitting(depth: usize, max_configs: usize) -> ExplorerConfig {
    ExplorerConfig {
        depth,
        max_configs,
        ..ExplorerConfig::default()
    }
    .with_emit_certificate(true)
}

/// Check the invariant with certificate emission on and return the verdict's certificate
/// after a JSON round trip — so everything downstream exercises the wire format, exactly
/// what an external verifier would consume.
fn certified(dms: &Dms, b: usize, invariant: &Query, depth: usize) -> (bool, Certificate) {
    let verdict = Explorer::new(dms, b)
        .with_config(emitting(depth, 500_000))
        .check_invariant(invariant);
    let cert = verdict
        .certificate()
        .expect("the search must emit a certificate")
        .to_json();
    let cert = Certificate::from_json(&cert).expect("wire round trip");
    (verdict.holds(), cert)
}

// -----------------------------------------------------------------------------------------
// workload acceptance: Safe and Violation certificates for figure1, booking, inventory
// -----------------------------------------------------------------------------------------

#[test]
fn figure1_certificates_verify() {
    // Safe: the permit-capped Example 3.1 saturates; `true` holds everywhere, so the
    // certificate is a closure proof over the entire reachable canonical state space
    let capped = figure1::finite_dms(2);
    let (holds, cert) = certified(&capped, 2, &Query::True, 32);
    assert!(holds);
    assert!(matches!(cert.verdict, CertVerdict::Safe { .. }));
    cert.verify().expect("figure1 Safe certificate");

    // Violation: "p always holds" is refuted by a concrete permit-capped run
    let (holds, cert) = certified(&capped, 2, &Query::prop(r("p")), 32);
    assert!(!holds);
    assert!(matches!(cert.verdict, CertVerdict::Violation { .. }));
    cert.verify().expect("figure1 Violation certificate");
}

#[test]
fn inventory_certificates_verify() {
    let capped = inventory::finite_dms(1, 2);

    // Safe: reserved items are off the shelf, in every reachable state
    let (holds, cert) = certified(
        &capped,
        2,
        &inventory::reserved_items_are_off_the_shelf(),
        32,
    );
    assert!(holds);
    assert!(matches!(cert.verdict, CertVerdict::Safe { .. }));
    cert.verify().expect("inventory Safe certificate");

    // Violation: "nothing is ever shipped" fails (receive, place_order, reserve, ship)
    let (holds, cert) = certified(&capped, 2, &inventory::something_shipped().not(), 32);
    assert!(!holds);
    assert!(matches!(cert.verdict, CertVerdict::Violation { .. }));
    cert.verify().expect("inventory Violation certificate");
}

#[test]
fn booking_certificates_verify() {
    let config = booking::BookingConfig {
        restaurants: 1,
        agents: 1,
        customers: 1,
        gold_k: 1,
    };
    let agency = booking::finite(&config, 2);
    let o = Var::new("o");

    // Safe: an offer is never simultaneously available and on hold
    let exclusive = Query::forall(
        o,
        Query::atom(
            r("OState"),
            [Term::Var(o), Term::Value(agency.states.avail)],
        )
        .and(Query::atom(
            r("OState"),
            [Term::Var(o), Term::Value(agency.states.onhold)],
        ))
        .not(),
    );
    let (holds, cert) = certified(&agency.dms, 2, &exclusive, 48);
    assert!(holds);
    assert!(matches!(cert.verdict, CertVerdict::Safe { .. }));
    cert.verify().expect("booking Safe certificate");

    // Violation: "no offer ever closes" fails (newO1 then closeO)
    let never_closed = Query::forall(
        o,
        Query::atom(
            r("OState"),
            [Term::Var(o), Term::Value(agency.states.closed)],
        )
        .not(),
    );
    let (holds, cert) = certified(&agency.dms, 2, &never_closed, 48);
    assert!(!holds);
    assert!(matches!(cert.verdict, CertVerdict::Violation { .. }));
    cert.verify().expect("booking Violation certificate");
}

// -----------------------------------------------------------------------------------------
// tampering: any single-field mutation must be rejected
// -----------------------------------------------------------------------------------------

fn sample_safe_certificate() -> Certificate {
    let (holds, cert) = certified(&figure1::finite_dms(2), 2, &Query::True, 32);
    assert!(holds);
    cert
}

fn sample_violation_certificate() -> Certificate {
    let (holds, cert) = certified(&figure1::finite_dms(2), 2, &Query::prop(r("p")), 32);
    assert!(!holds);
    cert
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checking a random (permit-capped) DMS with emission on always yields a certificate
    /// the independent verifier accepts — whatever the verdict.
    #[test]
    fn random_dms_certificates_verify(seed in 0u64..64) {
        let dms = random_dms(&RandomDmsConfig { seed: seed % 13, ..Default::default() });
        let capped = rdms::core::transform::permits::cap_fresh(&dms, 1).unwrap();
        let verdict = Explorer::new(&capped, 2)
            .with_config(emitting(24, 200_000))
            .check_invariant(&Query::True);
        prop_assert!(verdict.holds());
        let cert = verdict.certificate().expect("saturating search emits");
        prop_assert!(cert.verify().is_ok(), "{:?}", cert.verify());
        // and through the wire format
        let round = Certificate::from_json(&cert.to_json()).unwrap();
        prop_assert!(round.verify().is_ok());
    }

    /// Single-field mutations of a Safe certificate are all rejected.
    #[test]
    fn tampered_safe_certificates_are_rejected(seed in 0u64..1024, kind in 0u8..6) {
        let mut cert = sample_safe_certificate();
        let CertVerdict::Safe { states, commitment } = &mut cert.verdict else {
            unreachable!("sample is Safe");
        };
        let n = states.len();
        prop_assert!(n > 0, "Safe certificates commit at least the initial state");
        let i = (seed as usize) % n;
        match kind {
            0 => states[i].digest ^= 1 << (seed % 64),
            // dropping a committed state breaks the commitment (or empties the set)
            1 => drop(states.remove(i)),
            2 => *commitment ^= 1 << (seed % 64),
            3 => {
                let succs = &mut states[i].successors;
                if succs.is_empty() {
                    // no successor to flip here: forge one instead
                    succs.push(seed);
                } else {
                    let j = (seed as usize) % succs.len();
                    succs[j] ^= 1 << (seed % 64);
                }
            }
            4 => {
                // claim an extra reachable state that was never committed
                let mut forged = states[i].clone();
                forged.digest ^= 1 << (seed % 64);
                states.push(forged);
            }
            _ => cert.version += 1,
        }
        prop_assert!(cert.verify().is_err(), "tamper kind {kind} must be rejected");
    }

    /// Single-field mutations of a Violation certificate are all rejected.
    ///
    /// Mutations target *parameter* bindings: renaming a fresh value or truncating to a
    /// still-violating prefix would produce a different but equally genuine witness, which
    /// the verifier rightly accepts — those are not tampering in any meaningful sense.
    #[test]
    fn tampered_violation_certificates_are_rejected(seed in 0u64..1024, kind in 0u8..5) {
        let mut cert = sample_violation_certificate();
        let actions = cert.system.actions.clone();
        let CertVerdict::Violation { witness } = &mut cert.verdict else {
            unreachable!("sample is Violation");
        };
        let n = witness.len();
        prop_assert!(n > 0, "the initial state satisfies p, so the witness has steps");
        let i = (seed as usize) % n;
        // a parameter of step i's action, if it has any (fresh-only actions fall back to a
        // version bump, which is always rejected)
        let param = actions
            .get(witness[i].action)
            .and_then(|a| {
                if a.params.is_empty() {
                    None
                } else {
                    Some(a.params[(seed as usize) % a.params.len()].clone())
                }
            });
        match (kind, param) {
            // the empty prefix ends in the initial state, which satisfies p
            (0, _) => witness.truncate(0),
            (1, Some(p)) => {
                // a value far outside the recency window and the declared constants
                witness[i].bindings.insert(p, u64::MAX - 7);
            }
            (2, _) => witness[i].action = usize::MAX,
            (3, Some(p)) => {
                witness[i].bindings.remove(&p);
            }
            _ => cert.version += 1,
        }
        prop_assert!(cert.verify().is_err(), "tamper kind {kind} must be rejected");
    }
}
