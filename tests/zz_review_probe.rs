use rdms::checker::{Explorer, ExplorerConfig, Reuse, Verdict, Workspace};
use rdms::core::dms::example_3_1;
use rdms::db::parser::parse_query;

#[test]
fn probe_complete_flag_on_explored_set_reuse() {
    let depth = 3;
    let dms = example_3_1();
    let inv_a = parse_query("true").unwrap();
    let inv_b = parse_query("!exists u. R(u) & Q(u)").unwrap();

    let mut ws = Workspace::new(dms.clone(), 2, inv_a.clone()).with_depth(depth);
    let first = ws.check();
    let first_complete = matches!(first, Verdict::Holds { complete, .. } if complete);
    println!("first check: holds={}, complete={}", first.holds(), first_complete);

    ws.set_target(inv_b.clone());
    let second = ws.check();
    println!("reuse = {:?}", ws.last_report().reuse);
    let ws_complete = matches!(second, Verdict::Holds { complete, .. } if complete);

    let scratch = Explorer::new(&dms, 2)
        .with_config(ExplorerConfig {
            depth,
            threads: 1,
            ..ExplorerConfig::default()
        })
        .check_invariant(&inv_b);
    let scratch_complete = matches!(scratch, Verdict::Holds { complete, .. } if complete);
    println!(
        "workspace: holds={} complete={} | scratch: holds={} complete={}",
        second.holds(),
        ws_complete,
        scratch.holds(),
        scratch_complete
    );
    assert_eq!(ws.last_report().reuse, Reuse::ExploredSetReused);
    assert_eq!(
        ws_complete, scratch_complete,
        "completeness flag diverges between reuse and scratch"
    );
}
