//! Cooperative cancellation and deadlines, end to end: a [`CancelToken`] stops the
//! explorer's search loops and surfaces as an *honest* verdict (`Holds { complete: false }`,
//! never a claim of exhaustiveness), and a per-check deadline on a service [`Session`]
//! rejects with the stable `deadline-exceeded` code while leaving the session untouched.

use rdms::checker::{Explorer, ExplorerConfig, Verdict};
use rdms::core::dms::example_3_1;
use rdms::core::CancelToken;
use rdms::db::parser::parse_query;
use rdms_serve::{CheckOutcome, Session};
use std::collections::BTreeMap;
use std::time::Duration;

/// A token cancelled before the search starts: the explorer must stop immediately and
/// must NOT report the exploration as complete — cancellation degrades coverage, never
/// soundness.
#[test]
fn a_pre_cancelled_search_is_reported_incomplete() {
    let dms = example_3_1();
    let invariant = parse_query("true").unwrap();
    let cancel = CancelToken::new();
    cancel.cancel();
    let explorer =
        Explorer::new(&dms, 2).with_config(ExplorerConfig::default().with_cancel(cancel));
    match explorer.check_invariant(&invariant) {
        Verdict::Holds { complete, .. } => {
            assert!(
                !complete,
                "a cancelled search must not claim exhaustiveness"
            )
        }
        other => panic!("expected an incomplete Holds, got {other:?}"),
    }
}

/// An already-expired deadline behaves exactly like explicit cancellation.
#[test]
fn an_expired_deadline_is_reported_incomplete() {
    let dms = example_3_1();
    let invariant = parse_query("true").unwrap();
    let explorer =
        Explorer::new(&dms, 2).with_config(ExplorerConfig::default().with_deadline(Duration::ZERO));
    match explorer.check_invariant(&invariant) {
        Verdict::Holds { complete, .. } => assert!(!complete),
        other => panic!("expected an incomplete Holds, got {other:?}"),
    }
}

/// The control: an unfired token must not perturb the search at all — the sequential
/// engine with and without a live token explores the identical space and reaches the
/// identical verdict.
#[test]
fn an_unfired_token_does_not_perturb_the_search() {
    let dms = example_3_1();
    let invariant = parse_query("true").unwrap();
    let config = || ExplorerConfig {
        depth: 3,
        max_configs: 20_000,
        threads: 1,
        ..ExplorerConfig::default()
    };
    let with_token = Explorer::new(&dms, 2).with_config(config().with_cancel(CancelToken::new()));
    let without_token = Explorer::new(&dms, 2).with_config(config());
    match (
        with_token.check_invariant(&invariant),
        without_token.check_invariant(&invariant),
    ) {
        (
            Verdict::Holds {
                complete: c1,
                stats: s1,
                ..
            },
            Verdict::Holds {
                complete: c2,
                stats: s2,
                ..
            },
        ) => {
            assert_eq!(c1, c2, "an unfired token must not cost coverage");
            assert_eq!(s1.configs_explored, s2.configs_explored);
            assert_eq!(s1.prefixes_checked, s2.prefixes_checked);
        }
        (a, b) => panic!("expected two Holds verdicts, got {a:?} / {b:?}"),
    }
}

/// A pre-cancelled search stops before expanding anything: the cost of answering a
/// request whose deadline already passed is O(1), not one more exploration.
#[test]
fn a_pre_cancelled_search_does_no_work() {
    let dms = example_3_1();
    let invariant = parse_query("true").unwrap();
    let cancel = CancelToken::new();
    cancel.cancel();
    let explorer =
        Explorer::new(&dms, 2).with_config(ExplorerConfig::default().with_cancel(cancel));
    match explorer.check_invariant(&invariant) {
        Verdict::Holds { stats, .. } => assert!(
            stats.configs_explored <= 1,
            "a pre-cancelled search expanded {} configurations",
            stats.configs_explored
        ),
        other => panic!("expected Holds, got {other:?}"),
    }
}

/// The service layer: a session whose per-check budget is already spent rejects with the
/// stable `deadline-exceeded` code, and — like every rejection — leaves the session's
/// state exactly as it was (the transaction is not half-applied).
#[test]
fn a_spent_check_budget_rejects_without_applying() {
    let mut session = Session::open(example_3_1(), 2, "true", false)
        .unwrap()
        .with_deadline(Some(Duration::ZERO));
    let bindings = BTreeMap::from([
        ("v1".to_string(), 1u64),
        ("v2".to_string(), 2),
        ("v3".to_string(), 3),
    ]);
    match session.check("alpha", &bindings) {
        CheckOutcome::Rejected { code, .. } => assert_eq!(code.as_str(), "deadline-exceeded"),
        other => panic!("expected deadline-exceeded, got {other:?}"),
    }
    assert_eq!(
        session.transactions(),
        0,
        "the rejected step was not applied"
    );

    // lifting the deadline immediately restores service on the same session
    let mut session = session.with_deadline(None);
    assert!(matches!(
        session.check("alpha", &bindings),
        CheckOutcome::Ok { run_len: 1, .. }
    ));
}
