//! Property-based oracle for checkpoint/resume equivalence: a search cut at an
//! arbitrary point and resumed from its [`SearchCheckpoint`] must reach the same
//! verdict, completeness flag and explored-set statistics as the uninterrupted run.
//!
//! The cut points are genuinely arbitrary: one harness grabs cadence snapshots from a
//! concurrently running search (whichever snapshot the race yields, resuming it must
//! converge to the reference), another cuts deterministically at the start via a
//! pre-fired deadline, and every checkpoint crosses the wire (JSON) before resuming —
//! so the byte-level artifact, not the in-process object, is what the oracle validates.

use proptest::prelude::*;
use rdms::checker::checkpoint::{CheckpointPolicy, SearchCheckpoint};
use rdms::checker::{CheckRequest, CutoffReason, Explorer, ExplorerConfig, Verdict};
use rdms::core::CancelToken;
use rdms::db::{Query, RelName, Var};
use rdms::workloads::random::{random_dms, RandomDmsConfig};

fn config(depth: usize, max_configs: usize) -> ExplorerConfig {
    ExplorerConfig {
        depth,
        max_configs,
        threads: 1,
        ..ExplorerConfig::default()
    }
}

/// The statistics the oracle compares: everything that describes *what* was explored
/// (perf fields like elapsed time and throughput legitimately differ between runs).
fn explored_set(verdict: &Verdict) -> (usize, usize, usize, bool) {
    let stats = verdict.stats();
    (
        stats.prefixes_checked,
        stats.configs_explored,
        stats.configs_deduplicated,
        verdict.holds(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cut at the start (pre-fired deadline): the stop snapshot carries the whole search,
    /// and resuming it must replay the uninterrupted run exactly.
    #[test]
    fn resume_from_a_start_cut_replays_the_full_search(seed in 0u64..64, bound in 1usize..3) {
        let dms = random_dms(&RandomDmsConfig { seed: seed % 13, ..Default::default() });
        // "R0 stays empty" — violated as soon as the bootstrap action fires, so some
        // seeds exercise the Violated path and others the exhaustive Holds path
        let u = Var::new("u");
        let invariant = Query::exists(u, Query::atom(RelName::new("R0"), [u])).not();

        let reference = Explorer::new(&dms, bound)
            .with_config(config(3, 4_000))
            .check_invariant(&invariant);

        let fired = CancelToken::new();
        fired.cancel();
        let policy = CheckpointPolicy::on_stop();
        let cut = Explorer::new(&dms, bound)
            .with_config(config(3, 4_000).with_cancel(fired).with_checkpoint(policy.clone()))
            .check_invariant(&invariant);
        prop_assert_eq!(cut.stats().cutoff, Some(CutoffReason::Cancelled));
        let checkpoint = policy.take().expect("stop snapshot");

        // the artifact must survive the wire before it counts
        let json = checkpoint.to_json();
        let restored = SearchCheckpoint::from_json(&json).expect("portable checkpoint");
        let resumed = Explorer::new(&dms, bound)
            .with_config(config(3, 4_000))
            .run(CheckRequest::invariant(invariant.clone()).from_checkpoint(restored));

        prop_assert_eq!(explored_set(&resumed), explored_set(&reference));
    }

    /// Cut mid-run: while the search runs with a cadence policy, the harness repeatedly
    /// steals whatever snapshot is in the slot. Every stolen snapshot is a consistent
    /// state of the deterministic sequential search, so resuming from *any* of them must
    /// converge to the reference verdict and explored set.
    #[test]
    fn resume_from_an_arbitrary_cadence_cut_converges(
        seed in 0u64..64,
        cadence in 1usize..40,
    ) {
        let dms = random_dms(&RandomDmsConfig { seed: seed % 13, ..Default::default() });
        // a tautology: the search always explores the whole bounded state space, so the
        // resumed run has genuine work left after any cut
        let invariant = Query::True;
        let bound = 2;

        let reference = Explorer::new(&dms, bound)
            .with_config(config(3, 4_000))
            .check_invariant(&invariant);

        let policy = CheckpointPolicy::every(cadence);
        let (full, stolen) = std::thread::scope(|scope| {
            let thief_policy = policy.clone();
            let search = scope.spawn(|| {
                Explorer::new(&dms, bound)
                    .with_config(config(3, 4_000).with_checkpoint(policy.clone()))
                    .check_invariant(&invariant)
            });
            let mut stolen: Option<SearchCheckpoint> = None;
            while !search.is_finished() {
                if let Some(snapshot) = thief_policy.take() {
                    stolen = Some(snapshot);
                }
                std::thread::yield_now();
            }
            let full = search.join().expect("search thread");
            // whichever snapshot was last stolen — or, if the search outran the thief,
            // the final stop snapshot — must resume to the same place
            (full, stolen.or_else(|| thief_policy.take()))
        });
        prop_assert_eq!(explored_set(&full), explored_set(&reference));
        let stolen = stolen.expect("some snapshot");

        let restored =
            SearchCheckpoint::from_json(&stolen.to_json()).expect("portable checkpoint");
        let resumed = Explorer::new(&dms, bound)
            .with_config(config(3, 4_000))
            .run(CheckRequest::invariant(invariant.clone()).from_checkpoint(restored));
        prop_assert_eq!(explored_set(&resumed), explored_set(&reference));
    }

    /// Memory budgets never abort and never fake exhaustiveness, for arbitrary byte-level
    /// budget cut points: sweeping the budget from starved to roomy, every verdict is
    /// honest (`complete` only without a cutoff) and the meter respects the budget.
    #[test]
    fn memory_budgets_are_honest_at_any_byte_level(
        seed in 0u64..64,
        budget in 0usize..20_000,
    ) {
        let dms = random_dms(&RandomDmsConfig { seed: seed % 13, ..Default::default() });
        let verdict = Explorer::new(&dms, 2)
            .with_config(config(3, 4_000).with_memory_budget_bytes(budget))
            .check_invariant(&Query::True);
        let stats = verdict.stats();
        prop_assert!(stats.peak_memory_bytes <= budget);
        match &verdict {
            Verdict::Holds { complete, .. } => {
                if *complete {
                    prop_assert!(!stats.memory_cutoff);
                    prop_assert_eq!(stats.cutoff, None);
                }
                if stats.memory_cutoff {
                    // a memory cutoff is always reported (nothing outranks it here) and
                    // never lets the verdict claim exhaustiveness
                    prop_assert_eq!(stats.cutoff, Some(CutoffReason::Memory));
                    prop_assert!(!*complete);
                }
            }
            Verdict::Violated { .. } => {}
        }
    }
}
