//! End-to-end integration tests reproducing the paper's figures and worked examples
//! (experiment index F1–F10 / T2 in DESIGN.md), spanning every crate of the workspace.

use rdms::checker::{Explorer, ExplorerConfig, RunEncoder};
use rdms::core::counter::{binary_reduction, state_proposition, unary_reduction};
use rdms::core::symbolic;
use rdms::core::transform::{bulk, constants, freshness, injective};
use rdms::core::{ConcreteSemantics, RecencySemantics};
use rdms::db::{Query, RelName, Var};
use rdms::logic::templates;
use rdms::workloads::{booking, counters, enrollment, figure1, warehouse};
use std::collections::BTreeMap;

fn r(name: &str) -> RelName {
    RelName::new(name)
}

/// F1 + F3: the Figure 1 run replays exactly, is 2-recency-bounded (Example 5.1) and its
/// abstraction round-trips through `Concr` (Example 6.1).
#[test]
fn f1_f3_figure_1_run_and_abstraction() {
    let dms = figure1::dms();
    let run = figure1::figure_1_run(&dms, 2);
    assert_eq!(run.len(), 8);
    assert_eq!(RecencySemantics::minimal_bound(&dms, &run), Some(2));

    let word = symbolic::abstraction(&dms, &run).unwrap();
    assert_eq!(word.len(), 8);
    let rebuilt = symbolic::concretize(&dms, 2, &word).unwrap().unwrap();
    assert_eq!(rebuilt.configs(), run.configs());
}

/// F2: the Figure 2 nested-word encoding round-trips and satisfies the nesting laws; its
/// validity is recognised procedurally.
#[test]
fn f2_nested_word_encoding() {
    let dms = figure1::dms();
    let run = figure1::figure_1_run(&dms, 2);
    let encoder = RunEncoder::new(&dms, 2);
    let word = encoder.encode(&run).unwrap();
    assert_eq!(word.len(), 42);
    assert!(word.check_nesting_laws());
    assert!(encoder.is_valid_encoding(&word));
    let decoded = encoder.decode(&word).unwrap();
    assert_eq!(decoded.configs(), run.configs());
}

/// F5: the booking agency drives a full artifact lifecycle and the Gold_k query observes the
/// unbounded history (Example 5.2).
#[test]
fn f5_booking_agency_lifecycle() {
    let agency = booking::build(&booking::BookingConfig::default());
    let dms = &agency.dms;
    let sem = RecencySemantics::new(dms, 4);
    let mut run = rdms::core::ExtendedRun::new(dms.initial_bconfig());
    for name in ["newO1", "newB", "submit", "detProp", "accept2", "confirm"] {
        let (step, next) = sem
            .successors(run.last())
            .unwrap()
            .into_iter()
            .find(|(s, _)| dms.action(s.action).unwrap().name() == name)
            .unwrap();
        run.push(step, next);
    }
    let accepted = run
        .last()
        .instance()
        .relation(r("BState"))
        .filter(|t| t[1] == agency.states.accepted)
        .count();
    assert_eq!(accepted, 1);
}

/// F6 / T1: both Appendix D reductions faithfully simulate counter machines, so propositional
/// reachability inherits their undecidability (the reductions agree with direct simulation on
/// decidable instances).
#[test]
fn f6_counter_machine_reductions_agree() {
    let machine = counters::pump_and_transfer(2);
    let target = machine.num_states - 1;
    let expected = machine.state_reachable(target, 10_000);
    let prop = r(&state_proposition(target));

    let unary = unary_reduction(&machine).unwrap();
    assert_eq!(
        ConcreteSemantics::new(&unary)
            .proposition_reachable(prop, 10_000, 30)
            .unwrap(),
        expected
    );
    let binary = binary_reduction(&machine).unwrap();
    assert!(binary.all_guards_ucq());
    assert_eq!(
        ConcreteSemantics::new(&binary)
            .proposition_reachable(prop, 10_000, 30)
            .unwrap(),
        expected
    );

    // negative instance
    let dead = counters::unreachable_target();
    let unary = unary_reduction(&dead).unwrap();
    assert!(!ConcreteSemantics::new(&unary)
        .proposition_reachable(r(&state_proposition(2)), 1_000, 20)
        .unwrap());
}

/// F7: constant removal produces a bisimilar, constant-free system whose reachable instances
/// expand back to the original ones (Example F.1 is covered in the unit tests; here a small
/// tagging system goes through the public API end to end).
#[test]
fn f7_constant_removal_end_to_end() {
    use rdms::core::{ActionBuilder, DmsBuilder};
    use rdms::db::{DataValue, Instance, Pattern, Term};

    let tag = DataValue::e(77);
    let mut initial = Instance::new();
    initial.insert(r("Mark"), vec![tag]);
    let dms = DmsBuilder::new()
        .relation("Mark", 1)
        .relation("Item", 2)
        .initial(initial)
        .constants([tag])
        .action(
            ActionBuilder::new("attach")
                .fresh([Var::new("x")])
                .guard(Query::atom(r("Mark"), [Term::Var(Var::new("m"))]))
                .add(Pattern::from_facts([(
                    r("Item"),
                    vec![Term::Var(Var::new("x")), Term::Var(Var::new("m"))],
                )])),
        )
        .build()
        .unwrap();

    let (compacted, removal) = constants::remove_constants(&dms).unwrap();
    assert!(!compacted.has_constants());
    assert!(compacted.initial().active_domain().is_empty());
    assert_eq!(&removal.expand_instance(compacted.initial()), dms.initial());

    // the reachable instances of both systems coincide up to isomorphism after expansion
    let orig: Vec<_> = ConcreteSemantics::new(&dms)
        .reachable_configs(50, 2)
        .unwrap();
    let comp: Vec<_> = ConcreteSemantics::new(&compacted)
        .reachable_configs(50, 2)
        .unwrap();
    assert_eq!(orig.len(), comp.len());
    for c in &comp {
        let expanded = removal.expand_instance(&c.instance);
        assert!(orig
            .iter()
            .any(|o| rdms::core::iso::instances_isomorphic(&o.instance, &expanded)));
    }
}

/// F8: the non-injective-input expansion enumerates one action per partition of the fresh
/// variables, and the expanded system still runs.
#[test]
fn f8_injective_expansion_runs() {
    let dms = figure1::dms();
    let expanded = injective::expand_dms(&dms).unwrap();
    assert_eq!(expanded.num_actions(), 5 + 2 + 1 + 1);
    let sem = ConcreteSemantics::new(&expanded);
    // the coarsest α variant inserts two equal fresh values collapsed to one
    let succs = sem.successors(&expanded.initial_config()).unwrap();
    assert!(succs.len() >= 5);
}

/// F9: weakening freshness lets inputs rebind history values; `Hist` tracks the history.
#[test]
fn f9_weakened_freshness() {
    let dms = enrollment::dms();
    let arbitrary = BTreeMap::from([("enroll".to_owned(), vec![Var::new("s")])]);
    let weakened = freshness::weaken_freshness(&dms, &arbitrary).unwrap();
    assert!(weakened.schema().contains(r("Hist")));
    assert_eq!(weakened.num_actions(), dms.num_actions() + 1);
}

/// F10: the compiled bulk protocol reaches the same result as the direct bulk semantics
/// (warehouse workload; detailed comparison is in the bulk module's unit tests).
#[test]
fn f10_bulk_compilation() {
    let (compiled, rels) = warehouse::compiled_dms(3).unwrap();
    assert_eq!(compiled.num_actions(), 8);
    assert!(rels.is_quiescent(compiled.initial()));
    // the direct semantics moves every product at once
    let base = warehouse::base_dms(3);
    let sem = ConcreteSemantics::new(&base);
    let (_, stocked) = sem.successors(&base.initial_config()).unwrap().remove(0);
    let next = bulk::apply_bulk(
        &stocked,
        &warehouse::new_order_bulk(),
        &[rdms::db::DataValue::e(900)],
    )
    .unwrap()
    .unwrap();
    assert_eq!(next.instance.relation_size(r("InOrder")), 3);
}

/// T2: the end-to-end pipeline of Theorem 5.1 on a propositional property — encode runs,
/// translate the specification, evaluate on the encoding — agrees with the explorer engine
/// and with direct MSO-FO evaluation.
#[test]
fn t2_reduction_pipeline_cross_validation() {
    let dms = figure1::dms();
    let hybrid = rdms::checker::hybrid::HybridChecker::new(&dms, 2, 2);
    // cross-validate ⌊ψ⌋ on every ≤2-step prefix for two propositional properties
    assert!(hybrid.cross_validate(&templates::never(r("p"))) >= 5);
    assert!(hybrid.cross_validate(&templates::proposition_reachable(r("p"))) >= 5);

    // the engines agree on the verdicts
    let hybrid3 = rdms::checker::hybrid::HybridChecker::new(&dms, 2, 3);
    let explorer = Explorer::new(&dms, 2).with_config(ExplorerConfig {
        depth: 2,
        max_configs: 5_000,
        ..Default::default()
    });
    for property in [
        templates::never(r("p")),
        templates::invariant(Query::prop(r("p"))),
    ] {
        assert_eq!(
            hybrid3.check(&property).holds(),
            explorer.check(&property).holds()
        );
    }
}

/// E1 (shape): the set of verified behaviours grows with the recency bound on both the
/// running example and the enrollment workload.
#[test]
fn e1_recency_sweep_is_monotone() {
    for dms in [figure1::dms(), enrollment::dms()] {
        let mut counts = Vec::new();
        for b in 1..=3 {
            let explorer = Explorer::new(&dms, b).with_config(ExplorerConfig {
                depth: 3,
                max_configs: 20_000,
                ..Default::default()
            });
            counts.push(explorer.reachable_state_count().0);
        }
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }
}

/// The introduction's student/graduation property, checked end to end on the enrollment
/// workload: violated with dropouts, and a witness run satisfying it exists as well.
#[test]
fn introduction_student_property() {
    let dms = enrollment::dms();
    let explorer = Explorer::new(&dms, 2).with_config(ExplorerConfig {
        depth: 4,
        max_configs: 20_000,
        ..Default::default()
    });
    let property = enrollment::graduation_property();
    let verdict = explorer.check(&property);
    assert!(!verdict.holds(), "a dropout refutes the property");

    let (witness, _) = explorer.find_witness(&property);
    assert!(witness.is_some(), "some prefix satisfies the property");
}
