//! Property-based tests (proptest) over the core invariants of the framework:
//! instance algebra, abstraction/concretisation round trips, encoding validity, VPA
//! operations against membership oracles, and query evaluation consistency.

use proptest::prelude::*;
use rdms::checker::RunEncoder;
use rdms::core::symbolic;
use rdms::core::RecencySemantics;
use rdms::db::{answers, eval, DataValue, Instance, Query, RelName, Substitution, Var};
use rdms::nested::{Alphabet, LetterKind, NestedWord, Vpa};
use rdms::workloads::random::{random_dms, random_run, RandomDmsConfig};
use std::sync::Arc;

fn r(name: &str) -> RelName {
    RelName::new(name)
}

// -----------------------------------------------------------------------------------------
// instance algebra
// -----------------------------------------------------------------------------------------

fn arb_instance(max_values: u64) -> impl Strategy<Value = Instance> {
    proptest::collection::vec((0u8..3, 1..=max_values, 1..=max_values), 0..12).prop_map(|facts| {
        let mut instance = Instance::new();
        for (rel, a, b) in facts {
            match rel {
                0 => instance.insert(r("P"), vec![DataValue(a)]),
                1 => instance.insert(r("Q"), vec![DataValue(a)]),
                _ => instance.insert(r("S"), vec![DataValue(a), DataValue(b)]),
            };
        }
        instance
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `+` and `−` behave like relation-wise union and difference (Section 2).
    #[test]
    fn instance_algebra_laws(a in arb_instance(6), b in arb_instance(6)) {
        let union = a.union(&b);
        // union contains both operands
        for (rel, tuple) in a.facts().chain(b.facts()) {
            prop_assert!(union.contains(rel, tuple));
        }
        // difference removes exactly the facts of b
        let diff = a.difference(&b);
        for (rel, tuple) in a.facts() {
            prop_assert_eq!(diff.contains(rel, tuple), !b.contains(rel, tuple));
        }
        // (a − b) + b ⊇ a
        let back = diff.union(&b);
        for (rel, tuple) in a.facts() {
            prop_assert!(back.contains(rel, tuple));
        }
        // the active domain of the union is the union of active domains
        let adom: std::collections::BTreeSet<_> =
            a.active_domain().union(&b.active_domain()).copied().collect();
        prop_assert_eq!(union.active_domain(), adom);
    }

    /// `Active(u)` characterises the active domain (Example 2.1) and answer enumeration
    /// agrees with per-substitution evaluation.
    #[test]
    fn active_query_and_answers_agree(instance in arb_instance(6)) {
        let schema = rdms::db::Schema::with_relations(&[("P", 1), ("Q", 1), ("S", 2)]);
        let u = Var::new("u");
        let active = rdms::db::query::active_query(&schema, u);
        let ans = answers(&instance, &active).unwrap();
        let values: std::collections::BTreeSet<_> = ans.iter().map(|s| s.get(u).unwrap()).collect();
        prop_assert_eq!(values, instance.active_domain());

        // spot-check `answers` against `holds` on a joined query
        let q = Query::atom(r("P"), [u]).and(Query::atom(r("Q"), [u]).not());
        let ans: std::collections::BTreeSet<_> = answers(&instance, &q).unwrap().into_iter().collect();
        for value in instance.active_domain() {
            let sub = Substitution::from_pairs([(u, value)]);
            prop_assert_eq!(ans.contains(&sub), eval::holds(&instance, &sub, &q).unwrap());
        }
    }
}

// -----------------------------------------------------------------------------------------
// the sorted-row answer representation against the set-of-substitutions model
// -----------------------------------------------------------------------------------------

/// Build a random FOL(R) query from a vector of opcodes with a small stack machine. The
/// queries mix atoms (with repeated variables and constants), equalities, negation,
/// conjunction, disjunction and both quantifiers over three variables.
fn build_query(ops: &[(u8, u8, u64)]) -> Query {
    let vars = [Var::new("u"), Var::new("w"), Var::new("z")];
    let mut stack: Vec<Query> = Vec::new();
    for &(op, sel, val) in ops {
        let var = vars[sel as usize % vars.len()];
        let other = vars[(sel as usize + 1) % vars.len()];
        match op % 10 {
            0 => stack.push(Query::atom(r("P"), [var])),
            1 => stack.push(Query::atom(r("Q"), [var])),
            2 => stack.push(Query::atom(r("S"), [var, other])),
            // an atom with a constant column, and one with a repeated variable
            3 => stack.push(Query::atom(
                r("S"),
                [
                    rdms::db::Term::Value(DataValue(val)),
                    rdms::db::Term::Var(var),
                ],
            )),
            4 => stack.push(Query::atom(r("S"), [var, var])),
            5 => stack.push(Query::eq(var, DataValue(val))),
            6 => {
                if let Some(q) = stack.pop() {
                    stack.push(q.not());
                }
            }
            7 => {
                if let (Some(b), Some(a)) = (stack.pop(), stack.pop()) {
                    stack.push(if val % 2 == 0 { a.and(b) } else { a.or(b) });
                }
            }
            8 => {
                if let Some(q) = stack.pop() {
                    stack.push(Query::exists(var, q));
                }
            }
            _ => {
                if let Some(q) = stack.pop() {
                    stack.push(Query::forall(var, q));
                }
            }
        }
    }
    stack.into_iter().reduce(Query::and).unwrap_or(Query::True)
}

/// The previous answer-enumeration model: a `BTreeSet<Substitution>` per query node, with
/// substitution-level join/cylindrification/complement. The row-based evaluator in
/// `rdms-db` must reproduce its results **exactly, including the answer order** (the
/// explorer's legacy successor order depends on it).
mod substitution_model {
    use super::*;
    use rdms::db::Term;
    use std::collections::BTreeSet;

    pub fn answers(instance: &Instance, query: &Query) -> Vec<Substitution> {
        let adom = instance.active_domain();
        let mut universe = adom.clone();
        universe.extend(query.constants());
        let rows = eval_set(instance, &universe, query);
        let free: Vec<Var> = query.free_vars().into_iter().collect();
        rows.into_iter()
            .map(|s| s.restrict(free.iter()))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    fn eval_set(
        instance: &Instance,
        universe: &BTreeSet<DataValue>,
        query: &Query,
    ) -> BTreeSet<Substitution> {
        match query {
            Query::True => BTreeSet::from([Substitution::empty()]),
            Query::Atom(rel, terms) => {
                let mut rows = BTreeSet::new();
                for tuple in instance.relation(*rel) {
                    if let Some(sub) = unify(terms, tuple) {
                        rows.insert(sub);
                    }
                }
                rows
            }
            Query::Eq(a, b) => {
                let mut rows = BTreeSet::new();
                match (a, b) {
                    (Term::Value(x), Term::Value(y)) => {
                        if x == y {
                            rows.insert(Substitution::empty());
                        }
                    }
                    (Term::Var(v), Term::Value(c)) | (Term::Value(c), Term::Var(v)) => {
                        rows.insert(Substitution::from_pairs([(*v, *c)]));
                    }
                    (Term::Var(v), Term::Var(w)) => {
                        for &e in universe {
                            rows.insert(Substitution::from_pairs([(*v, e), (*w, e)]));
                        }
                    }
                }
                rows
            }
            Query::And(a, b) => {
                let left = eval_set(instance, universe, a);
                let right = eval_set(instance, universe, b);
                let mut rows = BTreeSet::new();
                for l in &left {
                    for r in &right {
                        if l.compatible(r) {
                            rows.insert(l.merged(r));
                        }
                    }
                }
                rows
            }
            Query::Or(a, b) => {
                let free: BTreeSet<Var> = query.free_vars();
                let left = cylindrify(
                    eval_set(instance, universe, a),
                    &a.free_vars(),
                    &free,
                    universe,
                );
                let right = cylindrify(
                    eval_set(instance, universe, b),
                    &b.free_vars(),
                    &free,
                    universe,
                );
                left.union(&right).cloned().collect()
            }
            Query::Not(q) => {
                let free: Vec<Var> = q.free_vars().into_iter().collect();
                let positive = eval_set(instance, universe, q);
                enumerate(universe, &free)
                    .into_iter()
                    .filter(|cand| !positive.contains(cand))
                    .collect()
            }
            Query::Exists(v, q) => {
                if !q.free_vars().contains(v) && universe.is_empty() {
                    return BTreeSet::new();
                }
                let keep: Vec<Var> = q.free_vars().into_iter().filter(|x| x != v).collect();
                eval_set(instance, universe, q)
                    .into_iter()
                    .map(|s| s.restrict(keep.iter()))
                    .collect()
            }
            Query::Forall(v, q) => {
                if !q.free_vars().contains(v) {
                    if universe.is_empty() {
                        return enumerate(universe, &q.free_vars().into_iter().collect::<Vec<_>>())
                            .into_iter()
                            .collect();
                    }
                    return eval_set(instance, universe, q);
                }
                let inner = eval_set(instance, universe, q);
                let outer: Vec<Var> = q.free_vars().into_iter().filter(|x| x != v).collect();
                enumerate(universe, &outer)
                    .into_iter()
                    .filter(|cand| {
                        universe
                            .iter()
                            .all(|&e| inner.contains(&cand.extended(*v, e)))
                    })
                    .collect()
            }
        }
    }

    fn unify(terms: &[Term], tuple: &[DataValue]) -> Option<Substitution> {
        if terms.len() != tuple.len() {
            return None;
        }
        let mut sub = Substitution::empty();
        for (term, &value) in terms.iter().zip(tuple.iter()) {
            match term {
                Term::Value(c) => {
                    if *c != value {
                        return None;
                    }
                }
                Term::Var(v) => match sub.get(*v) {
                    Some(prev) if prev != value => return None,
                    _ => {
                        sub.bind(*v, value);
                    }
                },
            }
        }
        Some(sub)
    }

    fn cylindrify(
        rows: BTreeSet<Substitution>,
        from: &BTreeSet<Var>,
        to: &BTreeSet<Var>,
        universe: &BTreeSet<DataValue>,
    ) -> BTreeSet<Substitution> {
        let missing: Vec<Var> = to.difference(from).copied().collect();
        if missing.is_empty() {
            return rows;
        }
        let mut out = BTreeSet::new();
        for row in rows {
            for extension in enumerate(universe, &missing) {
                out.insert(row.merged(&extension));
            }
        }
        out
    }

    fn enumerate(universe: &BTreeSet<DataValue>, vars: &[Var]) -> Vec<Substitution> {
        let mut result = vec![Substitution::empty()];
        for &v in vars {
            let mut next = Vec::with_capacity(result.len() * universe.len().max(1));
            for base in &result {
                for &e in universe {
                    next.push(base.extended(v, e));
                }
            }
            result = next;
        }
        result
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sorted-row evaluator reproduces the set-of-substitutions model **exactly,
    /// including the answer order**, on random queries over random instances.
    #[test]
    fn row_answers_match_the_substitution_model(
        instance in arb_instance(5),
        ops in proptest::collection::vec((0u8..10, 0u8..3, 1u64..6), 1..10)
    ) {
        let query = build_query(&ops);
        let fast = answers(&instance, &query).unwrap();
        let model = substitution_model::answers(&instance, &query);
        prop_assert_eq!(&fast, &model, "query {} on {}", query, instance);

        // and both agree with per-substitution evaluation on every answer
        for sub in &fast {
            prop_assert!(eval::holds(&instance, sub, &query).unwrap(), "answer {:?} of {}", sub, query);
        }
    }
}

// -----------------------------------------------------------------------------------------
// the copy-on-write representation against plain value semantics
// -----------------------------------------------------------------------------------------

type Model = std::collections::BTreeMap<RelName, std::collections::BTreeSet<Vec<DataValue>>>;

/// Assert that a COW instance holds exactly the model's facts, in the model's order, and
/// that it is `Eq`/`Ord`/`Hash`-identical to an instance rebuilt from scratch (no sharing).
fn assert_matches_model(instance: &Instance, model: &Model) {
    let instance_facts: Vec<(RelName, Vec<DataValue>)> = instance
        .facts()
        .map(|(rel, tuple)| (rel, tuple.clone()))
        .collect();
    let model_facts: Vec<(RelName, Vec<DataValue>)> = model
        .iter()
        .flat_map(|(&rel, tuples)| tuples.iter().map(move |t| (rel, t.clone())))
        .collect();
    assert_eq!(instance_facts, model_facts, "fact sets or orders diverge");

    let rebuilt = Instance::from_facts(model_facts);
    assert_eq!(instance, &rebuilt);
    assert_eq!(
        instance.cmp(&rebuilt),
        std::cmp::Ordering::Equal,
        "Ord must ignore sharing"
    );
    use std::hash::{Hash, Hasher};
    let hash_of = |i: &Instance| {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        i.hash(&mut h);
        h.finish()
    };
    assert_eq!(
        hash_of(instance),
        hash_of(&rebuilt),
        "Hash must ignore sharing"
    );
    assert_eq!(instance.len(), rebuilt.len());
    assert_eq!(instance.active_domain(), rebuilt.active_domain());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random interleavings of inserts, removals, unions, differences and clones leave the
    /// COW instance observably identical to a plain `BTreeMap<RelName, BTreeSet<Tuple>>`,
    /// including on snapshots taken mid-sequence (which keep sharing storage with an
    /// instance that is mutated afterwards).
    #[test]
    fn cow_instance_matches_value_semantics(
        ops in proptest::collection::vec((0u8..6, 0u8..3, 1u64..6, 1u64..6), 0..48)
    ) {
        let rels = [r("P"), r("Q"), r("S")];
        let mut instance = Instance::new();
        let mut model = Model::new();
        let mut snapshots: Vec<(Instance, Model)> = Vec::new();
        for (op, rel_index, a, b) in ops {
            let rel = rels[rel_index as usize];
            let tuple = if rel_index == 2 {
                vec![DataValue(a), DataValue(b)]
            } else {
                vec![DataValue(a)]
            };
            // warm the lazy caches before every operation, so a mutation that failed to
            // invalidate them would surface in the model comparisons below
            let _ = instance.is_active(DataValue(a));
            let _ = instance.relation_with_first(rel, DataValue(a)).count();
            let _ = instance.column_values(rel, 0);
            match op {
                0 | 1 => {
                    let fresh_cow = instance.insert(rel, tuple.clone());
                    let fresh_model = model.entry(rel).or_default().insert(tuple);
                    prop_assert_eq!(fresh_cow, fresh_model);
                }
                2 => {
                    let removed_cow = instance.remove(rel, &tuple);
                    let removed_model = model.get_mut(&rel).is_some_and(|s| s.remove(&tuple));
                    if model.get(&rel).is_some_and(|s| s.is_empty()) {
                        model.remove(&rel);
                    }
                    prop_assert_eq!(removed_cow, removed_model);
                }
                3 => {
                    let other = Instance::from_facts([(rel, tuple.clone())]);
                    instance = instance.union(&other);
                    model.entry(rel).or_default().insert(tuple);
                }
                4 => {
                    let other = Instance::from_facts([(rel, tuple.clone())]);
                    instance = instance.difference(&other);
                    if let Some(s) = model.get_mut(&rel) {
                        s.remove(&tuple);
                        if s.is_empty() {
                            model.remove(&rel);
                        }
                    }
                }
                _ => snapshots.push((instance.clone(), model.clone())),
            }
        }
        assert_matches_model(&instance, &model);
        // snapshots share storage with the mutated instance; value semantics must hold anyway
        for (snapshot, model_at_snapshot) in &snapshots {
            assert_matches_model(snapshot, model_at_snapshot);
        }
    }

    /// The incremental canonical key (per-relation cached relabelling) equals from-scratch
    /// canonicalisation on every configuration of random b-bounded runs, and recomputing a
    /// key (cache-warm path) is stable.
    #[test]
    fn incremental_canonical_keys_match_scratch(seed in 0u64..2_000, b in 1usize..4, steps in 0usize..7) {
        use rdms::core::iso::canonical_config_key;
        let dms = random_dms(&RandomDmsConfig { seed: seed % 13, ..Default::default() });
        let run = random_run(&dms, b, steps, seed);
        let constants = dms.constants();
        for config in run.configs() {
            let key = canonical_config_key(config, constants);
            // the from-scratch reference: same rank mapping, uncached relabelling
            let mut mapping = std::collections::BTreeMap::new();
            const RANK_BASE: u64 = u64::MAX / 2;
            for (rank, value) in config
                .adom_by_recency()
                .into_iter()
                .filter(|v| !constants.contains(v))
                .enumerate()
            {
                mapping.insert(value, DataValue(RANK_BASE + rank as u64));
            }
            let scratch = config.instance().map_values(|v| mapping.get(&v).copied().unwrap_or(v));
            prop_assert_eq!(&key, &scratch, "incremental key diverges from scratch canonicalisation");
            let again = canonical_config_key(config, constants);
            prop_assert_eq!(&again, &scratch, "cache-warm recomputation diverges");
        }
    }
}

// -----------------------------------------------------------------------------------------
// the persistent history / sequence numbering against plain value semantics
// -----------------------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleavings of inserts and clones leave the persistent `History`
    /// observably identical to a plain `BTreeSet<DataValue>`, including on snapshots taken
    /// mid-sequence (which keep sharing tree structure with a history that grows
    /// afterwards), and `Eq`/`Ord`/`Hash` ignore the tree shape.
    #[test]
    fn persistent_history_matches_btreeset_semantics(
        ops in proptest::collection::vec((0u8..4, 1u64..48), 0..64)
    ) {
        use rdms::core::History;
        use serde::Deserialize;
        use std::collections::BTreeSet;

        let mut history = History::new();
        let mut model: BTreeSet<DataValue> = BTreeSet::new();
        let mut snapshots: Vec<(History, BTreeSet<DataValue>)> = Vec::new();
        for (op, raw) in ops {
            let value = DataValue(raw);
            match op {
                0 | 1 => {
                    prop_assert_eq!(history.insert(value), model.insert(value));
                }
                2 => {
                    prop_assert_eq!(history.contains(&value), model.contains(&value));
                    prop_assert_eq!(history.max_value(), model.last().copied());
                }
                _ => snapshots.push((history.clone(), model.clone())),
            }
        }
        snapshots.push((history, model));
        for (history, model) in &snapshots {
            prop_assert_eq!(history.len(), model.len());
            prop_assert!(history.iter().eq(model.iter().copied()), "iteration order diverges");
            prop_assert_eq!(history.max_value(), model.last().copied());
            prop_assert!(history == model, "History/BTreeSet equality bridge");

            // a history rebuilt from scratch (different tree shape) is Eq/Ord/Hash-equal
            let rebuilt: History = model.iter().copied().collect();
            prop_assert!(history == &rebuilt);
            prop_assert_eq!(history.cmp(&rebuilt), std::cmp::Ordering::Equal);
            use std::hash::{Hash, Hasher};
            let hash_of = |h: &History| {
                let mut hasher = std::collections::hash_map::DefaultHasher::new();
                h.hash(&mut hasher);
                hasher.finish()
            };
            prop_assert_eq!(hash_of(history), hash_of(&rebuilt), "Hash must ignore tree shape");

            // the serde wire format is exactly the BTreeSet one
            let via_history = serde::value::to_value(history).unwrap();
            let via_set = serde::value::to_value(model).unwrap();
            prop_assert_eq!(&via_history, &via_set, "wire format diverges from BTreeSet");
            prop_assert!(&History::deserialize(via_history).unwrap() == history);
        }
        // pairwise ordering agrees with the model ordering
        for (ha, ma) in &snapshots {
            for (hb, mb) in &snapshots {
                prop_assert_eq!(ha.cmp(hb), ma.cmp(mb), "Ord diverges from BTreeSet");
            }
        }
    }

    /// Random assignment sequences leave the persistent `SeqNo` observably identical to a
    /// plain `BTreeMap<DataValue, u64>` (lookups, iteration, max tracking, ordering), with
    /// snapshots sharing structure across later assignments.
    #[test]
    fn persistent_seqno_matches_btreemap_semantics(
        ops in proptest::collection::vec((0u8..4, 1u64..32), 0..48)
    ) {
        use rdms::core::SeqNo;
        use serde::Deserialize;
        use std::collections::BTreeMap;

        let mut seq = SeqNo::empty();
        let mut model: BTreeMap<DataValue, u64> = BTreeMap::new();
        let mut snapshots: Vec<(SeqNo, BTreeMap<DataValue, u64>)> = Vec::new();
        for (op, raw) in ops {
            let value = DataValue(raw);
            match op {
                0 | 1 => {
                    // fresh assignment through the hot-path API
                    match model.entry(value) {
                        std::collections::btree_map::Entry::Vacant(slot) => {
                            let used = seq.assign_fresh([value]);
                            prop_assert_eq!(used.len(), 1);
                            slot.insert(used[0]);
                        }
                        std::collections::btree_map::Entry::Occupied(slot) => {
                            // re-assigning the same number is the documented no-op
                            seq.assign(value, *slot.get());
                        }
                    }
                }
                2 => {
                    prop_assert_eq!(seq.get(value), model.get(&value).copied());
                    prop_assert_eq!(seq.contains(value), model.contains_key(&value));
                    prop_assert_eq!(seq.max_seq(), model.values().copied().max());
                }
                _ => snapshots.push((seq.clone(), model.clone())),
            }
        }
        snapshots.push((seq, model));
        for (seq, model) in &snapshots {
            prop_assert_eq!(seq.len(), model.len());
            prop_assert!(seq.iter().eq(model.iter().map(|(&v, &n)| (v, n))), "iteration diverges");
            prop_assert_eq!(seq.max_seq(), model.values().copied().max(), "tracked max diverges");
            // serde round trip restores contents and the tracked max
            let value = serde::value::to_value(seq).unwrap();
            let back = SeqNo::deserialize(value).unwrap();
            prop_assert!(&back == seq);
            prop_assert_eq!(back.max_seq(), seq.max_seq());
        }
        for (sa, ma) in &snapshots {
            for (sb, mb) in &snapshots {
                prop_assert_eq!(
                    sa.cmp(sb),
                    ma.iter().cmp(mb.iter()),
                    "Ord diverges from BTreeMap"
                );
            }
        }
    }

    /// After arbitrary successor chains, every configuration's cached recency ranks equal a
    /// from-scratch stable sort of the active domain by descending sequence number — and
    /// `recency_index`/`value_at_recency`/`recent_b` are consistent with that order.
    #[test]
    fn cached_recency_ranks_match_scratch_sort(seed in 0u64..2_000, b in 1usize..4, steps in 0usize..7) {
        let dms = random_dms(&RandomDmsConfig { seed: seed % 13, ..Default::default() });
        let run = random_run(&dms, b, steps, seed);
        for config in run.configs() {
            // from-scratch reference: ascending adom, stably sorted by descending seq_no
            // (unnumbered values — declared constants — last, among themselves ascending)
            let mut scratch: Vec<DataValue> =
                config.instance().active_domain().into_iter().collect();
            scratch.sort_by_key(|&v| {
                std::cmp::Reverse(config.seq_no().get(v).map(|n| n as i64).unwrap_or(-1))
            });
            prop_assert_eq!(&config.adom_by_recency(), &scratch, "cached ranks diverge");
            // a clone shares the cache; re-reading must be stable
            let clone = config.clone();
            prop_assert_eq!(&clone.adom_by_recency(), &scratch);

            for (position, &value) in scratch.iter().enumerate() {
                prop_assert_eq!(clone.value_at_recency(position), Some(value));
                let expected_index = scratch
                    .iter()
                    .filter(|&&other| {
                        config.seq_no().get(other).map(|n| n as i64).unwrap_or(-1)
                            > config.seq_no().get(value).map(|n| n as i64).unwrap_or(-1)
                    })
                    .count();
                prop_assert_eq!(config.recency_index(value), Some(expected_index));
            }
            let window = rdms::core::recent_b(config, b);
            let expected: std::collections::BTreeSet<DataValue> =
                scratch.iter().copied().take(b).collect();
            prop_assert_eq!(window, expected, "Recent_b diverges from the rank prefix");
        }
    }
}

// -----------------------------------------------------------------------------------------
// runs, abstraction and encodings on randomly generated DMSs
// -----------------------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random b-bounded runs abstract and concretise consistently, and their nested-word
    /// encodings are valid and decode to isomorphic runs (Lemma E.1 + Section 6.3).
    #[test]
    fn abstraction_and_encoding_round_trip(seed in 0u64..500, b in 2usize..4, steps in 0usize..7) {
        let dms = random_dms(&RandomDmsConfig { seed: seed % 7, ..Default::default() });
        let run = random_run(&dms, b, steps, seed);
        prop_assert!(RecencySemantics::new(&dms, b).is_b_bounded(&run));

        // Abstr / Concr
        let word = symbolic::abstraction(&dms, &run).expect("run is b-bounded");
        let canonical = symbolic::concretize(&dms, b, &word).unwrap().expect("valid abstraction");
        prop_assert_eq!(symbolic::abstraction(&dms, &canonical).unwrap(), word);
        prop_assert!(rdms::core::iso::runs_isomorphic(&canonical, &run));

        // nested-word encoding
        let encoder = RunEncoder::new(&dms, b);
        let encoded = encoder.encode(&run).expect("encodable");
        prop_assert!(encoded.check_nesting_laws());
        let decoded = encoder.decode(&encoded).expect("valid encoding");
        prop_assert!(rdms::core::iso::runs_isomorphic(&decoded, &run));

        // Remark 6.1: pending pushes before the last block equal |adom| before it
        if !run.is_empty() {
            let last_head = (0..encoded.len()).rfind(|&p| encoder.alphabet().symbolic(encoded.letter(p)).is_some())
                .unwrap();
            prop_assert_eq!(
                encoded.pending_calls_in_prefix(last_head).len(),
                run.configs()[run.len() - 1].instance().active_domain().len()
            );
        }
    }
}

// -----------------------------------------------------------------------------------------
// VPA operations against membership oracles
// -----------------------------------------------------------------------------------------

fn small_alphabet() -> Arc<Alphabet> {
    let mut a = Alphabet::new();
    a.call("<");
    a.ret(">");
    a.internal("x");
    a.internal("y");
    a.into_arc()
}

fn arb_word(alphabet: Arc<Alphabet>) -> impl Strategy<Value = NestedWord> {
    proptest::collection::vec(0u32..4, 0..10).prop_map(move |ids| {
        NestedWord::new(
            alphabet.clone(),
            ids.into_iter().map(rdms::nested::LetterId).collect(),
        )
    })
}

/// An automaton accepting words that contain the internal letter `x` at nesting depth ≥ 1
/// (inside at least one pending-or-matched call).
fn x_under_call(alphabet: Arc<Alphabet>) -> Vpa {
    let lt = alphabet.lookup("<").unwrap();
    let x = alphabet.lookup("x").unwrap();
    let mut vpa = Vpa::new(alphabet, 3, 1);
    vpa.set_initial(0);
    vpa.set_final(2);
    vpa.add_all_letter_loops(0, 0);
    vpa.add_all_letter_loops(2, 0);
    vpa.add_call(0, lt, 1, 0);
    vpa.add_all_letter_loops(1, 0);
    vpa.add_internal(1, x, 2);
    vpa
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Determinization, complementation, union and intersection agree with the
    /// nondeterministic membership oracle on random words.
    #[test]
    fn vpa_operations_respect_membership(word in arb_word(small_alphabet())) {
        let alphabet = word.alphabet().clone();
        let a = x_under_call(alphabet.clone());
        let b = Vpa::universal(alphabet.clone());

        let det = rdms::nested::vpa::determinize::determinize(&a);
        prop_assert_eq!(det.accepts(&word), a.accepts(&word));

        let comp = rdms::nested::vpa::determinize::complement(&a);
        prop_assert_eq!(comp.accepts(&word), !a.accepts(&word));

        let inter = rdms::nested::vpa::ops::intersect(&a, &b);
        prop_assert_eq!(inter.accepts(&word), a.accepts(&word));

        let uni = rdms::nested::vpa::ops::union(&a, &comp);
        prop_assert!(uni.accepts(&word));

        let trimmed = rdms::nested::vpa::ops::trim(&a);
        prop_assert_eq!(trimmed.accepts(&word), a.accepts(&word));
    }

    /// Nesting laws hold for every word (the relation is computed by construction) and
    /// prefixes preserve them.
    #[test]
    fn nesting_laws_hold(word in arb_word(small_alphabet()), cut in 0usize..10) {
        prop_assert!(word.check_nesting_laws());
        prop_assert!(word.prefix(cut).check_nesting_laws());
        // matched pairs are call/return and ordered
        for (i, j) in word.nesting_edges() {
            prop_assert!(i < j);
            prop_assert_eq!(word.kind(i), LetterKind::Call);
            prop_assert_eq!(word.kind(j), LetterKind::Return);
        }
    }
}

// -----------------------------------------------------------------------------------------
// MSO_NW compilation against direct evaluation
// -----------------------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The compiled VPA of a fixed small sentence agrees with direct evaluation on random
    /// words (the per-formula constructions are covered by unit tests; this checks the
    /// pipeline end to end on arbitrary inputs).
    #[test]
    fn mso_compilation_agrees_with_direct_evaluation(word in arb_word(small_alphabet())) {
        use rdms::nested::mso::{MsoNw, PosVar};
        let alphabet = word.alphabet().clone();
        let x_letter = alphabet.lookup("x").unwrap();
        let c = PosVar(0);
        let ret = PosVar(1);
        let p = PosVar(2);
        // "some matched call contains an x strictly inside"
        let phi = MsoNw::exists_pos(
            c,
            MsoNw::exists_pos(
                ret,
                MsoNw::exists_pos(
                    p,
                    MsoNw::matched(c, ret)
                        .and(MsoNw::less(c, p))
                        .and(MsoNw::less(p, ret))
                        .and(MsoNw::letter(x_letter, p)),
                ),
            ),
        );
        let compiled = rdms::nested::compile(&phi, &alphabet);
        prop_assert_eq!(
            compiled.check(&word, &rdms::nested::eval::Assignment::new()),
            rdms::nested::eval::eval_sentence(&word, &phi)
        );
    }
}

// -----------------------------------------------------------------------------------------
// parallel explorer against the sequential engine
// -----------------------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The work-stealing explorer must agree with the sequential engine (`threads = 1`) on
    /// every random DMS: same reachable-state count, same invariant verdicts, same witness
    /// existence — for any thread count.
    #[test]
    fn parallel_explorer_matches_sequential(seed in 0u64..10_000, threads in 2usize..6, b in 1usize..4) {
        use rdms::checker::{Explorer, ExplorerConfig};
        let dms = random_dms(&RandomDmsConfig { seed, ..Default::default() });
        // parallel_threshold 0: these tests compare the two engines, so the parallel one
        // must actually run even though depth-3 searches are under the adaptive threshold
        let sequential_config = ExplorerConfig {
            depth: 3,
            max_configs: 500_000,
            threads: 1,
            parallel_threshold: 0,
            ..Default::default()
        };
        let parallel_config = ExplorerConfig { threads, ..sequential_config.clone() };
        let sequential = Explorer::new(&dms, b).with_config(sequential_config);
        let parallel = Explorer::new(&dms, b).with_config(parallel_config);

        // identical depth-bounded state spaces modulo data isomorphism
        let (count_seq, _) = sequential.reachable_state_count();
        let (count_par, _) = parallel.reachable_state_count();
        prop_assert_eq!(count_seq, count_par, "state counts differ (seed {}, threads {}, b {})", seed, threads, b);

        // identical invariant verdicts ("R0 stays empty" is violated whenever the seeded
        // bootstrap action can fill R0, and holds for depth-0-deadlocked variants)
        let u = Var::new("u");
        let r0_nonempty = Query::exists(u, Query::atom(r("R0"), [u]));
        let invariant = r0_nonempty.clone().not();
        prop_assert_eq!(
            sequential.check_invariant(&invariant).holds(),
            parallel.check_invariant(&invariant).holds()
        );

        // identical state-reachability and trace-witness existence
        let (witness_seq, _, _) = sequential.find_reachable_instance(&r0_nonempty);
        let (witness_par, _, _) = parallel.find_reachable_instance(&r0_nonempty);
        prop_assert_eq!(witness_seq.is_some(), witness_par.is_some());

        let reach = rdms::logic::templates::reachability(r0_nonempty);
        prop_assert_eq!(
            sequential.find_witness(&reach).0.is_some(),
            parallel.find_witness(&reach).0.is_some()
        );
    }

    /// Parallel verdicts are deterministic: re-running the same violated check yields the
    /// same counterexample (first violation in canonical prefix order, not thread arrival).
    #[test]
    fn parallel_counterexamples_are_scheduling_independent(seed in 0u64..10_000, threads in 2usize..6) {
        use rdms::checker::{Explorer, ExplorerConfig};
        let dms = random_dms(&RandomDmsConfig { seed, ..Default::default() });
        let explorer = Explorer::new(&dms, 2)
            .with_config(ExplorerConfig {
                depth: 3,
                max_configs: 500_000,
                threads,
                parallel_threshold: 0,
                ..Default::default()
            });
        let u = Var::new("u");
        let r0_empty = Query::exists(u, Query::atom(r("R0"), [u])).not();
        // trace searches: the whole counterexample is reproducible
        let property = rdms::logic::templates::invariant(r0_empty.clone());
        let first = explorer.check(&property);
        let second = explorer.check(&property);
        prop_assert_eq!(first.holds(), second.holds());
        prop_assert_eq!(first.counterexample(), second.counterexample());
        // deduplicating searches: the verdict is reproducible
        prop_assert_eq!(
            explorer.check_invariant(&r0_empty).holds(),
            explorer.check_invariant(&r0_empty).holds()
        );
    }
}
