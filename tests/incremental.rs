//! Equivalence of the incremental session engine with the from-scratch engines.
//!
//! The serving layer's correctness claim is that answering per-transaction ("is φ still
//! satisfied after *this* step?") in flat time changes *nothing* about the verdicts: a
//! session fed a stream one step at a time must agree, step for step, with replaying the
//! whole prefix through [`RecencySemantics::execute`] and evaluating φ at the tip — and
//! an incremental violation must be a genuine counterexample the exhaustive explorer
//! also finds. These properties are pinned here on seeded random systems and streams.

use proptest::prelude::*;
use rdms::checker::{Explorer, ExplorerConfig, SessionRequest};
use rdms::core::iso::canonical_config_key;
use rdms::core::{RecencySemantics, Step};
use rdms::db::{eval, Query, RelName, Var};
use rdms::workloads::random::{random_dms, RandomDmsConfig};
use rdms::workloads::streams::TransactionStream;
use std::sync::Arc;

/// Length of each random transaction stream.
const STREAM_LEN: usize = 10;

/// "No value sits in both R0 and R1" — closed, arity-1 by construction (see
/// `max_arity: 1` below), and genuinely bistable on random systems: some streams violate
/// it, some never do, so both verdict paths get exercised.
fn invariant() -> Query {
    let u = Var::new("u");
    Query::exists(
        u,
        Query::atom(RelName::new("R0"), [u]).and(Query::atom(RelName::new("R1"), [u])),
    )
    .not()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Step-for-step: each incremental verdict equals a from-scratch replay-and-evaluate
    /// of the same prefix, and the session's configuration is the replayed one.
    #[test]
    fn incremental_verdicts_agree_with_from_scratch_replay(
        dms_seed in 0u64..1024,
        stream_seed in 0u64..1024,
        bound in 1usize..=3,
    ) {
        let config = RandomDmsConfig { max_arity: 1, seed: dms_seed, ..Default::default() };
        let dms = Arc::new(random_dms(&config));
        let invariant = invariant();
        let mut session =
            SessionRequest::new(Arc::clone(&dms), bound, invariant.clone())
                .open()
                .unwrap();
        prop_assert_eq!(session.violations(), 0, "the initial instance is empty");

        let steps: Vec<Step> = TransactionStream::new(Arc::clone(&dms), bound, stream_seed)
            .take(STREAM_LEN)
            .collect();
        let mut prefix: Vec<Step> = Vec::new();
        let mut violations_seen = 0usize;
        for step in &steps {
            let verdict = session.check(step).expect("streamed steps are valid transitions");
            prefix.push(step.clone());

            // from scratch: replay the WHOLE prefix through the semantics
            let replayed = RecencySemantics::new(&dms, bound)
                .execute(&prefix)
                .expect("the prefix replays");
            prop_assert_eq!(replayed.len(), session.run().len());
            prop_assert_eq!(
                canonical_config_key(replayed.last(), dms.constants()),
                canonical_config_key(session.run().last(), dms.constants()),
                "the session tip is the replayed configuration"
            );
            let holds_from_scratch =
                eval::holds_boolean(replayed.last().instance(), &invariant).unwrap();
            prop_assert_eq!(
                verdict.holds(),
                holds_from_scratch,
                "incremental and from-scratch verdicts diverge on this prefix"
            );

            if !verdict.holds() {
                violations_seen += 1;
                let witness = verdict.witness().expect("violations carry their witness");
                prop_assert_eq!(witness.len(), prefix.len());
            }
        }
        prop_assert_eq!(session.violations(), violations_seen);
        prop_assert_eq!(session.verdict().holds(), violations_seen == 0);
    }

    /// An incremental violation is a genuine `b`-bounded counterexample: the exhaustive
    /// explorer, searching from scratch to the witness's depth, must also refute φ.
    #[test]
    fn incremental_violations_are_found_by_the_explorer_too(
        dms_seed in 0u64..1024,
        stream_seed in 0u64..1024,
    ) {
        let bound = 2;
        let config = RandomDmsConfig { max_arity: 1, seed: dms_seed, ..Default::default() };
        let dms = Arc::new(random_dms(&config));
        let invariant = invariant();
        let mut session =
            SessionRequest::new(Arc::clone(&dms), bound, invariant.clone())
                .open()
                .unwrap();
        for step in TransactionStream::new(Arc::clone(&dms), bound, stream_seed).take(6) {
            session.check(&step).expect("streamed steps are valid transitions");
        }
        if let Some(witness) = session.first_violation() {
            let from_scratch = Explorer::new(&dms, bound)
                .with_config(ExplorerConfig {
                    depth: witness.len(),
                    max_configs: 500_000,
                    threads: 1,
                    ..ExplorerConfig::default()
                })
                .check_invariant(&invariant);
            prop_assert!(
                !from_scratch.holds(),
                "the explorer missed a violation the session witnessed at depth {}",
                witness.len()
            );
        }
    }
}
